//! The experiment registry: one function per paper table, each returning a
//! rendered [`Table`] with paper-vs-measured columns.

use crate::paper;
use crate::report::{fmt_f, fmt_pct, Table};
use crate::session::{parallel_tables, shared as session};
use osarch_cpu::{Arch, MicroOp, Program};
use osarch_ipc::{
    cpu_scaling_forecast, lrpc_breakdown, lrpc_component, message_rpc_us, rpc_component,
    rpc_scaling, src_rpc_breakdown, RpcConfig,
};
use osarch_kernel::{HandlerSet, Machine, Primitive};
use osarch_mach::{simulate, syscall_switch_overhead_s, OsStructure};
use osarch_threads::{
    lock_pair_us, parthenon_run, synapse_report, thread_state_table, LockStrategy, ThreadCosts,
    SYNAPSE_RATIO_RANGE,
};
use osarch_workloads::standard_workloads;

/// Table 1: relative performance of primitive OS functions (paper µs,
/// simulated µs, and the simulated RISC:CVAX relative speed).
#[must_use]
pub fn table1() -> Table {
    let mut table = Table::new("Table 1: Relative Performance of Primitive OS Functions");
    table.headers([
        "Operation",
        "CVAX",
        "sim",
        "88000",
        "sim",
        "R2000",
        "sim",
        "R3000",
        "sim",
        "SPARC",
        "sim",
    ]);
    let measured: Vec<_> = paper::TABLE1_US
        .iter()
        .map(|(arch, _)| session().measurement(*arch))
        .collect();
    for (row, primitive) in Primitive::all().into_iter().enumerate() {
        let mut cells = vec![primitive.label().to_string()];
        for ((_, paper_row), m) in paper::TABLE1_US.iter().zip(&measured) {
            cells.push(fmt_f(paper_row[row], 1));
            cells.push(fmt_f(m.times_us().time(primitive), 2));
        }
        table.row(cells);
    }
    // Relative speed (simulated) and the application-performance row.
    let cvax = measured[0].times_us();
    let mut rel = vec![
        "Relative speed (sim, CVAX=1)".to_string(),
        String::new(),
        String::new(),
    ];
    for m in &measured[1..] {
        rel.push(String::new());
        rel.push(fmt_f(cvax.null_syscall / m.times_us().null_syscall, 1));
    }
    table.row(rel);
    let mut app = vec![
        "Application performance".to_string(),
        "1.0".to_string(),
        String::new(),
    ];
    for (arch, _) in &paper::TABLE1_US[1..] {
        app.push(fmt_f(arch.spec().application_speedup, 1));
        app.push(String::new());
    }
    table.row(app);
    table.note("paper columns from Table 1; sim columns from the calibrated machines");
    table.note("relative-speed row shown for the null system call");
    table
}

/// Table 2: instructions executed for primitive OS functions.
#[must_use]
pub fn table2() -> Table {
    let mut table = Table::new("Table 2: Instructions Executed for Primitive OS Functions");
    table.headers([
        "Operation",
        "CVAX",
        "sim",
        "88000",
        "sim",
        "R2/3000",
        "sim",
        "SPARC",
        "sim",
        "i860",
        "sim",
    ]);
    let measured: Vec<[u64; 4]> = paper::TABLE2_INSTRUCTIONS
        .iter()
        .map(|(arch, _)| session().measurement(*arch).instruction_counts())
        .collect();
    for (row, primitive) in Primitive::all().into_iter().enumerate() {
        let mut cells = vec![primitive.label().to_string()];
        for ((_, paper_row), sim) in paper::TABLE2_INSTRUCTIONS.iter().zip(&measured) {
            cells.push(paper_row[row].to_string());
            cells.push(sim[row].to_string());
        }
        table.row(cells);
    }
    table.note("simulated counts are pinned to the paper's by the handler generators");
    table
}

/// Table 3: SRC RPC processing time, small and large packets.
#[must_use]
pub fn table3() -> Table {
    let small = src_rpc_breakdown(Arch::Cvax, RpcConfig::null_call());
    let large = src_rpc_breakdown(Arch::Cvax, RpcConfig::large_result());
    let mut table = Table::new("Table 3: RPC Processing Time in SRC-style RPC (CVAX)");
    table.headers(["Component", "74B us", "74B %", "1500B us", "1500B %"]);
    for component in &small.components {
        let name = component.name;
        table.row([
            name.to_string(),
            fmt_f(small.micros(name), 1),
            fmt_pct(small.share(name)),
            fmt_f(large.micros(name), 1),
            fmt_pct(large.share(name)),
        ]);
    }
    table.row([
        "Total".to_string(),
        fmt_f(small.total_us(), 1),
        "100%".to_string(),
        fmt_f(large.total_us(), 1),
        "100%".to_string(),
    ]);
    table.note(format!(
        "paper (prose): wire {} small / ~{} large; simulated {} / {}",
        fmt_pct(paper::table3::WIRE_SHARE_SMALL),
        fmt_pct(paper::table3::WIRE_SHARE_LARGE),
        fmt_pct(small.share(rpc_component::WIRE)),
        fmt_pct(large.share(rpc_component::WIRE)),
    ));
    table.note("table body reconstructed: the published scan of Table 3 is corrupted");
    table
}

/// Table 4: LRPC processing time on the CVAX.
#[must_use]
pub fn table4() -> Table {
    let breakdown = lrpc_breakdown(Arch::Cvax);
    let mut table = Table::new("Table 4: LRPC Processing Time (CVAX)");
    table.headers(["Component", "us", "%", "hardware minimum"]);
    for component in &breakdown.components {
        table.row([
            component.name.to_string(),
            fmt_f(component.micros, 1),
            fmt_pct(breakdown.share(component.name)),
            if component.hardware_minimum {
                "yes"
            } else {
                "no"
            }
            .to_string(),
        ]);
    }
    table.row([
        "Total".to_string(),
        fmt_f(breakdown.total_us(), 1),
        "100%".to_string(),
        fmt_f(breakdown.hardware_minimum_us(), 1),
    ]);
    table.note(format!(
        "paper/LRPC-paper reference: {} us total, {} us minimum, TLB share {}; simulated TLB share {}",
        paper::table4::CVAX_LRPC_US,
        paper::table4::CVAX_MINIMUM_US,
        fmt_pct(paper::table4::CVAX_TLB_SHARE),
        fmt_pct(breakdown.share(lrpc_component::TLB)),
    ));
    table.note("table body reconstructed: the published scan of Table 4 is corrupted");
    table
}

/// Table 5: time in the null system call, by phase.
#[must_use]
pub fn table5() -> Table {
    let mut table = Table::new("Table 5: Time in Null System Call (us)");
    table.headers(["Function", "CVAX", "sim", "R2000", "sim", "SPARC", "sim"]);
    let measured: Vec<(f64, f64, f64)> = paper::TABLE5_US
        .iter()
        .map(|(arch, _)| session().measurement(*arch).syscall_phases_us())
        .collect();
    let rows = ["Kernel entry/exit", "Call preparation", "Call/return to C"];
    for (i, label) in rows.iter().enumerate() {
        let mut cells = vec![(*label).to_string()];
        for ((_, paper_row), sim) in paper::TABLE5_US.iter().zip(&measured) {
            let sim_value = match i {
                0 => sim.0,
                1 => sim.1,
                _ => sim.2,
            };
            cells.push(fmt_f(paper_row[i], 1));
            cells.push(fmt_f(sim_value, 2));
        }
        table.row(cells);
    }
    let mut total = vec!["Total".to_string()];
    for ((_, paper_row), sim) in paper::TABLE5_US.iter().zip(&measured) {
        total.push(fmt_f(paper_row.iter().sum::<f64>(), 1));
        total.push(fmt_f(sim.0 + sim.1 + sim.2, 2));
    }
    table.row(total);
    table
}

/// Table 6: processor thread state.
#[must_use]
pub fn table6() -> Table {
    let mut table = Table::new("Table 6: Processor Thread State (32-bit words)");
    table.headers(["", "VAX", "88000", "R2/3000", "SPARC", "i860", "RS6000"]);
    let rows = thread_state_table();
    type RowGetter = fn(&osarch_threads::ThreadStateRow) -> u32;
    let labels: [(&str, RowGetter); 3] = [
        ("Registers", |r| r.registers),
        ("F.P. State", |r| r.fp_state),
        ("Misc. State", |r| r.misc_state),
    ];
    for (label, get) in labels {
        let mut cells = vec![label.to_string()];
        cells.extend(rows.iter().map(|r| get(r).to_string()));
        table.row(cells);
    }
    let mut totals = vec!["Total".to_string()];
    totals.extend(rows.iter().map(|r| r.total().to_string()));
    table.row(totals);
    table.note("identical to the paper's Table 6 by construction (architecture facts)");
    table
}

/// Table 7: application reliance on OS primitives, monolithic versus
/// decomposed, with the paper's measured Mach 3.0 values alongside.
#[must_use]
pub fn table7() -> Table {
    let mut table =
        Table::new("Table 7: Application Reliance on Operating System Primitives (R3000)");
    table.headers([
        "Workload / system",
        "Time s",
        "AS sw",
        "Thr sw",
        "Syscalls",
        "Emul",
        "KTLB",
        "Other",
        "% prims",
    ]);
    for workload in standard_workloads() {
        let mono = simulate(&workload, OsStructure::Monolithic, Arch::R3000);
        let micro = simulate(&workload, OsStructure::Microkernel, Arch::R3000);
        let reference = &workload.mach3_reference;
        let fmt_run = |name: String, time: f64, d: &osarch_workloads::ServiceDemand, share: f64| {
            vec![
                name,
                fmt_f(time, 1),
                d.as_switches.to_string(),
                d.thread_switches.to_string(),
                d.syscalls.to_string(),
                d.emulated_instructions.to_string(),
                d.kernel_tlb_misses.to_string(),
                d.other_exceptions.to_string(),
                fmt_pct(share),
            ]
        };
        table.row(fmt_run(
            format!("{} / Mach 2.5 sim", workload.name),
            mono.time_s,
            &mono.demand,
            mono.primitive_share(),
        ));
        table.row(fmt_run(
            format!("{} / Mach 3.0 sim", workload.name),
            micro.time_s,
            &micro.demand,
            micro.primitive_share(),
        ));
        table.row(fmt_run(
            format!("{} / Mach 3.0 paper", workload.name),
            reference.time_s,
            &reference.demand,
            reference.primitive_share,
        ));
    }
    table.note("Mach 2.5 counters are the workload definitions (= the paper's 2.5 rows)");
    table.note("Mach 3.0 sim rows are derived structurally; paper rows shown for comparison");
    table
}

/// Window-processing share of a measured handler: the cycles of an isolated
/// spill+fill sequence over the handler's total.
fn sparc_window_share(windows_ops: u32, total_cycles: u64) -> f64 {
    let mut machine = Machine::new(Arch::Sparc);
    let base = machine.layout().window_save;
    let mut b = Program::builder("isolated-windows");
    for i in 0..windows_ops {
        b.op(MicroOp::SaveWindow(base.offset(64 * i)));
    }
    for i in 0..windows_ops {
        b.op(MicroOp::RestoreWindow(base.offset(64 * i)));
    }
    let cycles = machine.measure(&b.build()).cycles;
    cycles as f64 / total_cycles as f64
}

/// The in-text results: one row per claim, paper value vs measured value.
#[must_use]
pub fn intext_results() -> Table {
    let mut table = Table::new("In-text results: paper vs simulation");
    table.headers(["Result", "Paper", "Simulated"]);

    let sparc = session().measurement(Arch::Sparc);
    table.row([
        "SPARC syscall: window-processing share".to_string(),
        fmt_pct(paper::intext::SPARC_SYSCALL_WINDOW_SHARE),
        fmt_pct(sparc_window_share(1, sparc.syscall.cycles)),
    ]);
    table.row([
        "SPARC ctx switch: window save/restore share".to_string(),
        fmt_pct(paper::intext::SPARC_CTXSW_WINDOW_SHARE),
        fmt_pct(sparc_window_share(3, sparc.context_switch.cycles)),
    ]);

    let r2000 = session().measurement(Arch::R2000);
    table.row([
        "R2000 trap: write-buffer stall share".to_string(),
        fmt_pct(paper::intext::R2000_TRAP_WB_SHARE),
        fmt_pct(r2000.trap.wb_stall_cycles as f64 / r2000.trap.cycles as f64),
    ]);
    let machine = Machine::new(Arch::R2000);
    let handlers = HandlerSet::generate(machine.spec(), machine.layout());
    let nops = handlers
        .syscall
        .ops()
        .iter()
        .filter(|(_, op)| matches!(op, MicroOp::DelayNop))
        .count() as f64;
    table.row([
        "R2000 syscall: unfilled-delay-slot share".to_string(),
        fmt_pct(paper::intext::R2000_SYSCALL_NOP_SHARE),
        fmt_pct(nops / r2000.syscall.cycles as f64),
    ]);

    let i860 = session().measurement(Arch::I860);
    table.row([
        "i860 PTE change: cache-flush instructions".to_string(),
        paper::intext::I860_FLUSH_INSTRS.to_string(),
        (i860.pte_change.instructions - 23).to_string(),
    ]);
    table.row([
        "i860 fault-address reconstruction instrs".to_string(),
        paper::intext::I860_FAULT_DECODE_INSTRS.to_string(),
        Arch::I860.spec().fault_decode_instrs.to_string(),
    ]);

    let costs = ThreadCosts::measure(Arch::Sparc);
    table.row([
        "SPARC thread switch / procedure call".to_string(),
        fmt_f(paper::intext::SPARC_SWITCH_CALL_RATIO, 0),
        fmt_f(costs.switch_to_call_ratio(), 0),
    ]);
    let synapse = synapse_report(Arch::Sparc, SYNAPSE_RATIO_RANGE.1);
    table.row([
        format!(
            "Synapse at {}:1 — switch time exceeds call time",
            SYNAPSE_RATIO_RANGE.1
        ),
        "yes".to_string(),
        if synapse.switches_dominate() {
            "yes"
        } else {
            "no"
        }
        .to_string(),
    ]);

    let parthenon = parthenon_run(Arch::R3000, 10, LockStrategy::KernelTrap);
    table.row([
        "parthenon (MIPS): share of time in kernel sync".to_string(),
        fmt_pct(paper::intext::PARTHENON_SYNC_SHARE),
        fmt_pct(parthenon.sync_share()),
    ]);
    table.row([
        "MIPS kernel lock vs Lamport software lock (us)".to_string(),
        "n/a".to_string(),
        format!(
            "{} vs {}",
            fmt_f(lock_pair_us(Arch::R3000, LockStrategy::KernelTrap), 1),
            fmt_f(lock_pair_us(Arch::R3000, LockStrategy::LamportFast), 1)
        ),
    ]);

    table.row([
        "SPARC andrew-remote syscall+switch overhead (s)".to_string(),
        fmt_f(paper::intext::SPARC_ANDREW_OVERHEAD_S, 1),
        fmt_f(syscall_switch_overhead_s(Arch::Sparc, "andrew-remote"), 1),
    ]);

    let sprite = rpc_scaling(Arch::Cvax, Arch::Sparc);
    table.row([
        "RPC speedup when integer speed rises ~4-5x".to_string(),
        format!("~{:.0}x (Sprite)", paper::intext::SPRITE_RPC_SPEEDUP),
        format!(
            "{:.1}x (app {:.1}x)",
            sprite.rpc_speedup, sprite.application_speedup
        ),
    ]);
    let forecast = cpu_scaling_forecast(Arch::Cvax, 3.0);
    table.row([
        "3x CPU: naive vs delivered RPC latency cut".to_string(),
        "50% naive".to_string(),
        format!(
            "{} naive, {} delivered",
            fmt_pct(forecast.naive_reduction),
            fmt_pct(forecast.delivered_reduction)
        ),
    ]);
    table.row([
        "LRPC improvement over message-based local RPC".to_string(),
        format!("{:.0}x", paper::intext::LRPC_IMPROVEMENT),
        format!(
            "{:.1}x",
            message_rpc_us(Arch::Cvax) / lrpc_breakdown(Arch::Cvax).total_us()
        ),
    ]);

    let workload = standard_workloads()
        .into_iter()
        .find(|w| w.name == "andrew-remote")
        .unwrap();
    let micro = simulate(&workload, OsStructure::Microkernel, Arch::R3000);
    table.row([
        "andrew-remote context-switch blow-up (2.5 -> 3.0)".to_string(),
        format!("{:.0}x", paper::intext::ANDREW_REMOTE_SWITCH_BLOWUP),
        format!(
            "{:.0}x",
            micro.demand.as_switches as f64 / workload.demand.as_switches as f64
        ),
    ]);
    table
}

/// The Section 3 "overloaded uses of virtual memory": garbage collection,
/// checkpointing, recoverable virtual memory and transaction locking all
/// ride on user-level handling of protection faults. This table prices one
/// reflected fault (kernel dispatch + upcall + user decision + re-protect)
/// per architecture and the CPU share a runtime generating such faults at a
/// given rate would lose.
#[must_use]
pub fn vm_overloading() -> Table {
    use osarch_kernel::user_fault_reflection_us;
    let mut table = Table::new("Overloading virtual memory (Section 3): user-level fault handling");
    table.headers([
        "Arch",
        "reflect us",
        "re-protect us",
        "event us",
        "GC @5k/s",
        "ckpt @1k/s",
    ]);
    for arch in Arch::timed() {
        let reflect = user_fault_reflection_us(arch);
        let pte = session().measurement(arch).times_us().pte_change;
        let event = reflect + pte;
        table.row([
            arch.to_string(),
            fmt_f(reflect, 1),
            fmt_f(pte, 1),
            fmt_f(event, 1),
            fmt_pct(event * 5_000.0 / 1e6),
            fmt_pct(event * 1_000.0 / 1e6),
        ]);
    }
    table.note("event = fault reflected to a user-level handler + PTE re-protection");
    table.note("GC = write-barrier collector; ckpt = incremental checkpoint dirty tracking");
    table
}

/// The TLB-effectiveness study of Section 3.2.
///
/// Two results in one table. First, Clark & Emer's VAX-11/780 observation —
/// "while the VMS operating system accounts for only one fifth of all
/// references, it accounts for more than two thirds of all TLB misses" —
/// regenerated by running a mixed user/system reference stream through a
/// TLB: system references are sparse and switch-riddled, user references
/// have locality. Second, the paper's warning that "kernelized operating
/// systems will increase the demand for tag bits and TLB size": miss rate
/// versus the number of communicating address spaces.
#[must_use]
pub fn tlb_effectiveness() -> Table {
    use osarch_mem::{Asid, Protection, Pte, Tlb, TlbConfig, TlbEntry};
    let mut table = Table::new("TLB effectiveness (Section 3.2)");
    table.headers(["Experiment", "Config", "Result"]);

    // --- Clark & Emer: share of references vs share of misses. ---
    let mut tlb = Tlb::new(TlbConfig::tagged(64));
    let mut lookup = |vpn: u32, asid: u16, misses: &mut u64| {
        if tlb.lookup(vpn, Asid(asid)).is_none() {
            *misses += 1;
            tlb.insert(TlbEntry {
                vpn,
                asid: Some(Asid(asid)),
                pte: Pte::new(vpn, Protection::RWX),
                locked: false,
            });
        }
    };
    let (mut user_misses, mut system_misses) = (0u64, 0u64);
    let (mut user_refs, mut system_refs) = (0u64, 0u64);
    for step in 0..200_000u32 {
        if step % 5 == 0 {
            // System reference: a sparse, wide working set (buffers, PCBs,
            // page tables of whichever process is running).
            system_refs += 1;
            let vpn = 0x80_000 + (step * 7919) % 300;
            lookup(vpn, 0, &mut system_misses);
        } else {
            // User reference: tight locality within the current process.
            user_refs += 1;
            let process = (step / 4000) % 4; // occasional context switch
            let vpn = process * 0x1000 + (step * 31) % 16;
            lookup(vpn, process as u16 + 1, &mut user_misses);
        }
    }
    let total_misses = user_misses + system_misses;
    let system_ref_share = system_refs as f64 / (user_refs + system_refs) as f64;
    let system_miss_share = system_misses as f64 / total_misses as f64;
    table.row([
        "Clark & Emer reference share".to_string(),
        "VAX-like, 64-entry TLB".to_string(),
        format!("system = {} of references", fmt_pct(system_ref_share)),
    ]);
    table.row([
        "Clark & Emer miss share".to_string(),
        "paper: >2/3 of misses".to_string(),
        format!("system = {} of misses", fmt_pct(system_miss_share)),
    ]);

    // --- Kernelized structure: miss rate vs number of address spaces. ---
    for spaces in [2u16, 4, 6, 8, 16] {
        let mut tlb = Tlb::new(TlbConfig::tagged(64));
        let mut misses = 0u64;
        let mut refs = 0u64;
        // Round-robin RPC among `spaces` servers; each visit touches its
        // 12-page working set three times (dispatch, work, reply).
        for round in 0..2_000u32 {
            let space = (round % u32::from(spaces)) as u16;
            for pass in 0..3u32 {
                let _ = pass;
                for page in 0..12u32 {
                    refs += 1;
                    let vpn = u32::from(space) * 0x100 + page;
                    if tlb.lookup(vpn, Asid(space)).is_none() {
                        misses += 1;
                        tlb.insert(TlbEntry {
                            vpn,
                            asid: Some(Asid(space)),
                            pte: Pte::new(vpn, Protection::RWX),
                            locked: false,
                        });
                    }
                }
            }
        }
        table.row([
            "kernelized TLB pressure".to_string(),
            format!("{spaces} address spaces x 12 pages"),
            format!("miss rate {}", fmt_pct(misses as f64 / refs as f64)),
        ]);
    }
    table.note("past ~5 communicating spaces the 64-entry TLB no longer holds the union");
    table
}

/// Kernel threads vs user threads vs scheduler activations (Section 4).
#[must_use]
pub fn thread_models() -> Table {
    use osarch_threads::{model_overhead_us, ThreadModel, ThreadWorkload};
    let mut table = Table::new("Thread-model overhead (Section 4): ms per workload");
    table.headers(["Arch", "Workload", "kernel", "user", "activations"]);
    for arch in [Arch::Cvax, Arch::R3000, Arch::Sparc] {
        for (name, workload) in [
            ("fine-grained", ThreadWorkload::fine_grained()),
            ("I/O-bound", ThreadWorkload::io_bound()),
        ] {
            let ms = |model| model_overhead_us(arch, model, &workload) / 1000.0;
            table.row([
                arch.to_string(),
                name.to_string(),
                fmt_f(ms(ThreadModel::KernelThreads), 1),
                fmt_f(ms(ThreadModel::UserThreads), 1),
                fmt_f(ms(ThreadModel::SchedulerActivations), 1),
            ]);
        }
    }
    table.note("plain user threads stall the whole address space on blocking events;");
    table.note("scheduler activations keep user-level costs and handle blocking via upcalls");
    table
}

/// The paper's closing warning, quantified: next-generation implementations
/// whose clocks rise while memory latency (in nanoseconds) stands still.
/// Integer code keeps scaling; the OS primitives do not.
#[must_use]
pub fn future_machines() -> Table {
    use osarch_kernel::measure_with_spec;
    let mut table =
        Table::new("Next-generation machines (Section 6): clock scaling vs the memory wall");
    table.headers([
        "Machine",
        "MHz",
        "app speedup",
        "syscall us",
        "trap us",
        "ctxsw us",
        "primitive speedup",
    ]);
    for arch in [Arch::R3000, Arch::Sparc] {
        let base = measure_with_spec(arch.spec());
        let base_times = base.times_us();
        for factor in [1.0, 2.0, 4.0] {
            let spec = arch.spec().with_scaled_clock(factor);
            let m = measure_with_spec(spec.clone());
            let times = m.times_us();
            let primitive_speedup = base_times.null_syscall / times.null_syscall;
            table.row([
                format!("{arch} x{factor:.0}"),
                fmt_f(spec.clock_mhz, 0),
                format!("{:.1}x", factor * if factor > 1.0 { 0.9 } else { 1.0 }),
                fmt_f(times.null_syscall, 2),
                fmt_f(times.trap, 2),
                fmt_f(times.context_switch, 2),
                format!("{primitive_speedup:.1}x"),
            ]);
        }
    }
    table.note("memory keeps its nanosecond latency, so memory-bound primitive work");
    table.note("grows in cycles: primitives scale sublinearly with the clock");
    table
}

/// Decomposition-depth study: "the performance of operating system
/// primitives on current architectures may limit the extent to which
/// systems such as Mach can be further decomposed" (Section 5). Sweep the
/// number of servers each service request crosses.
#[must_use]
pub fn decomposition_depth() -> Table {
    use osarch_mach::OsStructure;
    let mut table = Table::new("Decomposition depth (Section 5): andrew-local as servers multiply");
    table.headers([
        "Servers per service",
        "Time s",
        "Syscalls",
        "AS switches",
        "% prims",
    ]);
    let base = standard_workloads()
        .into_iter()
        .find(|w| w.name == "andrew-local")
        .expect("standard workload");
    let mono = simulate(&base, OsStructure::Monolithic, Arch::R3000);
    table.row([
        "0 (monolithic)".to_string(),
        fmt_f(mono.time_s, 1),
        mono.demand.syscalls.to_string(),
        mono.demand.as_switches.to_string(),
        fmt_pct(mono.primitive_share()),
    ]);
    for depth in [1.0, 2.0, 3.0, 4.0] {
        let mut workload = base.clone();
        workload.rpcs_per_service = base.rpcs_per_service * depth;
        let run = simulate(&workload, OsStructure::Microkernel, Arch::R3000);
        table.row([
            format!("{depth:.0}"),
            fmt_f(run.time_s, 1),
            run.demand.syscalls.to_string(),
            run.demand.as_switches.to_string(),
            fmt_pct(run.primitive_share()),
        ]);
    }
    table.note("each extra server a request crosses adds RPCs, switches and TLB pressure");
    table
}

/// Every report, in paper order.
///
/// The tables are independent, so they are generated concurrently; the
/// shared measurement session is primed first so each architecture
/// simulates exactly once, and the output order (and bytes) match a
/// sequential run.
#[must_use]
pub fn all_reports() -> Vec<Table> {
    session().prime();
    parallel_tables(&[
        table1,
        table2,
        table3,
        table4,
        table5,
        table6,
        table7,
        intext_results,
        vm_overloading,
        tlb_effectiveness,
        thread_models,
        future_machines,
        decomposition_depth,
    ])
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn table1_has_four_primitive_rows_plus_summary() {
        let t = table1();
        assert_eq!(t.len(), 6);
        assert!(t.render().contains("Null system call"));
    }

    #[test]
    fn table2_sim_equals_paper() {
        let text = table2().render();
        // Spot-check a couple of pinned counts: paper and sim adjacent.
        assert!(text.contains("559"));
        assert!(text.contains("326"));
    }

    #[test]
    fn table3_and_4_render_with_notes() {
        assert!(table3().render().contains("reconstructed"));
        assert!(table4().render().contains("hardware minimum"));
    }

    #[test]
    fn table5_totals_present() {
        let text = table5().render();
        assert!(text.contains("Call preparation"));
        assert!(text.contains("Total"));
    }

    #[test]
    fn table6_matches_paper_exactly() {
        let text = table6().render();
        assert!(text.contains("136"));
        assert!(text.contains("Misc. State"));
    }

    #[test]
    fn table7_contains_all_workloads_three_ways() {
        let t = table7();
        assert_eq!(t.len(), 21, "7 workloads x (2.5 sim, 3.0 sim, 3.0 paper)");
    }

    #[test]
    fn intext_covers_the_headline_claims() {
        let text = intext_results().render();
        for needle in [
            "window",
            "write-buffer",
            "Synapse",
            "parthenon",
            "andrew-remote",
        ] {
            assert!(text.contains(needle), "missing {needle}");
        }
    }

    #[test]
    fn all_reports_is_complete() {
        assert_eq!(all_reports().len(), 13);
    }

    #[test]
    fn future_machines_show_sublinear_primitive_scaling() {
        use osarch_kernel::measure_with_spec;
        // The SPARC's memory-bound window traffic caps its primitive
        // scaling hard; the R3000's leaner path scales better but still
        // below the clock.
        let sparc_base = measure_with_spec(Arch::Sparc.spec()).times_us();
        let sparc_fast = measure_with_spec(Arch::Sparc.spec().with_scaled_clock(4.0)).times_us();
        let sparc_speedup = sparc_base.null_syscall / sparc_fast.null_syscall;
        assert!(
            sparc_speedup < 2.6,
            "4x clock should deliver well under 3x on SPARC syscalls: {sparc_speedup:.1}"
        );
        assert!(sparc_speedup > 1.0, "still faster in absolute terms");
        let r3000_base = measure_with_spec(Arch::R3000.spec()).times_us();
        let r3000_fast = measure_with_spec(Arch::R3000.spec().with_scaled_clock(4.0)).times_us();
        let r3000_speedup = r3000_base.null_syscall / r3000_fast.null_syscall;
        assert!(r3000_speedup < 4.0, "never superlinear");
        assert!(
            r3000_speedup > sparc_speedup,
            "leaner kernel paths scale better"
        );
        // Context switches, the most memory-bound primitive, scale worst.
        let ctx_speedup = sparc_base.context_switch / sparc_fast.context_switch;
        assert!(
            ctx_speedup < sparc_speedup,
            "ctx {ctx_speedup:.1} vs syscall {sparc_speedup:.1}"
        );
    }

    #[test]
    fn decomposition_depth_raises_the_primitive_share() {
        let table = decomposition_depth();
        assert_eq!(table.len(), 5);
        // The rendered shares must be monotone by construction; spot-check
        // via the underlying model.
        let base = standard_workloads()
            .into_iter()
            .find(|w| w.name == "andrew-local")
            .unwrap();
        let mut shallow = base.clone();
        shallow.rpcs_per_service = base.rpcs_per_service;
        let mut deep = base.clone();
        deep.rpcs_per_service = base.rpcs_per_service * 4.0;
        let s = simulate(&shallow, osarch_mach::OsStructure::Microkernel, Arch::R3000);
        let d = simulate(&deep, osarch_mach::OsStructure::Microkernel, Arch::R3000);
        assert!(d.primitive_share() > s.primitive_share() * 1.5);
    }

    #[test]
    fn clark_emer_shape_reproduces() {
        // System references are a small share of references but most misses.
        let text = tlb_effectiveness().render();
        assert!(text.contains("of references"));
        assert!(text.contains("of misses"));
    }

    #[test]
    fn thread_models_render() {
        let t = thread_models();
        assert_eq!(t.len(), 6);
        assert!(t.render().contains("activations"));
    }

    #[test]
    fn vm_overloading_covers_the_timed_archs() {
        let t = vm_overloading();
        assert_eq!(t.len(), 5);
        let text = t.render();
        assert!(text.contains("GC"));
        assert!(text.contains("SPARC"));
    }
}
