//! Latency-percentile helpers for the serving layer.
//!
//! The paper's argument is about *fixed per-operation overheads*; the
//! serving layer makes the same argument at request granularity, so its
//! benchmark output reports the latency distribution, not just a mean.
//!
//! Two sources feed a [`LatencySummary`]:
//!
//! * **exhaustive samples** ([`LatencySummary::from_sorted`]) — exact
//!   nearest-rank percentiles, but holding every sample gets expensive,
//!   and a *capped* reservoir silently under-reports the tail once it
//!   stops admitting samples (the high-volume bug this module's
//!   `samples`/`sampled` fields now expose);
//! * **mergeable log-linear histograms**
//!   ([`LatencySummary::from_histogram`]) — every observation counted,
//!   ≤ 1/16 relative quantization error, constant memory. The serve
//!   stack and loadgen report through these; the reservoir survives
//!   only as a cross-check in tests.

use osarch_telemetry::Histogram;

/// Nearest-rank percentile of a **sorted** sample set.
///
/// `q` is in `[0, 100]`. An empty slice yields 0. The nearest-rank method
/// always returns an observed sample (no interpolation), which keeps the
/// output stable across platforms.
///
/// # Panics
///
/// Panics when `q` is outside `[0, 100]`.
#[must_use]
pub fn percentile(sorted: &[u64], q: f64) -> u64 {
    assert!((0.0..=100.0).contains(&q), "percentile out of range: {q}");
    if sorted.is_empty() {
        return 0;
    }
    debug_assert!(sorted.windows(2).all(|w| w[0] <= w[1]), "input not sorted");
    let rank = ((q / 100.0) * sorted.len() as f64).ceil() as usize;
    sorted[rank.saturating_sub(1).min(sorted.len() - 1)]
}

/// Summary of a latency distribution, in the sample unit (microseconds
/// by convention).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct LatencySummary {
    /// Observations the summary describes.
    pub count: u64,
    /// Samples actually retained to compute it. Equal to `count` unless
    /// the source was a capped reservoir that stopped admitting.
    pub samples: u64,
    /// Whether the percentiles come from a subsample (`samples < count`)
    /// — when true, tail percentiles may under-report.
    pub sampled: bool,
    /// Median (50th percentile).
    pub p50: u64,
    /// 90th percentile.
    pub p90: u64,
    /// 99th percentile.
    pub p99: u64,
    /// 99.9th percentile.
    pub p999: u64,
    /// Largest sample.
    pub max: u64,
    /// Arithmetic mean.
    pub mean: f64,
}

impl LatencySummary {
    /// Summarize an unsorted sample set (sorts a copy; the input order is
    /// irrelevant). An empty set summarizes to all zeros.
    #[must_use]
    pub fn from_unsorted(samples: &[u64]) -> LatencySummary {
        let mut sorted = samples.to_vec();
        sorted.sort_unstable();
        LatencySummary::from_sorted(&sorted)
    }

    /// Summarize an already-sorted sample set without copying. The set is
    /// taken as exhaustive (`samples == count`, `sampled: false`); use
    /// [`LatencySummary::from_reservoir`] when it was capped.
    #[must_use]
    pub fn from_sorted(sorted: &[u64]) -> LatencySummary {
        LatencySummary::from_reservoir(sorted, sorted.len() as u64)
    }

    /// Summarize a capped reservoir: `sorted` holds the retained samples,
    /// `observed` the true observation count. Marks the summary `sampled`
    /// when the reservoir dropped observations, so consumers know the
    /// tail may be under-reported.
    #[must_use]
    pub fn from_reservoir(sorted: &[u64], observed: u64) -> LatencySummary {
        let samples = sorted.len() as u64;
        let mean = if sorted.is_empty() {
            0.0
        } else {
            sorted.iter().sum::<u64>() as f64 / samples as f64
        };
        LatencySummary {
            count: observed.max(samples),
            samples,
            sampled: observed > samples,
            p50: percentile(sorted, 50.0),
            p90: percentile(sorted, 90.0),
            p99: percentile(sorted, 99.0),
            p999: percentile(sorted, 99.9),
            max: sorted.last().copied().unwrap_or(0),
            mean,
        }
    }

    /// Summarize a log-linear histogram: every observation is counted
    /// (never `sampled`); percentiles carry the bucket quantization
    /// (≤ 1/16 relative error), and `max` is exact.
    #[must_use]
    pub fn from_histogram(hist: &Histogram) -> LatencySummary {
        LatencySummary {
            count: hist.count(),
            samples: hist.count(),
            sampled: false,
            p50: hist.value_at_percentile(50.0),
            p90: hist.value_at_percentile(90.0),
            p99: hist.value_at_percentile(99.0),
            p999: hist.value_at_percentile(99.9),
            max: hist.max(),
            mean: hist.mean(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn percentile_nearest_rank() {
        let sorted: Vec<u64> = (1..=100).collect();
        assert_eq!(percentile(&sorted, 50.0), 50);
        assert_eq!(percentile(&sorted, 99.0), 99);
        assert_eq!(percentile(&sorted, 100.0), 100);
        assert_eq!(percentile(&sorted, 0.0), 1);
        assert_eq!(percentile(&[7], 99.0), 7);
        assert_eq!(percentile(&[], 50.0), 0);
    }

    #[test]
    fn summary_matches_hand_computation() {
        let s = LatencySummary::from_unsorted(&[5, 1, 3, 2, 4]);
        assert_eq!(s.count, 5);
        assert_eq!(s.samples, 5);
        assert!(!s.sampled);
        assert_eq!(s.p50, 3);
        assert_eq!(s.p99, 5);
        assert_eq!(s.p999, 5);
        assert_eq!(s.max, 5);
        assert!((s.mean - 3.0).abs() < 1e-12);
        let empty = LatencySummary::from_unsorted(&[]);
        assert_eq!((empty.count, empty.p50, empty.max), (0, 0, 0));
        assert_eq!(empty.mean, 0.0);
        assert!(!empty.sampled);
    }

    #[test]
    fn capped_reservoirs_are_flagged_as_sampled() {
        // A reservoir that stopped admitting at 4 of 10 observations: the
        // summary must say so instead of silently reporting a clean tail.
        let retained = [1u64, 2, 3, 4];
        let s = LatencySummary::from_reservoir(&retained, 10);
        assert_eq!(s.count, 10);
        assert_eq!(s.samples, 4);
        assert!(s.sampled);
        assert_eq!(s.max, 4);
    }

    #[test]
    fn histogram_summary_counts_every_observation() {
        // The reservoir cross-check the satellite asks for: fill well past
        // a hypothetical cap; the histogram path sees every value while a
        // capped reservoir's tail stops dead at the cap boundary.
        const CAP: usize = 1000;
        let values: Vec<u64> = (1..=4 * CAP as u64).collect();
        let reservoir: Vec<u64> = values.iter().copied().take(CAP).collect();
        let capped = LatencySummary::from_reservoir(&reservoir, values.len() as u64);
        assert!(capped.sampled);
        // The capped reservoir reports p999 ~ CAP; the real p999 is ~4x.
        assert!(capped.p999 <= CAP as u64);

        let hist = Histogram::from_values(&values);
        let full = LatencySummary::from_histogram(&hist);
        assert!(!full.sampled);
        assert_eq!(full.count, values.len() as u64);
        assert_eq!(full.max, 4 * CAP as u64);
        let exact = percentile(&values, 99.9);
        assert!(full.p999 >= exact, "{} < {exact}", full.p999);
        assert!(
            (full.p999 - exact) as f64 <= exact as f64 / 16.0 + 1.0,
            "{} vs {exact}",
            full.p999
        );
        // The histogram mean is exact (sum and count are exact).
        let true_mean = values.iter().sum::<u64>() as f64 / values.len() as f64;
        assert!((full.mean - true_mean).abs() < 1e-9);
    }

    #[test]
    #[should_panic(expected = "percentile out of range")]
    fn percentile_rejects_out_of_range() {
        let _ = percentile(&[1], 101.0);
    }
}
