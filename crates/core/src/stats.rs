//! Latency-percentile helpers for the serving layer.
//!
//! The paper's argument is about *fixed per-operation overheads*; the
//! serving layer makes the same argument at request granularity, so its
//! benchmark output reports the latency distribution, not just a mean.
//! These helpers compute nearest-rank percentiles over microsecond
//! samples — enough for `osarch-serve`'s `/stats` query and the
//! `BENCH_serve.json` emitter, with no external dependency.

/// Nearest-rank percentile of a **sorted** sample set.
///
/// `q` is in `[0, 100]`. An empty slice yields 0. The nearest-rank method
/// always returns an observed sample (no interpolation), which keeps the
/// output stable across platforms.
///
/// # Panics
///
/// Panics when `q` is outside `[0, 100]`.
#[must_use]
pub fn percentile(sorted: &[u64], q: f64) -> u64 {
    assert!((0.0..=100.0).contains(&q), "percentile out of range: {q}");
    if sorted.is_empty() {
        return 0;
    }
    debug_assert!(sorted.windows(2).all(|w| w[0] <= w[1]), "input not sorted");
    let rank = ((q / 100.0) * sorted.len() as f64).ceil() as usize;
    sorted[rank.saturating_sub(1).min(sorted.len() - 1)]
}

/// Summary of a latency sample set, in the sample unit (microseconds by
/// convention).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct LatencySummary {
    /// Number of samples.
    pub count: u64,
    /// Median (50th percentile).
    pub p50: u64,
    /// 90th percentile.
    pub p90: u64,
    /// 99th percentile.
    pub p99: u64,
    /// Largest sample.
    pub max: u64,
    /// Arithmetic mean.
    pub mean: f64,
}

impl LatencySummary {
    /// Summarize an unsorted sample set (sorts a copy; the input order is
    /// irrelevant). An empty set summarizes to all zeros.
    #[must_use]
    pub fn from_unsorted(samples: &[u64]) -> LatencySummary {
        let mut sorted = samples.to_vec();
        sorted.sort_unstable();
        LatencySummary::from_sorted(&sorted)
    }

    /// Summarize an already-sorted sample set without copying.
    #[must_use]
    pub fn from_sorted(sorted: &[u64]) -> LatencySummary {
        let count = sorted.len() as u64;
        let mean = if sorted.is_empty() {
            0.0
        } else {
            sorted.iter().sum::<u64>() as f64 / count as f64
        };
        LatencySummary {
            count,
            p50: percentile(sorted, 50.0),
            p90: percentile(sorted, 90.0),
            p99: percentile(sorted, 99.0),
            max: sorted.last().copied().unwrap_or(0),
            mean,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn percentile_nearest_rank() {
        let sorted: Vec<u64> = (1..=100).collect();
        assert_eq!(percentile(&sorted, 50.0), 50);
        assert_eq!(percentile(&sorted, 99.0), 99);
        assert_eq!(percentile(&sorted, 100.0), 100);
        assert_eq!(percentile(&sorted, 0.0), 1);
        assert_eq!(percentile(&[7], 99.0), 7);
        assert_eq!(percentile(&[], 50.0), 0);
    }

    #[test]
    fn summary_matches_hand_computation() {
        let s = LatencySummary::from_unsorted(&[5, 1, 3, 2, 4]);
        assert_eq!(s.count, 5);
        assert_eq!(s.p50, 3);
        assert_eq!(s.p99, 5);
        assert_eq!(s.max, 5);
        assert!((s.mean - 3.0).abs() < 1e-12);
        let empty = LatencySummary::from_unsorted(&[]);
        assert_eq!((empty.count, empty.p50, empty.max), (0, 0, 0));
        assert_eq!(empty.mean, 0.0);
    }

    #[test]
    #[should_panic(expected = "percentile out of range")]
    fn percentile_rejects_out_of_range() {
        let _ = percentile(&[1], 101.0);
    }
}
