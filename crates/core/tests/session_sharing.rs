//! The sharing acceptance test, alone in its own binary: nothing else in
//! this process may run a fresh simulation, so the global counter's value
//! is exact.

use osarch_core::session;
use osarch_core::{experiments, simulation_count, Arch, Table};

/// Generating every report — twice, plus the full registry with the
/// ablation study — runs exactly one simulation per architecture, total.
#[test]
fn all_reports_simulate_each_architecture_exactly_once() {
    let shared = session::shared();
    shared.prime();
    assert_eq!(simulation_count(), Arch::COUNT as u64);
    assert_eq!(shared.misses(), Arch::COUNT as u64);

    let first: String = experiments::all_reports()
        .iter()
        .map(Table::render)
        .collect();
    let second: String = session::all_tables().iter().map(Table::render).collect();
    assert_eq!(
        simulation_count(),
        Arch::COUNT as u64,
        "report generation must reuse the shared measurements"
    );
    assert_eq!(shared.misses(), Arch::COUNT as u64);
    assert!(shared.hits() > 0, "the reports must have read the session");
    assert!(
        second.starts_with(&first),
        "registry order starts with the paper reports"
    );
}
