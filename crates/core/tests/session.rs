//! Integration tests for the shared measurement session, the report
//! registry and the machine-readable emitters.
//!
//! The global-simulation-count assertion lives in its own test binary
//! (`session_sharing.rs`): these tests call [`osarch_core::measure_fresh`],
//! which bumps the process-wide counter.

use osarch_core::session::{self, MeasurementSession};
use osarch_core::{experiments, measure_fresh, metrics, Arch, Primitive, Table};

/// A session's memoized measurement equals a fresh simulation,
/// field-for-field, on every modelled architecture.
#[test]
fn memoized_equals_fresh_for_every_arch() {
    let session = MeasurementSession::new();
    for arch in Arch::all() {
        let memoized = session.measurement(arch);
        let fresh = measure_fresh(arch);
        assert_eq!(memoized, &fresh, "{arch}");
    }
    assert_eq!(session.misses(), Arch::COUNT as u64);
    assert_eq!(session.hits(), 0);
    // A second pass is pure hits.
    for arch in Arch::all() {
        session.measurement(arch);
    }
    assert_eq!(session.misses(), Arch::COUNT as u64);
    assert_eq!(session.hits(), Arch::COUNT as u64);
}

/// Two parallel `all_reports` runs render byte-identically.
#[test]
fn parallel_report_generation_is_deterministic() {
    let first: String = experiments::all_reports()
        .iter()
        .map(Table::render)
        .collect();
    let second: String = experiments::all_reports()
        .iter()
        .map(Table::render)
        .collect();
    assert_eq!(first, second);
    assert_eq!(first.matches("Table 1:").count(), 1);
}

/// Every table name the CLI advertises resolves in the registry, and the
/// registry advertises nothing more.
#[test]
fn every_advertised_name_resolves() {
    let advertised = [
        "table1",
        "table2",
        "table3",
        "table4",
        "table5",
        "table6",
        "table7",
        "intext",
        "ablations",
        "vm",
        "tlb",
        "threads",
        "future",
        "depth",
    ];
    for name in advertised {
        let spec = session::report_by_name(name)
            .unwrap_or_else(|| panic!("advertised name {name:?} missing from registry"));
        assert_eq!(spec.name, name);
        assert!(!spec.summary.is_empty(), "{name}");
        let tables = session::resolve_reports(Some(name)).expect(name);
        assert_eq!(tables.len(), 1, "{name}");
        assert!(!tables[0].render().is_empty(), "{name}");
    }
    assert_eq!(session::REPORTS.len(), advertised.len());
    assert!(session::report_by_name("table99").is_none());
    assert!(session::resolve_reports(Some("nonsense")).is_none());
}

/// `resolve_reports` treats `None` and `"all"` as the full registry, in
/// registry order.
#[test]
fn resolve_all_returns_the_full_registry_in_order() {
    let tables = session::resolve_reports(None).expect("all");
    assert_eq!(tables.len(), session::REPORTS.len());
    assert!(tables[0].title().starts_with("Table 1"));
    assert!(tables.last().unwrap().title().contains("what-ifs"));
}

/// The benchmark document is valid JSON and covers all four primitives on
/// every modelled architecture.
#[test]
fn bench_json_is_valid_and_covers_every_primitive() {
    let doc = metrics::bench_json();
    assert_eq!(metrics::validate_json(&doc), Ok(()));
    assert!(doc.contains(&format!("\"schema\":\"{}\"", metrics::BENCH_SCHEMA)));
    let arch_count = Arch::all().len();
    assert_eq!(doc.matches("\"arch\":").count(), arch_count);
    for name in ["null_syscall", "trap", "pte_change", "context_switch"] {
        assert_eq!(
            doc.matches(&format!("\"name\":\"{name}\"")).count(),
            arch_count,
            "{name} must appear once per architecture"
        );
    }
    // Five phases per primitive, four primitives per architecture.
    assert_eq!(
        doc.matches("\"phase\":").count(),
        arch_count * Primitive::all().len() * 5
    );
}

/// The JSON table emitter reproduces the same cells the text renderer
/// shows, for every registered report.
#[test]
fn tables_json_is_valid_for_the_full_registry() {
    let tables = session::all_tables();
    let doc = metrics::tables_json(&tables);
    assert_eq!(metrics::validate_json(&doc), Ok(()));
    for table in &tables {
        assert!(
            doc.contains(&metrics::json_escape(table.title())),
            "{}",
            table.title()
        );
    }
}
