//! RPC scaling analyses from Section 2.1.
//!
//! Two in-text results:
//!
//! * Ousterhout's Sprite observation — null RPC time only halved when
//!   moving to a processor five times faster at integer code;
//! * Schroeder & Burrows' extrapolation — "tripling CPU speed would reduce
//!   SRC RPC latency … by about 50%, on the expectation that the 83% of the
//!   time not spent on the wire will decrease by a factor of 3" — which the
//!   paper argues is optimistic because system calls, traps, interrupts and
//!   memory-bound work do not scale with integer performance.

use crate::rpc::{component, src_rpc_breakdown, RpcConfig};
use osarch_cpu::Arch;

/// Comparison of application speedup vs delivered RPC speedup between two
/// machines.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct RpcScaling {
    /// Baseline machine.
    pub from: Arch,
    /// Faster machine.
    pub to: Arch,
    /// Integer application speedup (SPECmark ratio).
    pub application_speedup: f64,
    /// Actually delivered round-trip RPC speedup.
    pub rpc_speedup: f64,
}

/// Measure how much of `to`'s integer speedup over `from` survives in
/// round-trip null-RPC latency.
#[must_use]
pub fn rpc_scaling(from: Arch, to: Arch) -> RpcScaling {
    let base = src_rpc_breakdown(from, RpcConfig::null_call()).total_us();
    let fast = src_rpc_breakdown(to, RpcConfig::null_call()).total_us();
    RpcScaling {
        from,
        to,
        application_speedup: to.spec().application_speedup / from.spec().application_speedup,
        rpc_speedup: base / fast,
    }
}

/// The naïve and delivered effect of faster CPUs on SRC RPC.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct CpuScalingForecast {
    /// Latency reduction if every non-wire microsecond scaled by the CPU
    /// factor (the Schroeder & Burrows expectation), 0–1.
    pub naive_reduction: f64,
    /// Latency reduction actually delivered when the primitives scale the
    /// way Table 1 says they do, 0–1.
    pub delivered_reduction: f64,
}

/// Forecast the effect of a CPU `factor` times faster at integer code on
/// `arch`'s RPC latency: the naïve all-components-scale model versus a model
/// in which kernel transfer, interrupts and thread management scale only by
/// the primitive ratio observed between the CVAX and the R3000 (the
/// best-case primitive scaling in Table 1).
#[must_use]
pub fn cpu_scaling_forecast(arch: Arch, factor: f64) -> CpuScalingForecast {
    assert!(factor >= 1.0, "factor must be at least 1");
    let breakdown = src_rpc_breakdown(arch, RpcConfig::null_call());
    let total = breakdown.total_us();
    let wire = breakdown.micros(component::WIRE);
    let non_wire = total - wire;

    let naive_total = wire + non_wire / factor;

    // Primitive-bound components scale like the primitives, not the integer
    // stream. Table 1: the best RISC achieved roughly half its integer
    // speedup on primitives; memory-bound checksums/copies barely scale.
    let primitive_scale = 1.0 + (factor - 1.0) * 0.45;
    let memory_scale = 1.0 + (factor - 1.0) * 0.25;
    let compute_scale = factor;
    let scaled: f64 = breakdown
        .components
        .iter()
        .map(|c| {
            let scale = match c.name {
                component::WIRE => 1.0,
                component::KERNEL | component::INTERRUPT | component::THREAD => primitive_scale,
                component::CHECKSUM | component::COPY => memory_scale,
                _ => compute_scale,
            };
            c.micros / scale
        })
        .sum();

    CpuScalingForecast {
        naive_reduction: 1.0 - naive_total / total,
        delivered_reduction: 1.0 - scaled / total,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn rpc_speedup_lags_application_speedup() {
        // The Sprite observation, generalised: on every RISC the delivered
        // RPC speedup is well below the integer speedup.
        for to in [Arch::M88000, Arch::R2000, Arch::R3000, Arch::Sparc] {
            let s = rpc_scaling(Arch::Cvax, to);
            assert!(
                s.rpc_speedup < s.application_speedup * 0.8,
                "{}: rpc {:.2} vs app {:.2}",
                to,
                s.rpc_speedup,
                s.application_speedup
            );
        }
    }

    #[test]
    fn sprite_like_ratio_for_sparc() {
        // Sun-3/75 -> SPARCstation-1: integer x5, RPC only x2. Our CVAX ->
        // SPARC: integer x4.3; RPC should deliver roughly half that or less.
        let s = rpc_scaling(Arch::Cvax, Arch::Sparc);
        assert!(s.rpc_speedup < 2.8, "rpc speedup {:.2}", s.rpc_speedup);
        assert!(s.rpc_speedup > 1.0, "still faster in absolute terms");
    }

    #[test]
    fn naive_forecast_overstates_the_delivered_reduction() {
        let f = cpu_scaling_forecast(Arch::Cvax, 3.0);
        // Schroeder & Burrows expected ~50%.
        assert!(
            (0.4..=0.6).contains(&f.naive_reduction),
            "naive {:.2}",
            f.naive_reduction
        );
        assert!(
            f.delivered_reduction < f.naive_reduction - 0.05,
            "delivered {:.2} should fall clearly short of naive {:.2}",
            f.delivered_reduction,
            f.naive_reduction
        );
    }

    #[test]
    #[should_panic(expected = "at least 1")]
    fn sub_unity_factor_panics() {
        let _ = cpu_scaling_forecast(Arch::Cvax, 0.5);
    }
}
