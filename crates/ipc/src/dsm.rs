//! Ivy-style distributed shared virtual memory (Li & Hudak 1989), as
//! discussed in Section 3.
//!
//! "In systems such as Ivy, a network-wide shared virtual memory is used to
//! give the programmer on a workstation network the illusion of a
//! shared-memory multiprocessor. Pages can be replicated on different
//! workstations as long as the copies are mapped read-only. When one node
//! attempts a write, it faults. Software then executes an invalidation-based
//! coherence protocol…"
//!
//! Every protocol action is priced from the simulated machine's primitives:
//! the faulting node pays a trap, every mapping change pays a PTE change,
//! and every message pays wire time — which is exactly why the paper argues
//! DSM performance hangs on fast fault handling.

use crate::net::Network;
use osarch_cpu::Arch;
use osarch_kernel::PrimitiveCosts;
use std::collections::{BTreeSet, HashMap};
use std::fmt;

/// Coherence state of a page on one node.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum PageState {
    /// No valid mapping.
    Invalid,
    /// Mapped read-only; other nodes may hold copies.
    ReadShared,
    /// Mapped read-write; this node is the unique owner.
    Writable,
}

/// Identifier of a node in the DSM cluster.
pub type NodeId = usize;

#[derive(Debug, Clone)]
struct Directory {
    owner: NodeId,
    /// Nodes holding read-only copies (excluding a writable owner).
    copyset: BTreeSet<NodeId>,
    writable: bool,
}

/// Counters for the coherence protocol.
#[derive(Debug, Clone, Copy, PartialEq, Default)]
pub struct DsmStats {
    /// Read faults serviced.
    pub read_faults: u64,
    /// Write faults serviced.
    pub write_faults: u64,
    /// Invalidation messages sent.
    pub invalidations: u64,
    /// Whole-page transfers over the network.
    pub page_transfers: u64,
    /// Local (no-fault) accesses.
    pub hits: u64,
    /// Total protocol time, microseconds.
    pub protocol_us: f64,
}

/// An invalidation-based shared-virtual-memory system over `n` identical
/// workstations.
///
/// # Example
///
/// ```
/// use osarch_cpu::Arch;
/// use osarch_ipc::{DsmSystem, Network};
///
/// let mut dsm = DsmSystem::new(Arch::R3000, 4, Network::ethernet());
/// dsm.write(0, 7); // node 0 becomes owner of page 7
/// dsm.read(1, 7);  // node 1 gets a read-only replica
/// let w = dsm.write(2, 7); // node 2 must invalidate both copies
/// assert!(w > 0.0);
/// assert!(dsm.stats().invalidations >= 2);
/// ```
#[derive(Debug)]
pub struct DsmSystem {
    arch: Arch,
    nodes: usize,
    network: Network,
    costs: PrimitiveCosts,
    pages: HashMap<u32, Directory>,
    states: Vec<HashMap<u32, PageState>>,
    page_bytes: u32,
    stats: DsmStats,
}

impl DsmSystem {
    /// A cluster of `nodes` machines of type `arch` joined by `network`.
    ///
    /// # Panics
    ///
    /// Panics when `nodes` is zero.
    #[must_use]
    pub fn new(arch: Arch, nodes: usize, network: Network) -> DsmSystem {
        assert!(nodes > 0, "a cluster needs at least one node");
        DsmSystem {
            arch,
            nodes,
            network,
            costs: PrimitiveCosts::measure(arch),
            pages: HashMap::new(),
            states: vec![HashMap::new(); nodes],
            page_bytes: 4096,
            stats: DsmStats::default(),
        }
    }

    /// Number of nodes.
    #[must_use]
    pub fn nodes(&self) -> usize {
        self.nodes
    }

    /// The protocol counters.
    #[must_use]
    pub fn stats(&self) -> DsmStats {
        self.stats
    }

    /// Current state of `page` on `node`.
    #[must_use]
    pub fn state(&self, node: NodeId, page: u32) -> PageState {
        *self.states[node].get(&page).unwrap_or(&PageState::Invalid)
    }

    fn small_message_us(&self) -> f64 {
        // Request/ack: a minimal packet plus send/receive kernel work on
        // both ends (one syscall each side, one interrupt each side).
        self.network.packet_time_us(32) + self.costs.syscall_us + self.costs.trap_us
    }

    fn page_transfer_us(&mut self) -> f64 {
        self.stats.page_transfers += 1;
        self.network.packet_time_us(self.page_bytes) + self.costs.trap_us + self.costs.syscall_us
    }

    fn set_state(&mut self, node: NodeId, page: u32, state: PageState) {
        if state == PageState::Invalid {
            self.states[node].remove(&page);
        } else {
            self.states[node].insert(page, state);
        }
    }

    /// Read `page` from `node`. Returns the microseconds the access cost
    /// (0 for a local hit).
    ///
    /// # Panics
    ///
    /// Panics when `node` is out of range.
    pub fn read(&mut self, node: NodeId, page: u32) -> f64 {
        assert!(node < self.nodes, "node {node} out of range");
        match self.state(node, page) {
            PageState::ReadShared | PageState::Writable => {
                self.stats.hits += 1;
                0.0
            }
            PageState::Invalid => {
                self.stats.read_faults += 1;
                // Fault, request the page from the owner, map read-only.
                let mut us = self.costs.trap_us + self.small_message_us();
                match self.pages.get(&page).cloned() {
                    Some(mut dir) => {
                        // Owner demotes to read-only if it was writable.
                        if dir.writable {
                            us += self.costs.pte_change_us;
                            self.set_state(dir.owner, page, PageState::ReadShared);
                            dir.writable = false;
                            dir.copyset.insert(dir.owner);
                        }
                        us += self.page_transfer_us();
                        dir.copyset.insert(node);
                        self.pages.insert(page, dir);
                    }
                    None => {
                        // First touch anywhere: this node becomes owner.
                        let mut copyset = BTreeSet::new();
                        copyset.insert(node);
                        self.pages.insert(
                            page,
                            Directory {
                                owner: node,
                                copyset,
                                writable: false,
                            },
                        );
                    }
                }
                us += self.costs.pte_change_us; // install the read mapping
                self.set_state(node, page, PageState::ReadShared);
                self.stats.protocol_us += us;
                us
            }
        }
    }

    /// Write `page` from `node`, invalidating remote copies as required.
    /// Returns the microseconds the access cost (0 for an owning write hit).
    ///
    /// # Panics
    ///
    /// Panics when `node` is out of range.
    pub fn write(&mut self, node: NodeId, page: u32) -> f64 {
        assert!(node < self.nodes, "node {node} out of range");
        if self.state(node, page) == PageState::Writable {
            self.stats.hits += 1;
            return 0.0;
        }
        self.stats.write_faults += 1;
        let mut us = self.costs.trap_us;
        let had_copy = self.state(node, page) == PageState::ReadShared;
        if let Some(dir) = self.pages.get(&page).cloned() {
            // Fetch the data unless we already hold a copy.
            us += self.small_message_us();
            if !had_copy {
                us += self.page_transfer_us();
            }
            // Invalidate every other copy (and the old owner).
            let mut victims: BTreeSet<NodeId> = dir.copyset.clone();
            victims.insert(dir.owner);
            victims.remove(&node);
            for victim in victims {
                self.stats.invalidations += 1;
                // Invalidation message + remote PTE change + ack.
                us += self.small_message_us() + self.costs.pte_change_us;
                self.set_state(victim, page, PageState::Invalid);
            }
        }
        // Map read-write locally and record ownership.
        us += self.costs.pte_change_us;
        let mut copyset = BTreeSet::new();
        copyset.insert(node);
        self.pages.insert(
            page,
            Directory {
                owner: node,
                copyset,
                writable: true,
            },
        );
        self.set_state(node, page, PageState::Writable);
        self.stats.protocol_us += us;
        us
    }

    /// Check the single-writer / multiple-reader invariant over all pages.
    #[must_use]
    pub fn coherent(&self) -> bool {
        let all_pages: BTreeSet<u32> = self.states.iter().flat_map(|m| m.keys().copied()).collect();
        for page in all_pages {
            let writers = (0..self.nodes)
                .filter(|&n| self.state(n, page) == PageState::Writable)
                .count();
            let readers = (0..self.nodes)
                .filter(|&n| self.state(n, page) == PageState::ReadShared)
                .count();
            if writers > 1 || (writers == 1 && readers > 0) {
                return false;
            }
        }
        true
    }
}

impl fmt::Display for DsmSystem {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{}-node {} DSM: {} read faults, {} write faults, {} invalidations, {:.0} us protocol",
            self.nodes,
            self.arch,
            self.stats.read_faults,
            self.stats.write_faults,
            self.stats.invalidations,
            self.stats.protocol_us
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn cluster(arch: Arch) -> DsmSystem {
        DsmSystem::new(arch, 4, Network::ethernet())
    }

    #[test]
    fn first_touch_is_cheap_ownership() {
        let mut dsm = cluster(Arch::R3000);
        let us = dsm.write(0, 1);
        assert!(us > 0.0, "first write still faults locally");
        assert_eq!(dsm.write(0, 1), 0.0, "owning writes are free");
        assert_eq!(
            dsm.stats().page_transfers,
            0,
            "no data moved for first touch"
        );
    }

    #[test]
    fn read_replication_then_write_invalidates() {
        let mut dsm = cluster(Arch::R3000);
        dsm.write(0, 5);
        dsm.read(1, 5);
        dsm.read(2, 5);
        assert_eq!(dsm.state(1, 5), PageState::ReadShared);
        assert!(dsm.coherent());
        dsm.write(3, 5);
        assert_eq!(dsm.state(0, 5), PageState::Invalid);
        assert_eq!(dsm.state(1, 5), PageState::Invalid);
        assert_eq!(dsm.state(2, 5), PageState::Invalid);
        assert_eq!(dsm.state(3, 5), PageState::Writable);
        assert_eq!(dsm.stats().invalidations, 3);
        assert!(dsm.coherent());
    }

    #[test]
    fn reads_after_invalidation_refault() {
        let mut dsm = cluster(Arch::R3000);
        dsm.write(0, 9);
        dsm.read(1, 9);
        dsm.write(0, 9); // invalidates node 1
        let us = dsm.read(1, 9);
        assert!(us > 0.0, "node 1 must refault");
        assert!(dsm.coherent());
    }

    #[test]
    fn write_cost_grows_with_copyset() {
        // Compare writers that both already hold a read copy, so neither
        // pays a page transfer — only the invalidation fan-out differs.
        let solo = {
            let mut dsm = cluster(Arch::R3000);
            dsm.write(0, 2);
            dsm.read(1, 2);
            dsm.write(1, 2) // one victim: node 0
        };
        let crowded = {
            let mut dsm = cluster(Arch::R3000);
            dsm.write(0, 2);
            dsm.read(1, 2);
            dsm.read(2, 2);
            dsm.read(3, 2);
            dsm.write(1, 2) // three victims: nodes 0, 2, 3
        };
        assert!(
            crowded > solo * 1.8,
            "copyset fan-out: {crowded:.0} vs {solo:.0}"
        );
    }

    #[test]
    fn ping_pong_writes_are_the_pathology() {
        let mut dsm = cluster(Arch::R3000);
        let mut total = 0.0;
        for i in 0..10 {
            total += dsm.write(i % 2, 7);
        }
        assert!(total > 1000.0, "ping-pong must be expensive: {total:.0} us");
        assert!(dsm.coherent());
    }

    #[test]
    fn slow_trap_machines_pay_more_protocol_overhead() {
        // Same access pattern; the CVAX's slower primitives show up even
        // though the network is identical.
        let run = |arch| {
            let mut dsm = cluster(arch);
            let mut total = 0.0;
            for i in 0..12u32 {
                total += dsm.write((i % 3) as usize, i % 4);
                total += dsm.read(((i + 1) % 3) as usize, i % 4);
            }
            total
        };
        assert!(run(Arch::Cvax) > run(Arch::R3000));
    }

    #[test]
    fn faster_networks_help_but_primitives_remain() {
        let run = |network: Network| {
            let mut dsm = DsmSystem::new(Arch::R3000, 4, network);
            let mut total = 0.0;
            for i in 0..10 {
                total += dsm.write(i % 2, 3);
            }
            total
        };
        let slow = run(Network::ethernet());
        let fast = run(Network::future(100.0));
        assert!(
            fast < slow / 10.0,
            "a 100x network must help a wire-bound pattern"
        );
        // Even with a 100x network the software protocol keeps a floor of
        // traps and PTE changes: far more than the wire share would predict.
        assert!(
            fast > slow / 100.0 * 2.0,
            "fast {fast:.0} vs slow {slow:.0}"
        );
    }

    #[test]
    fn coherence_holds_under_a_mixed_deterministic_pattern() {
        let mut dsm = DsmSystem::new(Arch::Sparc, 6, Network::ethernet());
        for step in 0..500u32 {
            let node = (step * 7 % 6) as usize;
            let page = step * 3 % 11;
            if step % 3 == 0 {
                dsm.write(node, page);
            } else {
                dsm.read(node, page);
            }
            assert!(dsm.coherent(), "incoherent at step {step}");
        }
        assert!(dsm.stats().read_faults > 0);
        assert!(dsm.stats().write_faults > 0);
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn out_of_range_node_panics() {
        let mut dsm = cluster(Arch::R3000);
        dsm.read(99, 0);
    }

    #[test]
    fn display_summarises() {
        let mut dsm = cluster(Arch::R3000);
        dsm.write(0, 0);
        assert!(dsm.to_string().contains("write faults"));
    }
}
