//! Cross-machine remote procedure call in the style of SRC RPC
//! (Schroeder & Burrows 1990), reproducing Table 3.
//!
//! A round-trip null RPC decomposes into stubs, checksums, kernel transfer,
//! interrupt processing, thread management/dispatch, byte copying, and wire
//! time. Compute components are *executed* on the simulated machine — the
//! checksum loop really does pair each add with a load from an uncached I/O
//! buffer (Section 2.1: "each checksum addition is paired with a load, which
//! on some RISCs will likely fetch from a non-cached I/O buffer").

use crate::net::Network;
use osarch_cpu::{Arch, MicroOp, Program};
use osarch_kernel::{measure, Machine};
use osarch_mem::{AddressLayout, Protection, Pte, VirtAddr, KERNEL_ASID};
use std::fmt;

/// One component of the RPC time budget.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct RpcComponent {
    /// Component label (Table 3 row).
    pub name: &'static str,
    /// Round-trip microseconds spent in this component.
    pub micros: f64,
}

/// The component breakdown of a round-trip RPC.
#[derive(Debug, Clone, PartialEq)]
pub struct RpcBreakdown {
    /// The machine both ends run on.
    pub arch: Arch,
    /// Request payload bytes.
    pub request_bytes: u32,
    /// Reply payload bytes.
    pub reply_bytes: u32,
    /// Components, in display order. Wire time is the last entry.
    pub components: Vec<RpcComponent>,
}

impl RpcBreakdown {
    /// Total round-trip time in microseconds.
    #[must_use]
    pub fn total_us(&self) -> f64 {
        self.components.iter().map(|c| c.micros).sum()
    }

    /// The share (0–1) of a named component, or 0 when absent.
    #[must_use]
    pub fn share(&self, name: &str) -> f64 {
        let total = self.total_us();
        self.components
            .iter()
            .find(|c| c.name == name)
            .map_or(0.0, |c| c.micros / total)
    }

    /// Microseconds of a named component, or 0 when absent.
    #[must_use]
    pub fn micros(&self, name: &str) -> f64 {
        self.components
            .iter()
            .find(|c| c.name == name)
            .map_or(0.0, |c| c.micros)
    }
}

impl fmt::Display for RpcBreakdown {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(
            f,
            "{} RPC, {}B request / {}B reply: {:.0} us total",
            self.arch,
            self.request_bytes,
            self.reply_bytes,
            self.total_us()
        )?;
        for c in &self.components {
            writeln!(
                f,
                "  {:24} {:8.1} us  {:4.0}%",
                c.name,
                c.micros,
                self.share(c.name) * 100.0
            )?;
        }
        Ok(())
    }
}

/// Component labels, in Table 3 order.
pub mod component {
    /// Client and server stub marshalling.
    pub const STUBS: &str = "Stubs (marshal)";
    /// Byte copying between buffers.
    pub const COPY: &str = "Data copying";
    /// Checksum computation over packets.
    pub const CHECKSUM: &str = "Checksum";
    /// System calls and kernel transfer.
    pub const KERNEL: &str = "Kernel transfer";
    /// Interrupt processing for packet arrival.
    pub const INTERRUPT: &str = "Interrupt processing";
    /// Thread management: wakeup, dispatch, context switches.
    pub const THREAD: &str = "Thread management";
    /// Time on the wire.
    pub const WIRE: &str = "Wire";
}

/// Configuration of the RPC model.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct RpcConfig {
    /// The network between the two machines.
    pub network: Network,
    /// Request payload bytes (74 for the paper's small packet).
    pub request_bytes: u32,
    /// Reply payload bytes.
    pub reply_bytes: u32,
}

impl RpcConfig {
    /// The paper's small-packet null RPC: 74-byte request and small reply.
    #[must_use]
    pub fn null_call() -> RpcConfig {
        RpcConfig {
            network: Network::ethernet(),
            request_bytes: 74,
            reply_bytes: 74,
        }
    }

    /// The paper's large-result case: 1500-byte reply.
    #[must_use]
    pub fn large_result() -> RpcConfig {
        RpcConfig {
            network: Network::ethernet(),
            request_bytes: 74,
            reply_bytes: 1500,
        }
    }
}

/// The address of an uncached I/O buffer on this machine, mapping one if the
/// architecture needs it (machines without an unmapped-uncached segment get
/// an uncacheable kernel mapping).
fn io_buffer(machine: &mut Machine) -> VirtAddr {
    match machine.spec().mem.layout {
        AddressLayout::Mips => VirtAddr(0xa000_4000), // kseg1: uncached by definition
        _ => {
            let addr = VirtAddr(0x8020_0000);
            let mut pte = Pte::new(0x9000, Protection::RW);
            pte.cacheable = false;
            for page in 0..2 {
                let mut entry = pte;
                entry.pfn += page;
                machine
                    .mem_mut()
                    .map_pte(KERNEL_ASID, addr.offset(page * 4096), entry);
            }
            addr
        }
    }
}

/// Per-word checksum loop over `bytes` of uncached packet buffer.
fn checksum_program(buffer: VirtAddr, bytes: u32) -> Program {
    let words = bytes.div_ceil(4);
    let mut b = Program::builder("checksum");
    b.alu(6); // loop setup
    for i in 0..words {
        b.load(buffer.offset(4 * (i % 1024)));
        b.op(MicroOp::Alu); // the paired add
    }
    b.alu(4);
    b.build()
}

/// A stub: fixed marshalling work plus a per-word copy of the arguments.
fn stub_program(scratch: VirtAddr, bytes: u32, fixed_instrs: u32) -> Program {
    let words = bytes.div_ceil(4);
    let mut b = Program::builder("stub");
    b.alu(fixed_instrs);
    for i in 0..words {
        b.load(scratch.offset(4 * (i % 512)));
        b.store(scratch.offset(2048 + 4 * (i % 512)));
    }
    b.build()
}

/// A buffer-to-buffer copy of `bytes`.
fn copy_program(scratch: VirtAddr, bytes: u32) -> Program {
    let words = bytes.div_ceil(4);
    let mut b = Program::builder("copy");
    b.alu(4);
    for i in 0..words {
        b.load(scratch.offset(4 * (i % 512)));
        b.store(scratch.offset(4096 + 4 * (i % 512)));
    }
    b.build()
}

/// Fixed per-RPC thread-management work beyond the context switches
/// (wakeups, run-queue manipulation, timer setup).
fn dispatch_program(scratch: VirtAddr) -> Program {
    let mut b = Program::builder("dispatch");
    b.alu(260);
    b.load_run(scratch, 16);
    b.store_run(scratch.offset(64), 16);
    b.alu(120);
    b.build()
}

/// Compute the Table 3 breakdown of a round-trip SRC-style RPC on `arch`.
///
/// Structure of one round trip (both hosts identical):
/// * client stub marshals, client traps to the kernel to send (1 syscall);
/// * the packet is copied to the wire buffer and checksummed;
/// * wire time; the server host takes an interrupt, checksums, copies,
///   wakes the server thread (context switch + dispatch);
/// * server stub unmarshals, calls the procedure, marshals the reply
///   (1 syscall to send);
/// * the reply retraces the path back.
#[must_use]
pub fn src_rpc_breakdown(arch: Arch, config: RpcConfig) -> RpcBreakdown {
    let mut machine = Machine::new(arch);
    let io = io_buffer(&mut machine);
    let scratch = machine.layout().pte_area;
    let costs = measure(arch);
    let times = costs.times_us();
    let clock = machine.spec().clock_mhz;
    let mut us = |program: &Program| machine.measure(program).micros(clock);

    let req = config.request_bytes;
    let rep = config.reply_bytes;

    // Stubs: client marshal + unmarshal, server unmarshal + marshal. Bulk
    // data travels by reference to the wire buffer; the stubs proper only
    // walk the header/argument words (at most a small packet's worth).
    let header = |bytes: u32| bytes.min(74);
    let stubs = us(&stub_program(scratch, header(req), 420)) * 2.0
        + us(&stub_program(scratch, header(rep), 420)) * 2.0;
    // One copy into the wire buffer per packet (the controller DMAs the
    // other side).
    let copy = us(&copy_program(scratch, req)) + us(&copy_program(scratch, rep));
    // One software checksum pass per packet (folded into the send-side copy
    // on the transmitting host).
    let checksum = us(&checksum_program(io, req)) + us(&checksum_program(io, rep));
    // Kernel transfer: 4 kernel boundary crossings (client send, server
    // receive return, server send, client receive return).
    let kernel = times.null_syscall * 4.0;
    // Interrupts: one packet arrival interrupt per host.
    let interrupt = times.trap * 2.0;
    // Thread management: wake + dispatch the server thread, then the client.
    let thread = times.context_switch * 2.0 + us(&dispatch_program(scratch)) * 2.0;
    // Wire.
    let wire = config.network.packet_time_us(req) + config.network.packet_time_us(rep);

    RpcBreakdown {
        arch,
        request_bytes: req,
        reply_bytes: rep,
        components: vec![
            RpcComponent {
                name: component::STUBS,
                micros: stubs,
            },
            RpcComponent {
                name: component::COPY,
                micros: copy,
            },
            RpcComponent {
                name: component::CHECKSUM,
                micros: checksum,
            },
            RpcComponent {
                name: component::KERNEL,
                micros: kernel,
            },
            RpcComponent {
                name: component::INTERRUPT,
                micros: interrupt,
            },
            RpcComponent {
                name: component::THREAD,
                micros: thread,
            },
            RpcComponent {
                name: component::WIRE,
                micros: wire,
            },
        ],
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn small_packet_wire_share_is_near_17_percent() {
        let b = src_rpc_breakdown(Arch::Cvax, RpcConfig::null_call());
        let wire = b.share(component::WIRE);
        assert!((0.12..=0.24).contains(&wire), "wire share {wire:.2}");
    }

    #[test]
    fn large_result_wire_share_approaches_half() {
        let b = src_rpc_breakdown(Arch::Cvax, RpcConfig::large_result());
        let wire = b.share(component::WIRE);
        assert!((0.35..=0.6).contains(&wire), "wire share {wire:.2}");
    }

    #[test]
    fn checksum_share_roughly_doubles_with_large_results() {
        let small = src_rpc_breakdown(Arch::Cvax, RpcConfig::null_call());
        let large = src_rpc_breakdown(Arch::Cvax, RpcConfig::large_result());
        let ratio = large.share(component::CHECKSUM) / small.share(component::CHECKSUM);
        assert!(
            ratio >= 1.8,
            "checksum share ratio {ratio:.2} must at least double"
        );
    }

    #[test]
    fn total_is_component_sum() {
        let b = src_rpc_breakdown(Arch::R3000, RpcConfig::null_call());
        let sum: f64 = b.components.iter().map(|c| c.micros).sum();
        assert!((b.total_us() - sum).abs() < 1e-9);
    }

    #[test]
    fn missing_component_shares_are_zero() {
        let b = src_rpc_breakdown(Arch::R3000, RpcConfig::null_call());
        assert_eq!(b.share("No such row"), 0.0);
        assert_eq!(b.micros("No such row"), 0.0);
    }

    #[test]
    fn breakdown_renders() {
        let b = src_rpc_breakdown(Arch::Sparc, RpcConfig::null_call());
        let text = b.to_string();
        assert!(text.contains("Wire"));
        assert!(text.contains("Checksum"));
    }

    #[test]
    fn faster_network_shifts_cost_to_the_processor() {
        // Section 2.1: as networks speed up 10-100x, the lower bound on RPC
        // becomes the OS primitives.
        let slow = src_rpc_breakdown(
            Arch::R3000,
            RpcConfig {
                network: Network::ethernet(),
                ..RpcConfig::null_call()
            },
        );
        let fast = src_rpc_breakdown(
            Arch::R3000,
            RpcConfig {
                network: Network::future(100.0),
                ..RpcConfig::null_call()
            },
        );
        assert!(fast.share(component::WIRE) < slow.share(component::WIRE) / 3.0);
        assert!(fast.total_us() < slow.total_us());
    }
}
