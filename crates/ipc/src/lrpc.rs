//! Lightweight remote procedure call (Bershad et al. 1990), reproducing
//! Table 4.
//!
//! LRPC strips local cross-address-space calls to the hardware floor:
//! shared, statically mapped argument buffers and direct execution of the
//! client's thread in the server's address space. What remains — and what
//! Table 4 shows — is the cost of communicating through the kernel: two
//! kernel entries, two address-space switches, and (on an untagged TLB like
//! the CVAX's) the TLB refill misses those switches cause, an estimated 25%
//! of the total.

use osarch_cpu::{Arch, MicroOp, Program};
use osarch_kernel::{Machine, USER2_ASID, USER_ASID};
use osarch_mem::{PageTableSpec, TlbRefill};
use std::fmt;

/// One row of the Table 4 breakdown.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct LrpcComponent {
    /// Row label.
    pub name: &'static str,
    /// Microseconds in the measured LRPC.
    pub micros: f64,
    /// Whether the component is part of the hardware-imposed minimum (as
    /// opposed to avoidable software overhead).
    pub hardware_minimum: bool,
}

/// Component labels for the LRPC breakdown.
pub mod component {
    /// Kernel entry and exit, twice (call and return).
    pub const KERNEL: &str = "Kernel transfer";
    /// The address-space change itself.
    pub const SWITCH: &str = "Address-space switch";
    /// TLB refill misses caused by the switches.
    pub const TLB: &str = "TLB misses";
    /// Argument copy through the shared A-stack.
    pub const COPY: &str = "Argument copy";
    /// Binding validation, linkage, dispatch bookkeeping.
    pub const OVERHEAD: &str = "Software overhead";
}

/// The measured breakdown of a null LRPC on one architecture.
#[derive(Debug, Clone, PartialEq)]
pub struct LrpcBreakdown {
    /// The measured architecture.
    pub arch: Arch,
    /// Components in display order.
    pub components: Vec<LrpcComponent>,
}

impl LrpcBreakdown {
    /// Total round-trip microseconds.
    #[must_use]
    pub fn total_us(&self) -> f64 {
        self.components.iter().map(|c| c.micros).sum()
    }

    /// The hardware-imposed minimum (components software cannot remove).
    #[must_use]
    pub fn hardware_minimum_us(&self) -> f64 {
        self.components
            .iter()
            .filter(|c| c.hardware_minimum)
            .map(|c| c.micros)
            .sum()
    }

    /// Share (0–1) of a named component.
    #[must_use]
    pub fn share(&self, name: &str) -> f64 {
        let total = self.total_us();
        self.components
            .iter()
            .find(|c| c.name == name)
            .map_or(0.0, |c| c.micros / total)
    }
}

impl fmt::Display for LrpcBreakdown {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(
            f,
            "{} null LRPC: {:.1} us total, {:.1} us hardware minimum",
            self.arch,
            self.total_us(),
            self.hardware_minimum_us()
        )?;
        for c in &self.components {
            writeln!(
                f,
                "  {:24} {:7.2} us  {:4.0}%{}",
                c.name,
                c.micros,
                self.share(c.name) * 100.0,
                if c.hardware_minimum {
                    "  (hardware)"
                } else {
                    ""
                }
            )?;
        }
        Ok(())
    }
}

/// Estimated refill cycles for one TLB miss on this machine.
fn refill_cycles(machine: &Machine) -> f64 {
    let mem = &machine.spec().mem;
    match mem.tlb_refill {
        TlbRefill::Hardware => {
            let walk_refs = match mem.page_table {
                PageTableSpec::Linear { extra_indirection } => {
                    if extra_indirection {
                        2.0
                    } else {
                        1.0
                    }
                }
                PageTableSpec::ThreeLevel => 3.0,
                PageTableSpec::Software => 2.0,
            };
            walk_refs * f64::from(mem.timing.read_cycles)
        }
        TlbRefill::Software { user_cycles, .. } => f64::from(user_cycles),
    }
}

/// Measure the Table 4 breakdown of a null LRPC on `arch`.
#[must_use]
pub fn lrpc_breakdown(arch: Arch) -> LrpcBreakdown {
    let mut machine = Machine::new(arch);
    let layout = *machine.layout();
    let clock = machine.spec().clock_mhz;

    // Kernel transfer: two minimal kernel entry/exits.
    let mut b = Program::builder("lrpc-kernel-transfer");
    for _ in 0..2 {
        b.op(MicroOp::TrapEnter);
        b.alu(4);
        b.op(MicroOp::TrapReturn);
    }
    let kernel_prog = b.build();

    // Address-space switches, plus the working-set touches that take the
    // refill misses an untagged TLB forces. Touch eight distinct kernel
    // pages after each switch (server code/stack/linkage on the way out,
    // client pages on the way back).
    let pages = [
        layout.save_area,
        layout.kstack,
        layout.pcb[0],
        layout.pcb[1],
        layout.uarea,
        layout.syscall_arg,
        layout.pte_area,
        layout.pte_area.offset(4096),
    ];
    let mut b = Program::builder("lrpc-switch");
    for _ in 0..2 {
        b.op(MicroOp::SwitchAddressSpace(USER_ASID, USER2_ASID));
        for page in pages {
            b.load(page);
        }
    }
    let switch_prog = b.build();

    // Argument copy through the shared, statically mapped A-stack: one copy
    // on call, one on return (the two copies LRPC cannot avoid).
    let astack = layout.syscall_arg;
    let mut b = Program::builder("lrpc-copy");
    for half in 0..2u32 {
        for i in 0..4 {
            b.load(astack.offset(4 * i + 512 * half));
            b.store(astack.offset(256 + 4 * i + 512 * half));
        }
    }
    let copy_prog = b.build();

    // Binding validation, linkage record, dispatch bookkeeping.
    let mut b = Program::builder("lrpc-overhead");
    b.alu(34);
    b.load_run(layout.pte_area.offset(8192), 6);
    b.store_run(layout.pte_area.offset(8192 + 64), 4);
    b.alu(16);
    let overhead_prog = b.build();

    let kernel_stats = machine.measure(&kernel_prog);
    let switch_stats = machine.measure(&switch_prog);
    let copy_stats = machine.measure(&copy_prog);
    let overhead_stats = machine.measure(&overhead_prog);

    let tlb_cycles = switch_stats.tlb_misses as f64 * refill_cycles(&machine);
    let switch_direct_cycles = (switch_stats.cycles as f64 - tlb_cycles).max(0.0);
    let us = |cycles: f64| cycles / clock;

    LrpcBreakdown {
        arch,
        components: vec![
            LrpcComponent {
                name: component::KERNEL,
                micros: kernel_stats.micros(clock),
                hardware_minimum: true,
            },
            LrpcComponent {
                name: component::SWITCH,
                micros: us(switch_direct_cycles),
                hardware_minimum: true,
            },
            LrpcComponent {
                name: component::TLB,
                micros: us(tlb_cycles),
                hardware_minimum: true,
            },
            LrpcComponent {
                name: component::COPY,
                micros: copy_stats.micros(clock),
                hardware_minimum: true,
            },
            LrpcComponent {
                name: component::OVERHEAD,
                micros: overhead_stats.micros(clock),
                hardware_minimum: false,
            },
        ],
    }
}

/// Time for a conventional message-based local RPC on `arch`: the path LRPC
/// replaces (4 kernel boundary crossings, 2 full context switches, 4 message
/// copies, queue management).
#[must_use]
pub fn message_rpc_us(arch: Arch) -> f64 {
    let costs = osarch_kernel::measure(arch);
    let times = costs.times_us();
    let mut machine = Machine::new(arch);
    let layout = *machine.layout();
    let clock = machine.spec().clock_mhz;
    // 4 copies of a small (32-byte) message plus queue bookkeeping.
    let mut b = Program::builder("message-path");
    for pass in 0..4u32 {
        for i in 0..8 {
            b.load(layout.pte_area.offset(4 * i + 1024 * pass));
            b.store(layout.pte_area.offset(512 + 4 * i + 1024 * pass));
        }
        b.alu(40);
    }
    let copies = machine.measure(&b.build()).micros(clock);
    times.null_syscall * 4.0 + times.context_switch * 2.0 + copies
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn kernel_transfer_dominates_the_hardware_minimum() {
        // "With LRPC, the real factor limiting performance is the hardware
        // cost of communicating through the kernel."
        let b = lrpc_breakdown(Arch::Cvax);
        let hw = b.hardware_minimum_us();
        assert!(
            hw / b.total_us() > 0.6,
            "hardware share {:.2}",
            hw / b.total_us()
        );
    }

    #[test]
    fn cvax_loses_about_a_quarter_to_tlb_misses() {
        // "an estimated 25% of the time is lost to TLB misses on the CVAX,
        // because the entire TLB must be purged twice."
        let b = lrpc_breakdown(Arch::Cvax);
        let share = b.share(component::TLB);
        assert!((0.15..=0.35).contains(&share), "TLB share {share:.2}");
    }

    #[test]
    fn tagged_tlbs_avoid_the_purge() {
        for arch in [Arch::R3000, Arch::Sparc] {
            let b = lrpc_breakdown(arch);
            assert_eq!(
                b.share(component::TLB),
                0.0,
                "{arch} should take no switch misses"
            );
        }
    }

    #[test]
    fn lrpc_beats_message_rpc_by_about_three_times() {
        // "For the simplest local calls, LRPC achieves a 3-fold performance
        // improvement over previous methods."
        let lrpc = lrpc_breakdown(Arch::Cvax).total_us();
        let message = message_rpc_us(Arch::Cvax);
        let ratio = message / lrpc;
        assert!((2.0..=4.5).contains(&ratio), "improvement {ratio:.2}x");
    }

    #[test]
    fn newer_architectures_do_not_fix_the_kernel_bottleneck() {
        // "this kernel bottleneck is even worse on newer architectures" —
        // LRPC speedup from CVAX to SPARC lags the application speedup.
        let cvax = lrpc_breakdown(Arch::Cvax).total_us();
        let sparc = lrpc_breakdown(Arch::Sparc).total_us();
        let speedup = cvax / sparc;
        assert!(
            speedup < Arch::Sparc.spec().application_speedup,
            "LRPC speedup {speedup:.2} should lag the 4.3x application speedup"
        );
    }

    #[test]
    fn breakdown_is_deterministic_and_renders() {
        let a = lrpc_breakdown(Arch::R2000);
        let b = lrpc_breakdown(Arch::R2000);
        assert_eq!(a, b);
        assert!(a.to_string().contains("Kernel transfer"));
    }
}
