//! Interprocess-communication models for the ASPLOS 1991 study.
//!
//! Reproduces Section 2 of the paper:
//!
//! * [`src_rpc_breakdown`] — the component budget of a round-trip
//!   cross-machine RPC in the style of SRC RPC (Table 3), with stubs,
//!   copies, and per-word uncached-load checksums executed on the simulated
//!   machine;
//! * [`lrpc_breakdown`] — the hardware-floor analysis of local
//!   cross-address-space calls (Table 4), including the untagged-TLB purge
//!   cost that eats ~25% of a CVAX LRPC;
//! * [`rpc_scaling`] / [`cpu_scaling_forecast`] — the in-text scaling
//!   arguments (Ousterhout's Sprite observation; Schroeder & Burrows'
//!   optimistic CPU-scaling extrapolation).
//!
//! # Example
//!
//! ```
//! use osarch_cpu::Arch;
//! use osarch_ipc::{src_rpc_breakdown, RpcConfig, rpc_component};
//!
//! let rpc = src_rpc_breakdown(Arch::Cvax, RpcConfig::null_call());
//! let wire_share = rpc.share(rpc_component::WIRE);
//! assert!(wire_share < 0.25, "most of a small RPC is not wire time");
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod dsm;
mod lrpc;
mod net;
mod rpc;
mod scaling;

pub use dsm::{DsmStats, DsmSystem, NodeId, PageState};
pub use lrpc::{
    component as lrpc_component, lrpc_breakdown, message_rpc_us, LrpcBreakdown, LrpcComponent,
};
pub use net::Network;
pub use rpc::{
    component as rpc_component, src_rpc_breakdown, RpcBreakdown, RpcComponent, RpcConfig,
};
pub use scaling::{cpu_scaling_forecast, rpc_scaling, CpuScalingForecast, RpcScaling};
