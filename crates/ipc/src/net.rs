//! Network timing model.

/// A network link, characterised by bandwidth and fixed per-packet latency.
///
/// The study's machines sat on 10 Mbit/s Ethernet; Section 2.1 anticipates
/// "10- to 100-fold improvements" in bandwidth, which
/// [`Network::future`] lets experiments explore.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Network {
    /// Link bandwidth in megabits per second.
    pub bandwidth_mbps: f64,
    /// Fixed per-packet latency (controller + propagation), microseconds.
    pub fixed_latency_us: f64,
    /// Framing overhead per packet in bytes (preamble, header, CRC, gap).
    pub framing_bytes: u32,
}

impl Network {
    /// Classic 10 Mbit/s Ethernet with LANCE-era controller latency.
    #[must_use]
    pub fn ethernet() -> Network {
        Network {
            bandwidth_mbps: 10.0,
            fixed_latency_us: 25.0,
            framing_bytes: 38,
        }
    }

    /// A hypothetical faster network: Ethernet scaled by `factor` in
    /// bandwidth with controller latency halved.
    ///
    /// # Panics
    ///
    /// Panics if `factor` is not positive.
    #[must_use]
    pub fn future(factor: f64) -> Network {
        assert!(factor > 0.0, "bandwidth factor must be positive");
        Network {
            bandwidth_mbps: 10.0 * factor,
            fixed_latency_us: 12.5,
            framing_bytes: 38,
        }
    }

    /// One-way wire time for a packet carrying `payload_bytes`, in µs.
    #[must_use]
    pub fn packet_time_us(&self, payload_bytes: u32) -> f64 {
        let bits = f64::from((payload_bytes + self.framing_bytes) * 8);
        self.fixed_latency_us + bits / self.bandwidth_mbps
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ethernet_small_packet_time_is_tens_of_microseconds() {
        let net = Network::ethernet();
        let t = net.packet_time_us(74);
        // 112 bytes on the wire at 10 Mbit/s is ~90 us plus controller latency.
        assert!((80.0..150.0).contains(&t), "one-way {t}");
    }

    #[test]
    fn packet_time_scales_with_size() {
        let net = Network::ethernet();
        assert!(net.packet_time_us(1500) > net.packet_time_us(74) * 5.0);
    }

    #[test]
    fn future_network_is_faster() {
        let now = Network::ethernet();
        let soon = Network::future(10.0);
        assert!(soon.packet_time_us(1500) < now.packet_time_us(1500) / 5.0);
    }

    #[test]
    #[should_panic(expected = "positive")]
    fn zero_factor_panics() {
        let _ = Network::future(0.0);
    }
}
