//! Cross-architecture projections of the Table 7 results.
//!
//! Section 5: "the combination of Tables 1 and 7 indicates that a SPARC
//! would spend 9.4 seconds just in the overhead for system calls and
//! context switches in executing the remote Andrew script on Mach 3.0."

use crate::simulate::{simulate, OsStructure};
use osarch_cpu::Arch;
use osarch_kernel::measure;
use osarch_workloads::find_workload;

/// Seconds a given architecture would spend in system-call plus
/// context-switch overhead alone, executing `workload_name` under the
/// decomposed structure (counts from the simulation, per-event times from
/// that architecture's Table 1 column).
///
/// # Panics
///
/// Panics when the workload name is unknown.
#[must_use]
pub fn syscall_switch_overhead_s(arch: Arch, workload_name: &str) -> f64 {
    let workload = find_workload(workload_name)
        .unwrap_or_else(|| panic!("unknown workload {workload_name:?}"));
    // Counts are a property of the OS structure, not the processor: simulate
    // on the measurement platform.
    let run = simulate(&workload, OsStructure::Microkernel, Arch::R3000);
    let times = measure(arch).times_us();
    let us = run.demand.syscalls as f64 * times.null_syscall
        + run.demand.as_switches as f64 * times.context_switch;
    us / 1e6
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn sparc_andrew_remote_projection_is_about_nine_seconds() {
        let s = syscall_switch_overhead_s(Arch::Sparc, "andrew-remote");
        assert!(
            (6.5..=12.0).contains(&s),
            "projection {s:.1} s (paper: 9.4 s)"
        );
    }

    #[test]
    fn r3000_spends_far_less_in_the_same_overhead() {
        let sparc = syscall_switch_overhead_s(Arch::Sparc, "andrew-remote");
        let r3000 = syscall_switch_overhead_s(Arch::R3000, "andrew-remote");
        assert!(r3000 < sparc / 3.0, "r3000 {r3000:.1} vs sparc {sparc:.1}");
    }

    #[test]
    #[should_panic(expected = "unknown workload")]
    fn unknown_workload_panics() {
        let _ = syscall_switch_overhead_s(Arch::Sparc, "doom");
    }
}
