//! Operating-system structure simulation (Section 5 of the ASPLOS 1991
//! study): monolithic Mach 2.5 versus decomposed small-kernel Mach 3.0.
//!
//! * [`EventCosts`] — per-event primitive costs measured on the simulated
//!   machines;
//! * [`simulate`] / [`table7`] — run the seven standard workloads under
//!   both structures, reproducing Table 7's counters and
//!   percentage-of-time-in-primitives column;
//! * [`DecompositionModel`] — the structural expansion knobs ("at least two
//!   system calls and two context switches" per service RPC), exposed for
//!   ablation;
//! * [`syscall_switch_overhead_s`] — the paper's SPARC/andrew-remote
//!   9.4-second projection.
//!
//! # Example
//!
//! ```
//! use osarch_cpu::Arch;
//! use osarch_mach::{simulate, OsStructure};
//! use osarch_workloads::find_workload;
//!
//! let andrew = find_workload("andrew-remote").expect("standard workload");
//! let run = simulate(&andrew, OsStructure::Microkernel, Arch::R3000);
//! assert!(run.primitive_share() > 0.10);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod costs;
mod event_sim;
mod projection;
mod simulate;
mod trace_sim;

pub use costs::EventCosts;
pub use event_sim::{
    simulate_events, simulate_events_traced, validate_multipliers, EventSimResult,
};
pub use projection::syscall_switch_overhead_s;
pub use simulate::{simulate, simulate_with, table7, DecompositionModel, MachRun, OsStructure};
pub use trace_sim::{replay_trace, TraceReplay};
