//! The OS-structure simulation: monolithic versus decomposed small-kernel,
//! reproducing Table 7.

use crate::costs::EventCosts;
use osarch_cpu::Arch;
use osarch_workloads::{standard_workloads, ServiceDemand, Workload};
use std::fmt;

/// The kernel organisation an application runs on.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum OsStructure {
    /// Everything in one privileged kernel address space (Mach 2.5).
    Monolithic,
    /// A small message-based kernel with user-level servers (Mach 3.0).
    Microkernel,
}

impl fmt::Display for OsStructure {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let text = match self {
            OsStructure::Monolithic => "monolithic (Mach 2.5)",
            OsStructure::Microkernel => "small-kernel (Mach 3.0)",
        };
        f.write_str(text)
    }
}

/// Structural expansion parameters of the decomposed system. The defaults
/// encode the paper's qualitative account: "Each invocation of an operating
/// system service via an RPC requires at least two system calls and two
/// context switches … the operating system servers are themselves
/// multithreaded and can run concurrently."
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct DecompositionModel {
    /// System calls per local RPC (send + receive).
    pub syscalls_per_rpc: f64,
    /// Address-space switches per RPC.
    pub as_switches_per_rpc: f64,
    /// Extra same-space thread switches per RPC (server multithreading).
    pub thread_extra_per_rpc: f64,
    /// Baseline multiplier on intrinsic kernel TLB misses (less unmapped
    /// kernel residency).
    pub ktlb_base_factor: f64,
    /// Kernel TLB misses per address-space switch (switch pressure on the
    /// fixed-size TLB).
    pub ktlb_per_as_switch: f64,
    /// Additional other-exceptions per RPC (server page faults).
    pub other_per_rpc: f64,
    /// Microseconds of user-level server work per RPC beyond the kernel
    /// primitives (copies, lookups) on the measurement machine.
    pub server_work_us_per_rpc: f64,
}

impl Default for DecompositionModel {
    fn default() -> Self {
        DecompositionModel {
            syscalls_per_rpc: 2.0,
            as_switches_per_rpc: 1.6,
            thread_extra_per_rpc: 0.3,
            ktlb_base_factor: 3.0,
            ktlb_per_as_switch: 11.0,
            other_per_rpc: 0.7,
            server_work_us_per_rpc: 55.0,
        }
    }
}

/// The result of running one workload on one structure.
#[derive(Debug, Clone, PartialEq)]
pub struct MachRun {
    /// The workload name.
    pub workload: &'static str,
    /// The structure simulated.
    pub structure: OsStructure,
    /// The architecture.
    pub arch: Arch,
    /// Predicted elapsed seconds.
    pub time_s: f64,
    /// Predicted event counts (the Table 7 columns).
    pub demand: ServiceDemand,
    /// Seconds spent in the low-level primitives.
    pub primitive_time_s: f64,
}

impl MachRun {
    /// Fraction of elapsed time in the primitives (the table's last column).
    #[must_use]
    pub fn primitive_share(&self) -> f64 {
        self.primitive_time_s / self.time_s
    }
}

/// Derive the decomposed-system demand for a workload.
fn microkernel_demand(w: &Workload, model: &DecompositionModel) -> ServiceDemand {
    let rpcs = w.service_requests() as f64 * w.rpcs_per_service;
    let as_switches = w.demand.as_switches as f64 + model.as_switches_per_rpc * rpcs;
    let thread_switches = w.demand.thread_switches as f64
        + (model.as_switches_per_rpc + model.thread_extra_per_rpc) * rpcs;
    let ktlb = w.demand.kernel_tlb_misses as f64 * model.ktlb_base_factor
        + model.ktlb_per_as_switch * as_switches;
    ServiceDemand {
        as_switches: as_switches as u64,
        thread_switches: thread_switches as u64,
        syscalls: (model.syscalls_per_rpc * rpcs) as u64,
        emulated_instructions: w.demand.emulated_instructions + (w.emul_per_rpc * rpcs) as u64,
        kernel_tlb_misses: ktlb as u64,
        other_exceptions: w.demand.other_exceptions + (model.other_per_rpc * rpcs) as u64,
    }
}

/// Simulate `workload` under `structure` on `arch`.
///
/// The workload's pure compute time is derived from its monolithic run
/// (elapsed time minus monolithic primitive overhead) and is invariant
/// across structures; the decomposed run adds the structurally expanded
/// primitive counts plus user-level server work.
#[must_use]
pub fn simulate(workload: &Workload, structure: OsStructure, arch: Arch) -> MachRun {
    simulate_with(workload, structure, arch, &DecompositionModel::default())
}

/// [`simulate`] with an explicit decomposition model (for ablations).
#[must_use]
pub fn simulate_with(
    workload: &Workload,
    structure: OsStructure,
    arch: Arch,
    model: &DecompositionModel,
) -> MachRun {
    let costs = EventCosts::measure(arch);
    // Pure compute is whatever the monolithic run did not spend in
    // primitives, rescaled by integer speed relative to the R3000
    // measurement platform.
    let r3000_costs = EventCosts::measure(Arch::R3000);
    let base_compute_r3000 =
        (workload.monolithic_time_s - r3000_costs.overhead_s(&workload.demand)).max(0.0);
    let compute = base_compute_r3000 * Arch::R3000.spec().application_speedup
        / arch.spec().application_speedup;
    match structure {
        OsStructure::Monolithic => {
            let primitive_time_s = costs.overhead_s(&workload.demand);
            MachRun {
                workload: workload.name,
                structure,
                arch,
                time_s: compute + primitive_time_s,
                demand: workload.demand,
                primitive_time_s,
            }
        }
        OsStructure::Microkernel => {
            let demand = microkernel_demand(workload, model);
            let primitive_time_s = costs.overhead_s(&demand);
            let rpcs = workload.service_requests() as f64 * workload.rpcs_per_service;
            let server_work_s = rpcs * model.server_work_us_per_rpc / 1e6
                * Arch::R3000.spec().application_speedup
                / arch.spec().application_speedup;
            MachRun {
                workload: workload.name,
                structure,
                arch,
                time_s: compute + primitive_time_s + server_work_s,
                demand,
                primitive_time_s,
            }
        }
    }
}

/// Simulate every standard workload under both structures — the full
/// Table 7 — on `arch` (the paper used an R3000 DECstation 5000/200).
#[must_use]
pub fn table7(arch: Arch) -> Vec<(MachRun, MachRun)> {
    standard_workloads()
        .iter()
        .map(|w| {
            (
                simulate(w, OsStructure::Monolithic, arch),
                simulate(w, OsStructure::Microkernel, arch),
            )
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use osarch_workloads::find_workload;

    fn ratio(a: f64, b: f64) -> f64 {
        a / b
    }

    #[test]
    fn decomposition_inflates_every_counter() {
        for (mono, micro) in table7(Arch::R3000) {
            assert!(
                micro.demand.dominates(&mono.demand),
                "{}: microkernel demand must dominate",
                mono.workload
            );
        }
    }

    #[test]
    fn predicted_mach3_counters_track_the_paper() {
        // Each simulated Mach 3.0 counter should be within 2x of the
        // paper's measured value (most are far closer).
        for w in standard_workloads() {
            let run = simulate(&w, OsStructure::Microkernel, Arch::R3000);
            let reference = w.mach3_reference.demand;
            let pairs = [
                ("as", run.demand.as_switches, reference.as_switches),
                (
                    "thread",
                    run.demand.thread_switches,
                    reference.thread_switches,
                ),
                ("syscalls", run.demand.syscalls, reference.syscalls),
                (
                    "emul",
                    run.demand.emulated_instructions,
                    reference.emulated_instructions,
                ),
                (
                    "ktlb",
                    run.demand.kernel_tlb_misses,
                    reference.kernel_tlb_misses,
                ),
                (
                    "other",
                    run.demand.other_exceptions,
                    reference.other_exceptions,
                ),
            ];
            for (name, sim, paper) in pairs {
                let r = ratio(sim as f64, paper as f64);
                assert!(
                    (0.5..=2.0).contains(&r),
                    "{} {name}: sim {sim} vs paper {paper} (ratio {r:.2})",
                    w.name
                );
            }
        }
    }

    #[test]
    fn andrew_remote_context_switches_explode() {
        // "there is a 33-fold increase in context switches for the remote
        // Andrew benchmark on Mach 3.0 over Mach 2.5."
        let w = find_workload("andrew-remote").unwrap();
        let micro = simulate(&w, OsStructure::Microkernel, Arch::R3000);
        let blowup = ratio(micro.demand.as_switches as f64, w.demand.as_switches as f64);
        assert!((20.0..=50.0).contains(&blowup), "blowup {blowup:.0}x");
    }

    #[test]
    fn microkernel_primitive_share_is_substantial() {
        // "most of the applications spend between 15 and 20 percent of
        // their time executing these primitives" — latex, with its low
        // syscall rate, sits near 5%.
        for (_, micro) in table7(Arch::R3000) {
            let share = micro.primitive_share();
            if micro.workload == "latex-150" {
                assert!((0.02..=0.10).contains(&share), "latex share {share:.2}");
            } else {
                assert!(
                    (0.10..=0.30).contains(&share),
                    "{}: share {share:.2}",
                    micro.workload
                );
            }
        }
    }

    #[test]
    fn monolithic_share_is_always_smaller() {
        for (mono, micro) in table7(Arch::R3000) {
            assert!(
                mono.primitive_share() < micro.primitive_share(),
                "{}",
                mono.workload
            );
        }
    }

    #[test]
    fn predicted_times_track_the_paper_loosely() {
        // Elapsed-time prediction is the weakest link (server work and
        // remote-file waits are not modelled in detail); within 35%.
        // spellcheck-1 is excluded: the paper's Mach 3.0 run was *faster*
        // (2.3 s -> 1.4 s) thanks to user-level file caching, which a
        // compute-invariant model cannot reproduce (see EXPERIMENTS.md).
        for w in standard_workloads() {
            if w.name == "spellcheck-1" {
                continue;
            }
            let micro = simulate(&w, OsStructure::Microkernel, Arch::R3000);
            let r = ratio(micro.time_s, w.mach3_reference.time_s);
            assert!((0.65..=1.35).contains(&r), "{}: time ratio {r:.2}", w.name);
        }
    }

    #[test]
    fn structure_display() {
        assert!(OsStructure::Monolithic.to_string().contains("2.5"));
        assert!(OsStructure::Microkernel.to_string().contains("3.0"));
    }

    #[test]
    fn ablation_cheaper_rpc_reduces_the_share() {
        // If RPC cost one syscall and one switch (a hypothetical LRPC-grade
        // path), the primitive share would drop markedly.
        let w = find_workload("andrew-remote").unwrap();
        let cheap = DecompositionModel {
            syscalls_per_rpc: 1.0,
            as_switches_per_rpc: 1.0,
            ..DecompositionModel::default()
        };
        let default = simulate(&w, OsStructure::Microkernel, Arch::R3000);
        let improved = simulate_with(&w, OsStructure::Microkernel, Arch::R3000, &cheap);
        assert!(improved.primitive_time_s < default.primitive_time_s * 0.85);
    }
}
