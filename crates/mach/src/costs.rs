//! Per-event primitive costs for the OS-structure simulation.

use osarch_cpu::{Arch, MicroOp, Program};
use osarch_kernel::{measure, Machine, PrimitiveMeasurement};

/// Microsecond costs of each Table 7 event class on one architecture.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct EventCosts {
    /// The architecture.
    pub arch: Arch,
    /// One system call.
    pub syscall_us: f64,
    /// One address-space context switch.
    pub as_switch_us: f64,
    /// One same-space kernel thread switch.
    pub thread_switch_us: f64,
    /// One kernel-emulated instruction (trap, decode, emulate, return).
    pub emulated_us: f64,
    /// One kernel-mode TLB miss ("a latency of a few hundred cycles").
    pub kernel_tlb_miss_us: f64,
    /// One other exception (page fault / interrupt dispatch).
    pub other_exception_us: f64,
}

impl EventCosts {
    /// Measure the costs on `arch` (through the shared primitive memo).
    #[must_use]
    pub fn measure(arch: Arch) -> EventCosts {
        EventCosts::from_measurement(&measure(arch))
    }

    /// Derive the event costs from an existing primitive measurement —
    /// only the emulation micro-program is simulated afresh; the four
    /// primitives come from the caller's (typically shared) measurement.
    #[must_use]
    pub fn from_measurement(primitives: &PrimitiveMeasurement) -> EventCosts {
        let arch = primitives.arch;
        let times = primitives.times_us();
        let mut machine = Machine::new(arch);
        let clock = machine.spec().clock_mhz;
        let spec = machine.spec().clone();

        // A same-space thread switch: no address-space change, but the full
        // register save/restore.
        let thread_switch_us = times.context_switch * 0.6;

        // Kernel instruction emulation: reserved-instruction trap, partial
        // register save, decode, emulate, return.
        let save = machine.layout().save_area.offset(2048);
        let mut b = Program::builder("emulate-instruction");
        b.op(MicroOp::TrapEnter);
        b.op(MicroOp::ReadControl);
        b.store_run(save, 6);
        b.alu(14); // decode the faulting instruction
        b.alu(6); // perform the emulated operation
        b.load_run(save, 6);
        b.op(MicroOp::TrapReturn);
        let emulated_us = machine.measure(&b.build()).micros(clock);

        // Kernel TLB miss: on software-refill machines the kernel-space
        // handler latency; on hardware-walk machines a table walk.
        let kernel_tlb_miss_us = match spec.mem.tlb_refill {
            osarch_mem::TlbRefill::Software { kernel_cycles, .. } => {
                f64::from(kernel_cycles) / clock
            }
            osarch_mem::TlbRefill::Hardware => f64::from(3 * spec.mem.timing.read_cycles) / clock,
        };

        EventCosts {
            arch,
            syscall_us: times.null_syscall,
            as_switch_us: times.context_switch,
            thread_switch_us,
            emulated_us,
            kernel_tlb_miss_us,
            other_exception_us: times.trap,
        }
    }

    /// Total seconds of primitive overhead for a demand vector.
    #[must_use]
    pub fn overhead_s(&self, demand: &osarch_workloads::ServiceDemand) -> f64 {
        let same_space_switches = demand.thread_switches.saturating_sub(demand.as_switches);
        let us = demand.syscalls as f64 * self.syscall_us
            + demand.as_switches as f64 * self.as_switch_us
            + same_space_switches as f64 * self.thread_switch_us
            + demand.emulated_instructions as f64 * self.emulated_us
            + demand.kernel_tlb_misses as f64 * self.kernel_tlb_miss_us
            + demand.other_exceptions as f64 * self.other_exception_us;
        us / 1e6
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use osarch_workloads::find_workload;

    #[test]
    fn r3000_kernel_tlb_miss_is_a_few_hundred_cycles() {
        let costs = EventCosts::measure(Arch::R3000);
        let cycles = costs.kernel_tlb_miss_us * 25.0;
        assert!((200.0..=400.0).contains(&cycles), "{cycles:.0} cycles");
    }

    #[test]
    fn emulation_costs_a_few_microseconds_on_mips() {
        let costs = EventCosts::measure(Arch::R3000);
        assert!(
            (1.0..=6.0).contains(&costs.emulated_us),
            "{:.2} us",
            costs.emulated_us
        );
    }

    #[test]
    fn overhead_is_linear_in_demand() {
        let costs = EventCosts::measure(Arch::R3000);
        let w = find_workload("spellcheck-1").unwrap();
        let single = costs.overhead_s(&w.demand);
        let double = costs.overhead_s(&w.demand.plus(&w.demand));
        assert!((double - 2.0 * single).abs() < 1e-9);
    }

    #[test]
    fn monolithic_overhead_is_a_small_share_of_runtime() {
        // Under Mach 2.5 the primitives are a minor cost for most workloads.
        let costs = EventCosts::measure(Arch::R3000);
        for name in ["spellcheck-1", "latex-150", "link-vmunix"] {
            let w = find_workload(name).unwrap();
            let share = costs.overhead_s(&w.demand) / w.monolithic_time_s;
            assert!(share < 0.12, "{name}: monolithic share {share:.3}");
        }
    }
}
