//! Trace-driven replay of the OS-structure simulation.
//!
//! The aggregate model in [`crate::simulate`] works on counters, as the
//! paper's instrumented kernels did. This module replays a *randomized
//! event trace* with the same mix through the same per-event costs —
//! useful for interleaving-sensitive consumers and as a consistency check
//! on the aggregate model.

use crate::costs::EventCosts;
use crate::simulate::{simulate, MachRun, OsStructure};
use osarch_cpu::Arch;
use osarch_workloads::{ServiceEvent, TraceGenerator, Workload};

/// Result of replaying a sampled trace.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct TraceReplay {
    /// Events replayed.
    pub events: u64,
    /// Primitive seconds accumulated over the replayed events.
    pub primitive_time_s: f64,
    /// The aggregate model's prediction scaled to the same event count.
    pub aggregate_prediction_s: f64,
}

impl TraceReplay {
    /// Relative disagreement between replay and aggregate model (0 = exact).
    #[must_use]
    pub fn disagreement(&self) -> f64 {
        (self.primitive_time_s - self.aggregate_prediction_s).abs() / self.aggregate_prediction_s
    }
}

/// Replay `events` randomly sampled events of `workload` under `structure`
/// on `arch`, seeded for reproducibility.
#[must_use]
pub fn replay_trace(
    workload: &Workload,
    structure: OsStructure,
    arch: Arch,
    seed: u64,
    events: u64,
) -> TraceReplay {
    let run: MachRun = simulate(workload, structure, arch);
    let costs = EventCosts::measure(arch);
    let mut generator = TraceGenerator::new(&run.demand, seed);
    let mut us = 0.0f64;
    for _ in 0..events {
        us += match generator.next_event() {
            ServiceEvent::Syscall => costs.syscall_us,
            ServiceEvent::ThreadSwitch => costs.thread_switch_us,
            ServiceEvent::AddressSpaceSwitch => costs.as_switch_us,
            ServiceEvent::EmulatedInstruction => costs.emulated_us,
            ServiceEvent::KernelTlbMiss => costs.kernel_tlb_miss_us,
            ServiceEvent::OtherException => costs.other_exception_us,
        };
    }
    let total_events: u64 = run.demand.syscalls
        + run.demand.thread_switches
        + run.demand.emulated_instructions
        + run.demand.kernel_tlb_misses
        + run.demand.other_exceptions;
    let aggregate_prediction_s = run.primitive_time_s * events as f64 / total_events as f64;
    TraceReplay {
        events,
        primitive_time_s: us / 1e6,
        aggregate_prediction_s,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use osarch_workloads::find_workload;

    #[test]
    fn replay_agrees_with_the_aggregate_model() {
        let w = find_workload("andrew-remote").unwrap();
        let replay = replay_trace(&w, OsStructure::Microkernel, Arch::R3000, 17, 200_000);
        assert!(
            replay.disagreement() < 0.05,
            "trace replay and aggregate model disagree by {:.1}%",
            replay.disagreement() * 100.0
        );
    }

    #[test]
    fn replay_is_reproducible_per_seed() {
        let w = find_workload("link-vmunix").unwrap();
        let a = replay_trace(&w, OsStructure::Microkernel, Arch::R3000, 5, 20_000);
        let b = replay_trace(&w, OsStructure::Microkernel, Arch::R3000, 5, 20_000);
        assert_eq!(a, b);
        let c = replay_trace(&w, OsStructure::Microkernel, Arch::R3000, 6, 20_000);
        assert_ne!(a.primitive_time_s, c.primitive_time_s);
    }

    #[test]
    fn monolithic_replay_is_cheaper_per_event_mix() {
        // Parthenon's monolithic mix is emulation-dominated; the
        // microkernel mix adds switch-heavy events.
        let w = find_workload("spellcheck-1").unwrap();
        let mono = replay_trace(&w, OsStructure::Monolithic, Arch::R3000, 3, 50_000);
        let micro = replay_trace(&w, OsStructure::Microkernel, Arch::R3000, 3, 50_000);
        assert!(mono.primitive_time_s > 0.0);
        assert!(micro.primitive_time_s > 0.0);
    }
}
