//! Discrete-event simulation of the small-kernel structure.
//!
//! The aggregate model in [`crate::simulate`] applies structural
//! *multipliers* (≈2 syscalls and ≈1.6 address-space switches per service
//! RPC). This module derives those multipliers from mechanism: an
//! application process and user-level server processes scheduled by the
//! kernel scheduler, with every RPC actually blocking the client, waking
//! the server, and switching address spaces through
//! [`osarch_kernel::Scheduler`].

use crate::costs::EventCosts;
use crate::simulate::DecompositionModel;
use osarch_kernel::{Scheduler, ThreadId};
use osarch_mem::Asid;
use osarch_trace::{Category, Event, NullTracer, Tracer};
use osarch_workloads::Workload;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// Trace pids for the three simulated processes.
const APP_PID: u32 = 1;
const UNIX_PID: u32 = 2;
const CACHE_PID: u32 = 3;

/// Tracing context for the event-driven run: a tracer plus a nanosecond
/// tick clock that advances by each operation's measured cost. Spans ride
/// [`Category::Mach`] with the pid of the process doing the work.
struct MachClock<'a, T: Tracer> {
    tracer: &'a mut T,
    now_ns: u64,
    syscall_ns: u64,
    as_switch_ns: u64,
    thread_switch_ns: u64,
}

impl<'a, T: Tracer> MachClock<'a, T> {
    fn new(costs: Option<&EventCosts>, tracer: &'a mut T) -> MachClock<'a, T> {
        let ns = |us: f64| (us * 1000.0).round() as u64;
        MachClock {
            tracer,
            now_ns: 0,
            syscall_ns: costs.map_or(0, |c| ns(c.syscall_us)),
            as_switch_ns: costs.map_or(0, |c| ns(c.as_switch_us)),
            thread_switch_ns: costs.map_or(0, |c| ns(c.thread_switch_us)),
        }
    }

    /// Record a span of `dur_ns` on `pid` and advance the clock past it.
    fn span(&mut self, name: &'static str, pid: u32, dur_ns: u64) {
        if self.tracer.enabled() {
            self.tracer
                .record(Event::complete(name, Category::Mach, self.now_ns, dur_ns).on(pid, 0));
        }
        self.now_ns += dur_ns;
    }
}

/// Counters produced by the event-driven run.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct EventSimResult {
    /// Service requests replayed.
    pub requests: u64,
    /// System calls performed (message sends/receives).
    pub syscalls: u64,
    /// Kernel thread switches the scheduler performed.
    pub thread_switches: u64,
    /// The subset that changed address spaces.
    pub as_switches: u64,
}

impl EventSimResult {
    /// System calls per service request.
    #[must_use]
    pub fn syscalls_per_request(&self) -> f64 {
        self.syscalls as f64 / self.requests as f64
    }

    /// Address-space switches per service request.
    #[must_use]
    pub fn as_switches_per_request(&self) -> f64 {
        self.as_switches as f64 / self.requests as f64
    }
}

/// The simulated small-kernel machine room: the application, the Unix
/// server, and the file cache manager, each with two threads (the servers
/// are multithreaded, as the paper notes).
#[derive(Debug)]
struct MachineRoom {
    sched: Scheduler,
    app: ThreadId,
    unix: [ThreadId; 2],
    cache: [ThreadId; 2],
}

impl MachineRoom {
    fn new() -> MachineRoom {
        let mut sched = Scheduler::new();
        let app_pid = sched.spawn_process(Asid(1));
        let unix_pid = sched.spawn_process(Asid(2));
        let cache_pid = sched.spawn_process(Asid(3));
        let app = sched.spawn_thread(app_pid);
        let unix = [sched.spawn_thread(unix_pid), sched.spawn_thread(unix_pid)];
        let cache = [sched.spawn_thread(cache_pid), sched.spawn_thread(cache_pid)];
        sched.ready(app);
        sched.switch_to_next();
        MachineRoom {
            sched,
            app,
            unix,
            cache,
        }
    }

    /// One local RPC: the client blocks on its send, the server thread is
    /// dispatched, handles the request, replies, and the client resumes.
    /// Returns the number of syscalls performed (send + receive-reply on
    /// the client, receive + reply-send on the server are folded into the
    /// two message-primitive invocations the paper counts).
    fn rpc<T: Tracer>(
        &mut self,
        server_threads: [ThreadId; 2],
        which: usize,
        syscalls: &mut u64,
        clock: &mut MachClock<'_, T>,
        client_pid: u32,
        server_pid: u32,
    ) {
        let rpc_start = clock.now_ns;
        let client = self.sched.current().expect("a thread is running");
        // Client sends the request (one syscall) and blocks for the reply.
        *syscalls += 1;
        clock.span("msg send", client_pid, clock.syscall_ns);
        self.sched.ready(server_threads[which % 2]);
        self.sched.block_current();
        self.dispatch(clock, server_pid);
        // Server handles the request and sends the reply (one syscall),
        // blocking for its next request.
        *syscalls += 1;
        clock.span("msg reply", server_pid, clock.syscall_ns);
        self.sched.ready(client);
        self.sched.block_current();
        self.dispatch(clock, client_pid);
        if clock.tracer.enabled() {
            let dur = clock.now_ns - rpc_start;
            clock
                .tracer
                .record(Event::complete("rpc", Category::Mach, rpc_start, dur).on(client_pid, 0));
        }
    }

    /// Dispatch the next ready thread, recording the switch as an
    /// address-space switch or a same-space thread switch on the process
    /// being dispatched.
    fn dispatch<T: Tracer>(&mut self, clock: &mut MachClock<'_, T>, to_pid: u32) {
        let crossings = self.sched.address_space_switches();
        self.sched.switch_to_next();
        if self.sched.address_space_switches() > crossings {
            clock.span("address-space switch", to_pid, clock.as_switch_ns);
        } else {
            clock.span("thread switch", to_pid, clock.thread_switch_ns);
        }
    }
}

/// Replay `requests` service requests of `workload` through the scheduler,
/// seeded for reproducibility. File-type requests (the fraction implied by
/// the workload's `rpcs_per_service`) make a nested RPC to the cache
/// manager, exactly as the paper describes for open/close.
#[must_use]
pub fn simulate_events(workload: &Workload, requests: u64, seed: u64) -> EventSimResult {
    let mut null = NullTracer;
    let mut clock = MachClock::new(None, &mut null);
    run_events(workload, requests, seed, &mut clock)
}

/// [`simulate_events`] with a tracer attached: every RPC, message-send /
/// reply syscall and scheduler dispatch becomes a [`Category::Mach`] span
/// on the pid of the process doing the work (1 = application, 2 = Unix
/// server, 3 = file cache manager). Timestamps are nanosecond ticks
/// derived from `costs` (µs × 1000). The scheduler walk — and therefore
/// the returned counters — is identical to the untraced run with the same
/// seed.
#[must_use]
pub fn simulate_events_traced<T: Tracer>(
    workload: &Workload,
    requests: u64,
    seed: u64,
    costs: &EventCosts,
    tracer: &mut T,
) -> EventSimResult {
    let mut clock = MachClock::new(Some(costs), tracer);
    run_events(workload, requests, seed, &mut clock)
}

fn run_events<T: Tracer>(
    workload: &Workload,
    requests: u64,
    seed: u64,
    clock: &mut MachClock<'_, T>,
) -> EventSimResult {
    let mut room = MachineRoom::new();
    let mut rng = StdRng::seed_from_u64(seed);
    let mut syscalls = 0u64;
    // rpcs_per_service = 1 + P(nested cache-manager RPC).
    let nested_probability = (workload.rpcs_per_service - 1.0).clamp(0.0, 1.0);
    for request in 0..requests {
        debug_assert_eq!(room.sched.current(), Some(room.app));
        room.rpc(
            room.unix,
            request as usize,
            &mut syscalls,
            clock,
            APP_PID,
            UNIX_PID,
        );
        if rng.gen_bool(nested_probability) {
            // The Unix server's work requires the file cache manager. From
            // the application's point of view this nests: the app is
            // already blocked; the server becomes the client.
            // We model it as a follow-on RPC from the app's quantum since
            // the scheduler only tracks who runs.
            room.rpc(
                room.cache,
                request as usize,
                &mut syscalls,
                clock,
                APP_PID,
                CACHE_PID,
            );
        }
    }
    EventSimResult {
        requests,
        syscalls,
        thread_switches: room.sched.thread_switches(),
        as_switches: room.sched.address_space_switches(),
    }
}

/// Check the aggregate model's multipliers against the event-driven run:
/// returns `(analytic_as_per_rpc, event_as_per_rpc)`.
#[must_use]
pub fn validate_multipliers(workload: &Workload, requests: u64) -> (f64, f64) {
    let model = DecompositionModel::default();
    let analytic = model.as_switches_per_rpc * workload.rpcs_per_service;
    let event = simulate_events(workload, requests, 42).as_switches_per_request();
    (analytic, event)
}

#[cfg(test)]
mod tests {
    use super::*;
    use osarch_workloads::find_workload;

    #[test]
    fn every_rpc_is_two_syscalls_and_two_switches() {
        // A workload with no nested RPCs: exact structural accounting.
        let mut w = find_workload("andrew-local").unwrap();
        w.rpcs_per_service = 1.0;
        let result = simulate_events(&w, 1_000, 1);
        assert_eq!(result.syscalls, 2_000);
        // Every dispatch crosses address spaces (app <-> server), including
        // the initial dispatch from idle.
        assert_eq!(result.thread_switches, result.as_switches);
        assert!((result.as_switches_per_request() - 2.0).abs() < 0.01);
    }

    #[test]
    fn nested_rpcs_add_their_own_crossings() {
        let w = find_workload("andrew-remote").unwrap(); // rpcs_per_service 2.26
        let result = simulate_events(&w, 5_000, 7);
        assert!(
            result.syscalls_per_request() > 3.5,
            "{}",
            result.syscalls_per_request()
        );
        assert!(result.as_switches_per_request() > 3.5);
    }

    #[test]
    fn traced_run_matches_untraced_and_records_spans() {
        use osarch_cpu::Arch;
        use osarch_trace::EventTracer;
        let w = find_workload("andrew-local").unwrap();
        let untraced = simulate_events(&w, 200, 5);
        let costs = EventCosts::measure(Arch::R3000);
        let mut tracer = EventTracer::new();
        let traced = simulate_events_traced(&w, 200, 5, &costs, &mut tracer);
        assert_eq!(traced, untraced, "tracing must not perturb the walk");
        let rpcs = tracer.events().iter().filter(|e| e.name == "rpc").count() as u64;
        // One traced RPC span per message-pair: two syscalls each.
        assert_eq!(rpcs * 2, traced.syscalls);
        let sends = tracer
            .events()
            .iter()
            .filter(|e| e.name == "msg send")
            .count() as u64;
        assert_eq!(sends * 2, traced.syscalls);
        let as_spans = tracer
            .events()
            .iter()
            .filter(|e| e.name == "address-space switch")
            .count() as u64;
        // The scheduler's count includes the initial dispatch from idle in
        // `MachineRoom::new`, which precedes the traced request loop.
        assert_eq!(as_spans + 1, traced.as_switches);
        // Spans carry the measured costs as ns ticks.
        let send = tracer
            .events()
            .iter()
            .find(|e| e.name == "msg send")
            .unwrap();
        assert_eq!(send.dur, (costs.syscall_us * 1000.0).round() as u64);
        assert_eq!(send.pid, APP_PID);
    }

    #[test]
    fn event_run_is_reproducible() {
        let w = find_workload("latex-150").unwrap();
        assert_eq!(simulate_events(&w, 2_000, 9), simulate_events(&w, 2_000, 9));
    }

    #[test]
    fn analytic_multipliers_are_conservative_relative_to_mechanism() {
        // The aggregate model's 1.6 as-switches per RPC is deliberately
        // below the mechanistic 2 (some replies batch; some servers answer
        // from the running thread). The event simulation bounds it above.
        let w = find_workload("andrew-local").unwrap();
        let (analytic, event) = validate_multipliers(&w, 10_000);
        assert!(
            analytic <= event,
            "analytic {analytic:.2} must not exceed the mechanistic bound {event:.2}"
        );
        assert!(event <= analytic * 2.0, "but should be within 2x of it");
    }
}
