//! Discrete-event simulation of the small-kernel structure.
//!
//! The aggregate model in [`crate::simulate`] applies structural
//! *multipliers* (≈2 syscalls and ≈1.6 address-space switches per service
//! RPC). This module derives those multipliers from mechanism: an
//! application process and user-level server processes scheduled by the
//! kernel scheduler, with every RPC actually blocking the client, waking
//! the server, and switching address spaces through
//! [`osarch_kernel::Scheduler`].

use crate::simulate::DecompositionModel;
use osarch_kernel::{Scheduler, ThreadId};
use osarch_mem::Asid;
use osarch_workloads::Workload;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// Counters produced by the event-driven run.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct EventSimResult {
    /// Service requests replayed.
    pub requests: u64,
    /// System calls performed (message sends/receives).
    pub syscalls: u64,
    /// Kernel thread switches the scheduler performed.
    pub thread_switches: u64,
    /// The subset that changed address spaces.
    pub as_switches: u64,
}

impl EventSimResult {
    /// System calls per service request.
    #[must_use]
    pub fn syscalls_per_request(&self) -> f64 {
        self.syscalls as f64 / self.requests as f64
    }

    /// Address-space switches per service request.
    #[must_use]
    pub fn as_switches_per_request(&self) -> f64 {
        self.as_switches as f64 / self.requests as f64
    }
}

/// The simulated small-kernel machine room: the application, the Unix
/// server, and the file cache manager, each with two threads (the servers
/// are multithreaded, as the paper notes).
#[derive(Debug)]
struct MachineRoom {
    sched: Scheduler,
    app: ThreadId,
    unix: [ThreadId; 2],
    cache: [ThreadId; 2],
}

impl MachineRoom {
    fn new() -> MachineRoom {
        let mut sched = Scheduler::new();
        let app_pid = sched.spawn_process(Asid(1));
        let unix_pid = sched.spawn_process(Asid(2));
        let cache_pid = sched.spawn_process(Asid(3));
        let app = sched.spawn_thread(app_pid);
        let unix = [sched.spawn_thread(unix_pid), sched.spawn_thread(unix_pid)];
        let cache = [sched.spawn_thread(cache_pid), sched.spawn_thread(cache_pid)];
        sched.ready(app);
        sched.switch_to_next();
        MachineRoom {
            sched,
            app,
            unix,
            cache,
        }
    }

    /// One local RPC: the client blocks on its send, the server thread is
    /// dispatched, handles the request, replies, and the client resumes.
    /// Returns the number of syscalls performed (send + receive-reply on
    /// the client, receive + reply-send on the server are folded into the
    /// two message-primitive invocations the paper counts).
    fn rpc(&mut self, server_threads: [ThreadId; 2], which: usize, syscalls: &mut u64) {
        let client = self.sched.current().expect("a thread is running");
        // Client sends the request (one syscall) and blocks for the reply.
        *syscalls += 1;
        self.sched.ready(server_threads[which % 2]);
        self.sched.block_current();
        self.sched.switch_to_next();
        // Server handles the request and sends the reply (one syscall),
        // blocking for its next request.
        *syscalls += 1;
        self.sched.ready(client);
        self.sched.block_current();
        self.sched.switch_to_next();
    }
}

/// Replay `requests` service requests of `workload` through the scheduler,
/// seeded for reproducibility. File-type requests (the fraction implied by
/// the workload's `rpcs_per_service`) make a nested RPC to the cache
/// manager, exactly as the paper describes for open/close.
#[must_use]
pub fn simulate_events(workload: &Workload, requests: u64, seed: u64) -> EventSimResult {
    let mut room = MachineRoom::new();
    let mut rng = StdRng::seed_from_u64(seed);
    let mut syscalls = 0u64;
    // rpcs_per_service = 1 + P(nested cache-manager RPC).
    let nested_probability = (workload.rpcs_per_service - 1.0).clamp(0.0, 1.0);
    for request in 0..requests {
        debug_assert_eq!(room.sched.current(), Some(room.app));
        room.rpc(room.unix, request as usize, &mut syscalls);
        if rng.gen_bool(nested_probability) {
            // The Unix server's work requires the file cache manager. From
            // the application's point of view this nests: the app is
            // already blocked; the server becomes the client.
            // We model it as a follow-on RPC from the app's quantum since
            // the scheduler only tracks who runs.
            room.rpc(room.cache, request as usize, &mut syscalls);
        }
    }
    EventSimResult {
        requests,
        syscalls,
        thread_switches: room.sched.thread_switches(),
        as_switches: room.sched.address_space_switches(),
    }
}

/// Check the aggregate model's multipliers against the event-driven run:
/// returns `(analytic_as_per_rpc, event_as_per_rpc)`.
#[must_use]
pub fn validate_multipliers(workload: &Workload, requests: u64) -> (f64, f64) {
    let model = DecompositionModel::default();
    let analytic = model.as_switches_per_rpc * workload.rpcs_per_service;
    let event = simulate_events(workload, requests, 42).as_switches_per_request();
    (analytic, event)
}

#[cfg(test)]
mod tests {
    use super::*;
    use osarch_workloads::find_workload;

    #[test]
    fn every_rpc_is_two_syscalls_and_two_switches() {
        // A workload with no nested RPCs: exact structural accounting.
        let mut w = find_workload("andrew-local").unwrap();
        w.rpcs_per_service = 1.0;
        let result = simulate_events(&w, 1_000, 1);
        assert_eq!(result.syscalls, 2_000);
        // Every dispatch crosses address spaces (app <-> server), including
        // the initial dispatch from idle.
        assert_eq!(result.thread_switches, result.as_switches);
        assert!((result.as_switches_per_request() - 2.0).abs() < 0.01);
    }

    #[test]
    fn nested_rpcs_add_their_own_crossings() {
        let w = find_workload("andrew-remote").unwrap(); // rpcs_per_service 2.26
        let result = simulate_events(&w, 5_000, 7);
        assert!(
            result.syscalls_per_request() > 3.5,
            "{}",
            result.syscalls_per_request()
        );
        assert!(result.as_switches_per_request() > 3.5);
    }

    #[test]
    fn event_run_is_reproducible() {
        let w = find_workload("latex-150").unwrap();
        assert_eq!(simulate_events(&w, 2_000, 9), simulate_events(&w, 2_000, 9));
    }

    #[test]
    fn analytic_multipliers_are_conservative_relative_to_mechanism() {
        // The aggregate model's 1.6 as-switches per RPC is deliberately
        // below the mechanistic 2 (some replies batch; some servers answer
        // from the running thread). The event simulation bounds it above.
        let w = find_workload("andrew-local").unwrap();
        let (analytic, event) = validate_multipliers(&w, 10_000);
        assert!(
            analytic <= event,
            "analytic {analytic:.2} must not exceed the mechanistic bound {event:.2}"
        );
        assert!(event <= analytic * 2.0, "but should be within 2x of it");
    }
}
