//! Satellite: the versioned cache across live spec swaps.
//!
//! Three properties of the epoch-prefixed cache key:
//!
//! 1. keys never collide across epochs (proptest over epoch pairs and
//!    the whole query space);
//! 2. under a 12-thread hammer spanning a simulated swap, no reply ever
//!    crosses epochs — every returned payload is byte-identical to its
//!    own epoch's direct emitter;
//! 3. a degraded (last-good) reply can only carry the value computed at
//!    the *same* epoch: a fresh epoch with no history fails hard rather
//!    than leaking the previous epoch's stale payload.

use osarch_cpu::Arch;
use osarch_kernel::Primitive;
use osarch_serve::{Query, ShardedCache, SpecSnapshot};
use proptest::prelude::*;
use std::sync::Barrier;

/// The whole cacheable query space, indexed densely so proptest can
/// draw from it with a plain integer strategy.
fn cacheable_queries() -> Vec<Query> {
    let mut queries = Vec::new();
    for arch in Arch::all() {
        for primitive in Primitive::all() {
            queries.push(Query::Measure { arch, primitive });
            queries.push(Query::Trace { arch, primitive });
        }
        queries.push(Query::Analyze { arch: Some(arch) });
        queries.push(Query::Lint { arch: Some(arch) });
        queries.push(Query::Counters { arch: Some(arch) });
    }
    queries.push(Query::Analyze { arch: None });
    queries.push(Query::Lint { arch: None });
    queries.push(Query::Counters { arch: None });
    for primitive in Primitive::all() {
        queries.push(Query::MeasureSpec {
            name: "hot".to_string(),
            primitive,
        });
    }
    queries
}

/// A swapped-in spec document distinct from every builtin.
fn hot_doc(clock_mhz: f64) -> String {
    let mut spec = Arch::all()[0].spec();
    spec.clock_mhz = clock_mhz;
    spec.to_json("hot")
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(32))]

    /// Across any two distinct epochs, no query's cache key collides —
    /// with itself at the other epoch, or with *any other query at any
    /// other epoch*. A collision would let a reply computed under one
    /// spec registry answer a request captured under another.
    #[test]
    fn cache_keys_never_collide_across_epochs(
        epoch_a in 1u64..10_000,
        offset in 1u64..10_000,
        query_index in 0usize..1_000,
    ) {
        let epoch_b = epoch_a + offset;
        let queries = cacheable_queries();
        let query = &queries[query_index % queries.len()];
        let snap_a = SpecSnapshot::builtins().at_epoch(epoch_a);
        let snap_b = SpecSnapshot::builtins().at_epoch(epoch_b);
        let key_a = query.cache_key(&snap_a).expect("cacheable");
        let key_b = query.cache_key(&snap_b).expect("cacheable");
        prop_assert_ne!(&key_a, &key_b);
        // Same epoch, same query: the key is deterministic.
        prop_assert_eq!(&key_a, &query.cache_key(&snap_a).expect("cacheable"));
        // Cross-product: this query's key at epoch A collides with no
        // query's key at epoch B, not even a different query's.
        for other in &queries {
            let other_b = other.cache_key(&snap_b).expect("cacheable");
            prop_assert_ne!(&key_a, &other_b);
        }
    }
}

#[test]
fn twelve_threads_spanning_a_swap_never_cross_epochs() {
    const THREADS: usize = 12;
    const ROUNDS: usize = 10;
    // Epoch 2 and epoch 3 disagree about the hot spec's content — the
    // exact situation mid-swap, when requests captured under both
    // snapshots are in flight against the same cache at once.
    let before = SpecSnapshot::builtins()
        .with_spec(&hot_doc(25.0), 2)
        .expect("valid doc");
    let after = before.with_spec(&hot_doc(40.0), 3).expect("valid doc");
    let snapshots = [&before, &after];
    let queries: Vec<Query> = Primitive::all()
        .into_iter()
        .map(|primitive| Query::MeasureSpec {
            name: "hot".to_string(),
            primitive,
        })
        .collect();
    let cache = ShardedCache::new(8);
    let barrier = Barrier::new(THREADS);

    std::thread::scope(|scope| {
        for thread in 0..THREADS {
            let cache = &cache;
            let queries = &queries;
            let snapshots = &snapshots;
            let barrier = &barrier;
            scope.spawn(move || {
                barrier.wait();
                for round in 0..ROUNDS {
                    for step in 0..queries.len() * 2 {
                        // Interleave epochs: odd threads lead with the
                        // new snapshot, even threads with the old.
                        let snapshot = snapshots[(thread + step) % 2];
                        let query = &queries[(round + step) % queries.len()];
                        let key = query.cache_key(snapshot).expect("cacheable");
                        let (value, _) = cache.get_or_compute(&key, || query.compute(snapshot));
                        // The reply must be its own epoch's direct
                        // emission — never the other epoch's, no matter
                        // which thread computed the cached value.
                        assert_eq!(
                            &*value,
                            query.compute(snapshot),
                            "epoch {} reply crossed epochs under {key}",
                            snapshot.epoch()
                        );
                    }
                }
            });
        }
    });

    // The two epochs really do disagree, so the assertion above had
    // teeth: same query, different epoch, different payload.
    for query in &queries {
        assert_ne!(
            query.compute(&before),
            query.compute(&after),
            "the swapped spec must change the payload"
        );
    }
    // One computation per (epoch, query) pair — the epoch prefix keeps
    // the flights separate, the single-flight keeps each unique.
    assert_eq!(cache.misses(), (queries.len() * 2) as u64);
}

#[test]
fn a_fresh_epoch_never_inherits_the_previous_epochs_last_good() {
    let cache = ShardedCache::new(4);
    let snapshot = SpecSnapshot::builtins()
        .with_spec(&hot_doc(25.0), 2)
        .expect("valid doc");
    let query = Query::MeasureSpec {
        name: "hot".to_string(),
        primitive: Primitive::all()[0],
    };
    let key = query.cache_key(&snapshot).expect("cacheable");

    // Epoch 2 computes once, seeding its last-good sidecar entry.
    let good = match cache.get_or_compute_resilient(&key, || query.compute(&snapshot)) {
        osarch_serve::Fetched::Computed(payload) => payload,
        other => panic!("expected a fresh computation, got {other:?}"),
    };

    // The spec swaps: epoch 3 carries *different* hot-spec content, and
    // its first computation panics. The same logical query has a live
    // last-good value one epoch over — an unversioned cache would serve
    // it; the epoch-prefixed key must fail hard instead.
    let swapped = snapshot.with_spec(&hot_doc(40.0), 3).expect("valid doc");
    let swapped_key = query.cache_key(&swapped).expect("cacheable");
    match cache.get_or_compute_resilient(&swapped_key, || panic!("injected")) {
        osarch_serve::Fetched::Failed(error) => {
            assert!(error.contains("injected"), "got: {error}");
        }
        other => panic!("a fresh epoch must not inherit stale values, got {other:?}"),
    }

    // Once epoch 3 lands its own value, both epochs serve their own
    // bytes from then on.
    let swapped_good =
        match cache.get_or_compute_resilient(&swapped_key, || query.compute(&swapped)) {
            osarch_serve::Fetched::Computed(payload) => payload,
            other => panic!("expected a fresh computation, got {other:?}"),
        };
    assert_ne!(swapped_good, good, "the swap must change the payload");

    // Reaping the old epoch after the swap drops epoch 2's entries but
    // leaves epoch 3's intact.
    let removed = cache.retain_prefix(swapped.key_prefix());
    assert!(removed > 0, "epoch 2 left entries to reap");
    match cache.get_or_compute_resilient(&swapped_key, || panic!("injected")) {
        osarch_serve::Fetched::Cached(payload) => assert_eq!(payload, swapped_good),
        other => panic!("epoch 3 must survive the reap, got {other:?}"),
    }
    match cache.get_or_compute_resilient(&key, || panic!("injected")) {
        osarch_serve::Fetched::Failed(_) => {}
        other => panic!("the reaped epoch must recompute from scratch, got {other:?}"),
    }
}
