//! Satellite: protocol round-trip integration tests.
//!
//! A real server on an ephemeral port answers every query kind, a
//! malformed request, and an oversized request — every reply is
//! well-formed JSON, errors arrive as clean error envelopes, nothing
//! panics or hangs. Cached replies are byte-identical to the direct
//! `core/metrics` emitter output, and a 4-worker server beats a 1-worker
//! server on the skewed closed-loop workload (when the host has the
//! cores to show it).

use osarch_core::metrics;
use osarch_cpu::Arch;
use osarch_kernel::Primitive;
use osarch_serve::{LoadgenConfig, Server, ServerConfig, MAX_REQUEST_BYTES};
use std::io::{BufRead, BufReader, Write};
use std::net::TcpStream;
use std::time::Duration;

/// One connected test client.
struct Client {
    reader: BufReader<TcpStream>,
    stream: TcpStream,
}

impl Client {
    fn connect(addr: std::net::SocketAddr) -> Client {
        let stream = TcpStream::connect(addr).expect("connect");
        stream
            .set_read_timeout(Some(Duration::from_secs(30)))
            .expect("read timeout");
        Client {
            reader: BufReader::new(stream.try_clone().expect("clone")),
            stream,
        }
    }

    /// Send one line, read one line.
    fn round_trip(&mut self, line: &str) -> String {
        writeln!(self.stream, "{line}").expect("send");
        let mut reply = String::new();
        self.reader.read_line(&mut reply).expect("recv");
        assert!(reply.ends_with('\n'), "reply must be line-delimited");
        reply.trim_end().to_string()
    }
}

#[test]
fn every_query_kind_round_trips_with_wellformed_replies() {
    let server = Server::start(&ServerConfig::default()).expect("start");
    let mut client = Client::connect(server.addr());

    let good = [
        "{\"op\":\"ping\",\"id\":1}",
        "{\"op\":\"measure\",\"arch\":\"mips-r3000\",\"primitive\":\"syscall\",\"id\":2}",
        "{\"op\":\"table\",\"table\":\"table1\",\"id\":3}",
        "{\"op\":\"lint\",\"arch\":\"SPARC\",\"id\":4}",
        "{\"op\":\"analyze\",\"arch\":\"SPARC\",\"id\":5}",
        "{\"op\":\"trace\",\"arch\":\"R2000\",\"primitive\":\"trap\",\"id\":6}",
        "{\"op\":\"counters\",\"arch\":\"CVAX\",\"id\":7}",
        "{\"op\":\"stats\",\"id\":8}",
        "{\"op\":\"spans\",\"id\":9}",
    ];
    for (index, request) in good.iter().enumerate() {
        let reply = client.round_trip(request);
        assert_eq!(
            metrics::validate_json(&reply),
            Ok(()),
            "{request} -> {reply}"
        );
        assert!(reply.contains("\"ok\":true"), "{request} -> {reply}");
        assert!(
            reply.contains(&format!("\"id\":{}", index + 1)),
            "{request} -> {reply}"
        );
        assert!(
            reply.contains(&format!("\"schema\":\"{}\"", metrics::SERVE_SCHEMA)),
            "{request} -> {reply}"
        );
    }

    // Malformed request: clean error envelope, connection stays usable.
    let reply = client.round_trip("{this is not json");
    assert_eq!(metrics::validate_json(&reply), Ok(()), "{reply}");
    assert!(reply.contains("\"ok\":false") && reply.contains("\"error\":\""));

    // Unknown names: the error lists the valid spellings, aliases included.
    let reply =
        client.round_trip("{\"op\":\"measure\",\"arch\":\"vax\",\"primitive\":\"trap\",\"id\":9}");
    assert!(
        reply.contains("\"ok\":false") && reply.contains("mips-r3000"),
        "{reply}"
    );
    assert!(
        reply.contains("\"id\":9"),
        "bad-name errors echo the id: {reply}"
    );

    // Unknown ops: the error lists the registry, `analyze` included.
    let reply = client.round_trip("{\"op\":\"warp\",\"id\":10}");
    assert!(
        reply.contains("\"ok\":false") && reply.contains("analyze"),
        "unknown-op error must list the op registry: {reply}"
    );

    // The connection still works after errors.
    let reply = client.round_trip("{\"op\":\"ping\",\"id\":11}");
    assert!(reply.contains("\"pong\":true"));

    // Oversized request: error envelope, then the server hangs up cleanly.
    let huge = format!(
        "{{\"op\":\"ping\",\"pad\":\"{}\"}}",
        "x".repeat(MAX_REQUEST_BYTES)
    );
    let reply = client.round_trip(&huge);
    assert_eq!(metrics::validate_json(&reply), Ok(()), "{reply}");
    assert!(reply.contains("request too large"), "{reply}");

    server.stop();
}

#[test]
fn cached_replies_are_byte_identical_to_direct_emitter_output() {
    let server = Server::start(&ServerConfig::default()).expect("start");
    let mut client = Client::connect(server.addr());

    // The server computes through the same shared session as this test
    // process, and the simulator is deterministic — so the served payload
    // must equal the direct emitter output byte for byte.
    let expected = metrics::measure_json(Arch::Sparc, Primitive::ContextSwitch);
    let request = "{\"op\":\"measure\",\"arch\":\"sparc\",\"primitive\":\"ctxsw\",\"id\":1}";
    let first = client.round_trip(request);
    assert!(
        first.contains(&format!("\"result\":{expected}}}")),
        "served payload diverged:\n{first}\n!=\n{expected}"
    );
    assert!(first.contains("\"cached\":false"), "{first}");

    // The second request is a cache hit with the identical payload.
    let second = client.round_trip(request);
    assert!(second.contains("\"cached\":true"), "{second}");
    assert_eq!(
        first.split("\"result\":").nth(1),
        second.split("\"result\":").nth(1),
        "cache hit changed the payload"
    );

    // Proof artifacts too: the served `analyze` payload equals the direct
    // emitter output byte for byte, and repeats arrive from the cache
    // unchanged.
    let expected = {
        let report = osarch_core::AbsintAnalyzer::new().analyze_arch(Arch::Sparc);
        metrics::absint_json(&report).trim_end().to_string()
    };
    let request = "{\"op\":\"analyze\",\"arch\":\"sparc\",\"id\":3}";
    let first = client.round_trip(request);
    assert!(
        first.contains(&format!("\"result\":{expected}}}")),
        "served analyze payload diverged:\n{first}\n!=\n{expected}"
    );
    assert!(first.contains("\"cached\":false"), "{first}");
    let second = client.round_trip(request);
    assert!(second.contains("\"cached\":true"), "{second}");
    assert_eq!(
        first.split("\"result\":").nth(1),
        second.split("\"result\":").nth(1),
        "analyze cache hit changed the payload"
    );

    // Tables too: the served document is the CLI's JSON, byte for byte.
    let spec = osarch_core::session::report_by_name("table5").expect("table5");
    let expected = metrics::table_json(&(spec.build)());
    let reply = client.round_trip("{\"op\":\"table\",\"table\":\"table5\",\"id\":2}");
    assert!(
        reply.contains(&format!("\"result\":{expected}}}")),
        "table payload diverged"
    );

    server.stop();
}

#[test]
fn deadline_overrun_yields_clean_error_envelope() {
    let server = Server::start(&ServerConfig {
        deadline: Duration::ZERO,
        ..ServerConfig::default()
    })
    .expect("start");
    let mut client = Client::connect(server.addr());
    let reply =
        client.round_trip("{\"op\":\"measure\",\"arch\":\"CVAX\",\"primitive\":\"pte\",\"id\":1}");
    assert_eq!(metrics::validate_json(&reply), Ok(()), "{reply}");
    assert!(reply.contains("deadline exceeded"), "{reply}");
    assert!(reply.contains("\"ok\":false"), "{reply}");
    server.stop();
}

#[test]
fn backpressure_rejects_with_busy_envelope() {
    let server = Server::start(&ServerConfig {
        workers: 1,
        queue_depth: 1,
        ..ServerConfig::default()
    })
    .expect("start");

    // Occupy the single worker…
    let mut held = Client::connect(server.addr());
    let reply = held.round_trip("{\"op\":\"ping\"}");
    assert!(reply.contains("\"pong\":true"));
    // …fill the one queue slot…
    let _queued = Client::connect(server.addr());
    std::thread::sleep(Duration::from_millis(200));
    // …and the next connection must be rejected, not queued forever.
    let mut rejected = Client::connect(server.addr());
    let mut reply = String::new();
    rejected.reader.read_line(&mut reply).expect("busy reply");
    assert!(reply.contains("server busy"), "{reply}");
    assert_eq!(metrics::validate_json(reply.trim_end()), Ok(()), "{reply}");

    server.stop();
}

#[test]
fn in_band_shutdown_terminates_the_server() {
    let server = Server::start(&ServerConfig::default()).expect("start");
    let addr = server.addr();
    let mut client = Client::connect(addr);
    let reply = client.round_trip("{\"op\":\"shutdown\",\"id\":99}");
    assert!(reply.contains("\"shutting_down\":true"), "{reply}");
    assert!(reply.contains("\"id\":99"), "{reply}");
    // Every thread exits; wait() must return rather than hang.
    server.wait();
}

#[test]
fn loadgen_reports_validate_and_more_workers_win_on_skew() {
    // Self-hosted burst: the report must validate against the schema and
    // show real progress.
    let report = osarch_serve::run_loadgen(&LoadgenConfig {
        conns: 4,
        secs: 0.5,
        skew: true,
        workers: 2,
        ..LoadgenConfig::default()
    })
    .expect("loadgen");
    let doc = metrics::serve_bench_json(&report);
    assert_eq!(metrics::validate_json(&doc), Ok(()), "{doc}");
    assert!(doc.contains(&format!("\"schema\":\"{}\"", metrics::SERVE_BENCH_SCHEMA)));
    assert!(report.requests > 0, "no requests completed");
    assert!(report.throughput_rps > 0.0);
    assert_eq!(report.workload, "skewed");
    assert!(
        report.hits + report.coalesced >= report.misses,
        "skewed traffic should mostly hit the cache: {report:?}"
    );

    // The scaling claim needs real cores to be meaningful; skip on a
    // single-core host rather than assert noise.
    let cores = std::thread::available_parallelism().map_or(1, std::num::NonZeroUsize::get);
    if cores < 2 {
        eprintln!("skipping worker-scaling assertion on a {cores}-core host");
        return;
    }
    let run = |workers: usize| {
        osarch_serve::run_loadgen(&LoadgenConfig {
            conns: 8,
            secs: 1.0,
            skew: true,
            workers,
            ..LoadgenConfig::default()
        })
        .expect("loadgen")
    };
    let one = run(1);
    let four = run(4);
    assert!(
        four.throughput_rps > one.throughput_rps,
        "4 workers must out-serve 1: {:.0} vs {:.0} req/s",
        four.throughput_rps,
        one.throughput_rps
    );
}
