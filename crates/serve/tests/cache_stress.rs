//! Satellite: multi-threaded stress of the sharded single-flight cache.
//!
//! ≥ 8 threads hammer overlapping (arch, primitive) keys concurrently.
//! The cache must run each key's computation exactly once, and every
//! returned payload must be bit-identical to what a single-threaded
//! [`MeasurementSession`] produces for the same key.

use osarch_core::{metrics, AbsintAnalyzer, MeasurementSession};
use osarch_cpu::Arch;
use osarch_kernel::Primitive;
use osarch_serve::{Query, ShardedCache, SpecSnapshot};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Barrier;

/// A key's payload: enough measurement state that any divergence between
/// two computations would show.
fn payload(session: &MeasurementSession, arch: Arch, primitive: Primitive) -> String {
    let m = session.measurement(arch);
    let stats = m.stats(primitive);
    format!(
        "{arch}/{}: cycles={} instructions={} us={:.6}",
        primitive.tag(),
        stats.cycles,
        stats.instructions,
        m.times_us().time(primitive)
    )
}

#[test]
fn hammering_threads_compute_each_key_exactly_once_and_bit_identical() {
    const THREADS: usize = 12;
    const ROUNDS: usize = 40;
    let keys: Vec<(Arch, Primitive)> = Arch::all()
        .into_iter()
        .flat_map(|arch| Primitive::all().into_iter().map(move |p| (arch, p)))
        .collect();
    let cache = ShardedCache::new(8);
    let session = MeasurementSession::new();
    let computations: Vec<AtomicU64> = keys.iter().map(|_| AtomicU64::new(0)).collect();
    let barrier = Barrier::new(THREADS);

    std::thread::scope(|scope| {
        for thread in 0..THREADS {
            let cache = &cache;
            let session = &session;
            let keys = &keys;
            let computations = &computations;
            let barrier = &barrier;
            scope.spawn(move || {
                barrier.wait();
                for round in 0..ROUNDS {
                    // Every thread walks the whole key set each round, each
                    // from a different starting offset, so key collisions
                    // are constant and cover every shard.
                    for step in 0..keys.len() {
                        let index = (thread + round + step) % keys.len();
                        let (arch, primitive) = keys[index];
                        let key = format!("measure/{arch}/{}", primitive.tag());
                        let (value, _) = cache.get_or_compute(&key, || {
                            computations[index].fetch_add(1, Ordering::SeqCst);
                            payload(session, arch, primitive)
                        });
                        assert!(!value.is_empty());
                    }
                }
            });
        }
    });

    // Exactly one computation per key, no matter the interleaving.
    for (index, (arch, primitive)) in keys.iter().enumerate() {
        assert_eq!(
            computations[index].load(Ordering::SeqCst),
            1,
            "{arch} {} computed more than once",
            primitive.tag()
        );
    }
    assert_eq!(cache.misses(), keys.len() as u64);
    let total_requests = (THREADS * ROUNDS * keys.len()) as u64;
    assert_eq!(
        cache.hits() + cache.coalesced() + cache.misses(),
        total_requests,
        "every request is a hit, a coalesced wait, or the one miss"
    );

    // Bit-identical to a fresh single-threaded session.
    let reference = MeasurementSession::new();
    for (arch, primitive) in keys {
        let key = format!("measure/{arch}/{}", primitive.tag());
        let (cached, was_cached) = cache.get_or_compute(&key, || unreachable!("{key} is cached"));
        assert!(was_cached);
        assert_eq!(
            &*cached,
            payload(&reference, arch, primitive),
            "{key} diverged from the single-threaded session"
        );
    }
}

#[test]
fn analyze_queries_single_flight_with_byte_identical_replies() {
    const THREADS: usize = 12;
    const ROUNDS: usize = 8;
    // The real serve queries for every per-arch proof run plus the
    // all-architectures run — the same keys and compute path the server's
    // data-query arm uses.
    let queries: Vec<Query> = Arch::all()
        .into_iter()
        .map(|arch| Query::Analyze { arch: Some(arch) })
        .chain(std::iter::once(Query::Analyze { arch: None }))
        .collect();
    let cache = ShardedCache::new(8);
    let snapshot = SpecSnapshot::builtins();
    let computations: Vec<AtomicU64> = queries.iter().map(|_| AtomicU64::new(0)).collect();
    let barrier = Barrier::new(THREADS);

    std::thread::scope(|scope| {
        for thread in 0..THREADS {
            let cache = &cache;
            let queries = &queries;
            let snapshot = &snapshot;
            let computations = &computations;
            let barrier = &barrier;
            scope.spawn(move || {
                barrier.wait();
                for round in 0..ROUNDS {
                    for step in 0..queries.len() {
                        let index = (thread + round + step) % queries.len();
                        let query = &queries[index];
                        let key = query.cache_key(snapshot).expect("analyze is cacheable");
                        let (value, _) = cache.get_or_compute(&key, || {
                            computations[index].fetch_add(1, Ordering::SeqCst);
                            query.compute(snapshot)
                        });
                        assert!(value.starts_with("{\"schema\":\"osarch-absint/1\""));
                    }
                }
            });
        }
    });

    for (index, query) in queries.iter().enumerate() {
        assert_eq!(
            computations[index].load(Ordering::SeqCst),
            1,
            "{:?} computed more than once",
            query.cache_key(&snapshot)
        );
        // Every cached reply is byte-identical to the direct emitter.
        let key = query.cache_key(&snapshot).expect("cacheable");
        let (cached, was_cached) = cache.get_or_compute(&key, || unreachable!("{key} is cached"));
        assert!(was_cached);
        let analyzer = AbsintAnalyzer::new();
        let report = match query {
            Query::Analyze { arch: Some(arch) } => analyzer.analyze_arch(*arch),
            Query::Analyze { arch: None } => analyzer.analyze_all(),
            other => unreachable!("{other:?}"),
        };
        assert_eq!(
            &*cached,
            metrics::absint_json(&report).trim_end(),
            "{key} diverged from the direct emitter"
        );
    }
}
