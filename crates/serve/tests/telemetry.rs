//! End-to-end request telemetry: trace-id propagation through the
//! pipelined request path, the `metrics` op and scrape listener against
//! the core validator, the derived health gauges, deterministic
//! same-seed replay of soak telemetry, and a concurrent stress over the
//! windowed-histogram hub.

use osarch_serve::{run_soak, Server, ServerConfig, SoakConfig};
use osarch_telemetry::TraceIdGen;
use std::io::{BufRead, BufReader, Read, Write};
use std::net::TcpStream;
use std::time::Duration;

fn connect(handle: &osarch_serve::ServerHandle) -> TcpStream {
    let stream = TcpStream::connect(handle.addr()).expect("connect");
    stream
        .set_read_timeout(Some(Duration::from_secs(10)))
        .expect("read timeout");
    stream
}

/// Slice the `result` payload back out of a reply envelope.
fn result_payload(reply: &str) -> &str {
    let trimmed = reply.trim_end();
    let start = trimmed.find("\"result\":").expect("result field") + "\"result\":".len();
    &trimmed[start..trimmed.len() - 1]
}

#[test]
fn depth_16_pipeline_yields_one_complete_chain_per_request() {
    let handle = Server::start(&ServerConfig {
        workers: 2,
        sample_every: 1, // trace everything: the chain set must be exact
        telemetry_seed: 0xdead_beef,
        ..ServerConfig::default()
    })
    .expect("server starts");
    let stream = connect(&handle);
    let mut reader = BufReader::new(stream.try_clone().expect("clone"));
    let mut writer = stream;

    // One write, 16 requests in flight, 16 *distinct* cold keys: every
    // request misses, offloads, and computes — the full five-stage path.
    let keys: Vec<(osarch_cpu::Arch, osarch_kernel::Primitive)> =
        osarch_serve::loadgen::key_space()
            .into_iter()
            .take(16)
            .collect();
    let mut burst = String::new();
    for (id, (arch, primitive)) in keys.iter().enumerate() {
        burst.push_str(&format!(
            "{{\"op\":\"measure\",\"arch\":\"{arch}\",\"primitive\":\"{}\",\"id\":{id}}}\n",
            primitive.tag()
        ));
    }
    writer.write_all(burst.as_bytes()).expect("burst write");
    for id in 0..keys.len() {
        let mut reply = String::new();
        reader.read_line(&mut reply).expect("reply");
        assert!(
            reply.contains(&format!("\"id\":{id},")) && reply.contains("\"ok\":true"),
            "reply {id}: {reply}"
        );
    }

    // Every request left exactly one finished chain with the complete
    // stage walk, and a distinct deterministic trace id.
    let chains = handle.telemetry().chains();
    let measure: Vec<_> = chains.iter().filter(|c| c.op == "measure").collect();
    assert_eq!(measure.len(), keys.len(), "one chain per pipelined request");
    let mut ids: Vec<u64> = measure.iter().map(|c| c.trace_id).collect();
    ids.sort_unstable();
    ids.dedup();
    assert_eq!(ids.len(), keys.len(), "trace ids are distinct");
    for chain in &measure {
        assert_ne!(chain.trace_id, 0);
        assert_ne!(chain.span_id, chain.trace_id);
        for stage in ["decode", "queue", "cache", "compute", "write"] {
            assert!(
                chain.has_stage(stage),
                "chain {:#x} missing {stage}: {:?}",
                chain.trace_id,
                chain.spans
            );
        }
        // Queue wait is split out from service time: the cache stage
        // (single-flight occupancy) starts only after the queue stage.
        let queue = chain.spans.iter().find(|s| s.stage == "queue").unwrap();
        let cache = chain.spans.iter().find(|s| s.stage == "cache").unwrap();
        assert!(cache.start_us >= queue.start_us + queue.dur_us);
    }
    // The ids replay from the seed: every observed id sits on its loop's
    // pure generator stream.
    for chain in &measure {
        assert!(
            on_stream(0xdead_beef, chain.loop_index, &[chain.trace_id]),
            "trace id {:#x} not on the seeded stream",
            chain.trace_id
        );
    }
    handle.stop();
}

/// Whether every id in `ids` appears in the first million draws of the
/// seeded SplitMix64 stream for one loop shard. Membership, not order:
/// chains complete in reply order, which pipelining decouples from
/// id-draw order.
fn on_stream(seed: u64, loop_index: usize, ids: &[u64]) -> bool {
    let mut gen = TraceIdGen::new(seed, loop_index as u64);
    let mut pending: std::collections::HashSet<u64> = ids.iter().copied().collect();
    for _ in 0..1_000_000u32 {
        if pending.is_empty() {
            return true;
        }
        pending.remove(&gen.next_id());
    }
    pending.is_empty()
}

#[test]
fn metrics_op_returns_a_validated_snapshot() {
    let handle = Server::start(&ServerConfig {
        workers: 2,
        ..ServerConfig::default()
    })
    .expect("server starts");
    let stream = connect(&handle);
    let mut reader = BufReader::new(stream.try_clone().expect("clone"));
    let mut writer = stream;
    // Put some traffic on the books first so the windows are non-empty.
    writeln!(writer, "{{\"op\":\"ping\",\"id\":1}}").expect("ping");
    let mut reply = String::new();
    reader.read_line(&mut reply).expect("ping reply");
    writeln!(writer, "{{\"op\":\"metrics\",\"id\":2}}").expect("metrics");
    reply.clear();
    reader.read_line(&mut reply).expect("metrics reply");
    assert!(reply.contains("\"ok\":true"), "reply: {reply}");
    let payload = result_payload(&reply);
    osarch_core::metrics::validate_metrics_snapshot(payload)
        .unwrap_or_else(|reason| panic!("snapshot rejected: {reason}\n{payload}"));
    assert!(payload.contains("\"schema\":\"osarch-metrics/1\""));
    handle.stop();
}

#[test]
fn scrape_listener_serves_prometheus_text_and_validated_json() {
    let handle = Server::start(&ServerConfig {
        workers: 2,
        metrics_addr: Some("127.0.0.1:0".to_string()),
        ..ServerConfig::default()
    })
    .expect("server starts");
    let scrape_addr = handle.metrics_addr().expect("scrape listener bound");

    let fetch = |path: &str| -> String {
        let mut stream = TcpStream::connect(scrape_addr).expect("connect scrape listener");
        stream
            .set_read_timeout(Some(Duration::from_secs(5)))
            .expect("timeout");
        write!(stream, "GET {path} HTTP/1.0\r\nConnection: close\r\n\r\n").expect("request");
        let mut response = String::new();
        stream.read_to_string(&mut response).expect("response");
        response
    };

    let text = fetch("/metrics");
    assert!(text.starts_with("HTTP/1.0 200 OK"), "{text}");
    assert!(text.contains("text/plain"), "{text}");
    assert!(text.contains("osarch_uptime_seconds"), "{text}");
    assert!(text.contains("osarch_requests_total"), "{text}");

    let json = fetch("/metrics/json");
    assert!(json.contains("application/json"), "{json}");
    let body = json.split_once("\r\n\r\n").expect("body").1;
    osarch_core::metrics::validate_metrics_snapshot(body)
        .unwrap_or_else(|reason| panic!("scrape JSON rejected: {reason}\n{body}"));
    handle.stop();
}

#[test]
fn health_reports_derived_gauges() {
    let handle = Server::start(&ServerConfig {
        workers: 2,
        queue_depth: 37, // the connection budget derives from this
        ..ServerConfig::default()
    })
    .expect("server starts");
    let stream = connect(&handle);
    let mut reader = BufReader::new(stream.try_clone().expect("clone"));
    let mut writer = stream;
    // One miss then one hit gives the ratio a denominator.
    for id in [1, 2] {
        writeln!(
            writer,
            "{{\"op\":\"measure\",\"arch\":\"R2000\",\"primitive\":\"trap\",\"id\":{id}}}"
        )
        .expect("measure");
        let mut reply = String::new();
        reader.read_line(&mut reply).expect("measure reply");
    }
    writeln!(writer, "{{\"op\":\"health\",\"id\":3}}").expect("health");
    let mut reply = String::new();
    reader.read_line(&mut reply).expect("health reply");
    let payload = result_payload(&reply);
    for key in [
        "\"cache_hit_ratio\":",
        "\"conns_open\":1",
        "\"conn_budget\":37",
        "\"workers_live\":2",
        "\"oldest_write_backlog_ms\":",
        "\"shutting_down\":false",
    ] {
        assert!(payload.contains(key), "missing {key}: {payload}");
    }
    assert!(payload.contains("\"cache_hit_ratio\":0.5"), "{payload}");
    handle.stop();
}

#[test]
fn same_seed_soaks_replay_telemetry_from_the_seed() {
    let config = SoakConfig {
        seed: 0x7e1e_417a,
        rate: 0.15,
        secs: 1.0,
        conns: 4,
        workers: 2,
        shards: 8,
        sample: 2,
        metrics_addr: Some("127.0.0.1:0".to_string()),
    };
    let first = run_soak(&config).expect("first soak");
    let second = run_soak(&config).expect("second soak");
    for (label, report) in [("first", &first), ("second", &second)] {
        assert!(
            report.passed(),
            "{label} soak violations: {:?}",
            report.violations
        );
        assert!(report.chains_sampled > 0, "{label} soak sampled nothing");
        osarch_core::metrics::validate_metrics_snapshot(&report.metrics_snapshot)
            .unwrap_or_else(|reason| panic!("{label} snapshot rejected: {reason}"));
        assert!(report.chrome_trace.contains("\"osarch-trace/1\""));
    }
    // The schedules are bit-identical (pure function of the seed) …
    assert_eq!(first.schedule, second.schedule);
    // … and so are the id streams the traces draw from: both runs'
    // per-loop trace ids are subsequences of one deterministic stream.
    for report in [&first, &second] {
        for (loop_index, ids) in report.trace_ids_by_loop.iter().enumerate() {
            assert!(
                on_stream(config.seed, loop_index, ids),
                "loop {loop_index} ids fell off the seeded stream"
            );
        }
    }
}

#[test]
fn hub_survives_concurrent_record_merge_and_rotation() {
    use std::sync::Arc;
    const LOOPS: usize = 4;
    const THREADS: usize = 8;
    const PHASE1: u64 = 20_000;
    const PHASE2: u64 = 5_000;
    let hub = Arc::new(osarch_telemetry::TelemetryHub::new(
        LOOPS,
        &osarch_serve::OP_NAMES,
        4,
        99,
    ));
    std::thread::scope(|scope| {
        for thread in 0..THREADS {
            let hub = Arc::clone(&hub);
            scope.spawn(move || {
                let loop_index = thread % LOOPS;
                // Phase 1: records racing across a fast-rolling clock —
                // every record forces window lookups, many force
                // rotation and retention pruning.
                for i in 0..PHASE1 {
                    let now_s = i / 100; // 200 epochs deep, > retention
                    hub.record_op(loop_index, 1, (i % 997) + 1, now_s);
                    hub.bump(loop_index, osarch_telemetry::COUNTER_REQUESTS, 1, now_s);
                    hub.record_loop_lag(loop_index, i % 53, now_s);
                }
                // Phase 2: a fixed epoch far past phase 1, so rotation
                // prunes every phase-1 window and the final merged count
                // is exact.
                for i in 0..PHASE2 {
                    hub.record_op(loop_index, 2, (i % 89) + 1, 10_000);
                }
            });
        }
        // Concurrent reader: merge snapshots while the writers rotate.
        let hub = Arc::clone(&hub);
        scope.spawn(move || {
            for _ in 0..50 {
                let snap = hub.snapshot(
                    1_000_000,
                    osarch_telemetry::Gauges::default(),
                    osarch_telemetry::Totals::default(),
                );
                assert_eq!(snap.ops.len(), osarch_serve::OP_NAMES.len());
                std::thread::yield_now();
            }
        });
    });
    // Roll every shard to the final epoch, then count: phase-2 records
    // all landed on op slot 2 ("table") and nothing was lost.
    for loop_index in 0..LOOPS {
        hub.record_op(loop_index, 2, 1, 10_000);
    }
    let snap = hub.snapshot(
        1_000_000,
        osarch_telemetry::Gauges::default(),
        osarch_telemetry::Totals::default(),
    );
    let table = &snap.ops[2];
    assert_eq!(
        table.hist.count(),
        THREADS as u64 * PHASE2 + LOOPS as u64,
        "phase-2 records merged exactly"
    );
    let doc = osarch_core::metrics::metrics_snapshot_json(&snap);
    osarch_core::metrics::validate_metrics_snapshot(&doc)
        .unwrap_or_else(|reason| panic!("stress snapshot rejected: {reason}"));
}
