//! Satellite: robustness regression tests.
//!
//! Protocol framing under adversarial segmentation (one byte per write,
//! two requests per segment), the stalled-client shutdown race, cache
//! poisoning by a panicking leader under real concurrency, the `health`
//! probe, and the chaos soak itself — run twice to prove the fault
//! schedule replays bit-identically from its seed.

use osarch_core::metrics;
use osarch_serve::cache::Fetched;
use osarch_serve::{Server, ServerConfig, ShardedCache, SoakConfig};
use std::io::{BufRead, BufReader, Write};
use std::net::TcpStream;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{mpsc, Arc, Barrier};
use std::time::Duration;

fn connect(addr: std::net::SocketAddr) -> (BufReader<TcpStream>, TcpStream) {
    let stream = TcpStream::connect(addr).expect("connect");
    stream
        .set_read_timeout(Some(Duration::from_secs(30)))
        .expect("read timeout");
    (BufReader::new(stream.try_clone().expect("clone")), stream)
}

/// Satellite 1a: a request delivered one byte per `write()` call must be
/// reassembled into one request — the reply arrives whole and correct.
#[test]
fn one_byte_per_write_request_is_reassembled() {
    let server = Server::start(&ServerConfig::default()).expect("start");
    let (mut reader, mut stream) = connect(server.addr());

    let request = b"{\"op\":\"ping\",\"id\":77}\n";
    for byte in request {
        stream
            .write_all(std::slice::from_ref(byte))
            .expect("write one byte");
        stream.flush().expect("flush");
    }
    let mut reply = String::new();
    reader.read_line(&mut reply).expect("read reply");
    assert!(reply.ends_with('\n'), "reply must be line-delimited");
    assert_eq!(metrics::validate_json(reply.trim_end()), Ok(()), "{reply}");
    assert!(reply.contains("\"pong\":true"), "{reply}");
    assert!(reply.contains("\"id\":77"), "{reply}");

    server.stop();
}

/// Satellite 1b: two complete requests delivered in a single `write()`
/// call (one TCP segment) must produce exactly two replies, in order.
#[test]
fn two_requests_in_one_segment_yield_two_ordered_replies() {
    let server = Server::start(&ServerConfig::default()).expect("start");
    let (mut reader, mut stream) = connect(server.addr());

    stream
        .write_all(b"{\"op\":\"ping\",\"id\":1}\n{\"op\":\"ping\",\"id\":2}\n")
        .expect("write both requests at once");
    stream.flush().expect("flush");

    for expected_id in [1u64, 2] {
        let mut reply = String::new();
        reader.read_line(&mut reply).expect("read reply");
        assert_eq!(metrics::validate_json(reply.trim_end()), Ok(()), "{reply}");
        assert!(
            reply.contains(&format!("\"id\":{expected_id}")),
            "replies must come back in request order: wanted id {expected_id}, got {reply}"
        );
    }

    server.stop();
}

/// Satellite 2: a client that stops draining its socket must not wedge a
/// worker — and with it, shutdown. The write deadline disconnects the
/// stalled client instead.
#[test]
fn stalled_client_cannot_wedge_shutdown() {
    let server = Server::start(&ServerConfig {
        workers: 2,
        write_timeout: Duration::from_millis(200),
        ..ServerConfig::default()
    })
    .expect("start");
    let addr = server.addr();

    // The stalled client: pipeline many large-reply requests and never
    // read a byte. Replies fill the kernel socket buffers until the
    // worker's write blocks.
    let stream = TcpStream::connect(addr).expect("connect");
    let mut writer = stream.try_clone().expect("clone");
    for id in 0..500 {
        if writeln!(
            writer,
            "{{\"op\":\"table\",\"table\":\"table1\",\"id\":{id}}}"
        )
        .is_err()
        {
            break; // server already disconnected us — even better
        }
    }
    let _ = writer.flush();
    // Give the worker time to fill the buffers and hit the deadline.
    std::thread::sleep(Duration::from_millis(600));

    // Shutdown must complete promptly despite the stalled connection.
    let (tx, rx) = mpsc::channel();
    std::thread::spawn(move || {
        server.stop();
        let _ = tx.send(());
    });
    rx.recv_timeout(Duration::from_secs(10))
        .expect("shutdown wedged behind a stalled client");
    drop(stream);
}

/// Satellite 3: a leader that panics mid-flight must wake every parked
/// waiter with a clean error — and the key must stay retriable, not
/// poisoned. Real threads, real contention.
#[test]
fn panicking_leader_wakes_all_waiters_and_key_stays_retriable() {
    let cache = Arc::new(ShardedCache::new(4));
    let waiters = 6;
    // Everyone (leader + waiters) lines up; the leader's compute holds
    // the flight long enough for every waiter to park on it.
    let start = Arc::new(Barrier::new(waiters + 1));
    let computes = Arc::new(AtomicU64::new(0));

    let results: Vec<Fetched> = std::thread::scope(|scope| {
        let leader = {
            let cache = Arc::clone(&cache);
            let start = Arc::clone(&start);
            let computes = Arc::clone(&computes);
            scope.spawn(move || {
                cache.get_or_compute_resilient("hot", || {
                    computes.fetch_add(1, Ordering::SeqCst);
                    start.wait(); // every waiter thread is running
                    std::thread::sleep(Duration::from_millis(100)); // …and parked
                    panic!("chaos: injected leader panic");
                })
            })
        };
        let handles: Vec<_> = (0..waiters)
            .map(|_| {
                let cache = Arc::clone(&cache);
                let start = Arc::clone(&start);
                let computes = Arc::clone(&computes);
                scope.spawn(move || {
                    start.wait();
                    cache.get_or_compute_resilient("hot", || {
                        computes.fetch_add(1, Ordering::SeqCst);
                        "late win".to_string()
                    })
                })
            })
            .collect();
        let mut results = vec![leader.join().expect("leader must not propagate the panic")];
        for handle in handles {
            results.push(handle.join().expect("waiter must not hang or panic"));
        }
        results
    });

    // The leader fails; every waiter either saw that failure or raced in
    // after the key was cleared and became a fresh leader/hit. Nobody
    // hangs, nobody sees a success envelope wrapping an error payload.
    assert!(
        matches!(results[0], Fetched::Failed(_)),
        "leader outcome: {:?}",
        results[0]
    );
    for fetched in &results[1..] {
        match fetched {
            Fetched::Failed(error) => {
                assert!(error.contains("panicked"), "{error}");
            }
            Fetched::Computed(value) | Fetched::Cached(value) => {
                assert_eq!(&**value, "late win", "a post-failure retry recomputed");
            }
            Fetched::Degraded(value, _) => {
                assert_eq!(&**value, "late win");
            }
        }
    }

    // The key is not poisoned: a later request retries and succeeds.
    let retry = cache.get_or_compute_resilient("hot", || "recovered".to_string());
    match retry {
        Fetched::Computed(value) => assert_eq!(&*value, "recovered"),
        Fetched::Cached(value) => assert_eq!(&*value, "late win"),
        other => panic!("key stayed poisoned: {other:?}"),
    }
    assert!(
        cache.failed() >= 1,
        "the leader's failure must be counted: {}",
        cache.failed()
    );
    // Single-flight accounting stays exact through the failure.
    assert_eq!(
        cache.lookups(),
        cache.hits() + cache.misses() + cache.coalesced()
    );
}

/// The `health` probe: one line with worker liveness, queue depth, and
/// the resilience counters.
#[test]
fn health_probe_reports_liveness() {
    let server = Server::start(&ServerConfig {
        workers: 3,
        ..ServerConfig::default()
    })
    .expect("start");
    let (mut reader, mut stream) = connect(server.addr());
    writeln!(stream, "{{\"op\":\"health\",\"id\":5}}").expect("send");
    let mut reply = String::new();
    reader.read_line(&mut reply).expect("recv");
    assert_eq!(metrics::validate_json(reply.trim_end()), Ok(()), "{reply}");
    assert!(reply.contains("\"ok\":true"), "{reply}");
    assert!(reply.contains("\"id\":5"), "{reply}");
    assert!(reply.contains("\"status\":\"ok\""), "{reply}");
    assert!(reply.contains("\"workers\":3"), "{reply}");
    assert!(reply.contains("\"workers_live\":3"), "{reply}");
    assert!(reply.contains("\"queue_depth\":"), "{reply}");
    assert!(reply.contains("\"panics\":0"), "{reply}");
    server.stop();
}

/// Tentpole acceptance: the chaos soak holds every invariant, and two
/// soaks with one seed plan bit-identical fault schedules (the actual
/// injected counts are interleaving-dependent; the schedule is not).
#[test]
fn chaos_soak_invariants_hold_and_schedule_replays() {
    let config = SoakConfig {
        seed: 42,
        rate: 0.2,
        secs: 1.0,
        conns: 4,
        workers: 2,
        ..SoakConfig::default()
    };
    let first = osarch_serve::run_soak(&config).expect("soak");
    assert!(
        first.passed(),
        "soak invariants violated: {:?}",
        first.violations
    );
    assert!(first.oks > 0, "soak made no progress");
    assert!(
        first.injected_total > 0,
        "rate 0.2 must actually inject faults"
    );

    let second = osarch_serve::run_soak(&config).expect("soak rerun");
    assert!(second.passed(), "{:?}", second.violations);
    assert_eq!(
        first.schedule, second.schedule,
        "same seed must plan the identical fault schedule"
    );
    assert_eq!(first.schedule_total, second.schedule_total);

    // A different seed plans a different schedule.
    let other = osarch_serve::run_soak(&SoakConfig {
        seed: 43,
        secs: 0.5,
        ..config
    })
    .expect("soak seed 43");
    assert_ne!(first.schedule, other.schedule);
}
