//! Multi-node cluster integration: consistent-hash routing with R-way
//! replicas, proxy forwarding, `not_owner` redirects, gossip membership
//! convergence (and down-marking of a killed node), and the shard-aware
//! routing client failing over when a replica dies.

use osarch_serve::protocol::parse_request;
use osarch_serve::{
    run_cluster_soak, ClientConfig, ClusterClient, ClusterConfig, ClusterSoakConfig, Server,
    ServerConfig, ServerHandle,
};
use std::io::{BufRead, BufReader, Write};
use std::net::{TcpListener, TcpStream};
use std::time::{Duration, Instant};

/// Reserve `n` distinct loopback ports by binding them all at once,
/// then freeing them: every cluster node must know every peer's
/// dialable address before any node starts, so the usual `:0`
/// ephemeral-port trick cannot work here.
fn reserve_addrs(n: usize) -> Vec<String> {
    let listeners: Vec<TcpListener> = (0..n)
        .map(|_| TcpListener::bind("127.0.0.1:0").expect("reserve port"))
        .collect();
    listeners
        .iter()
        .map(|listener| {
            let port = listener.local_addr().expect("local addr").port();
            format!("127.0.0.1:{port}")
        })
        .collect()
}

fn start_cluster(
    addrs: &[String],
    replicas: usize,
    proxy: bool,
    gossip: Duration,
) -> Vec<ServerHandle> {
    addrs
        .iter()
        .map(|addr| {
            Server::start(&ServerConfig {
                addr: addr.clone(),
                workers: 2,
                compute_threads: 2,
                cluster: Some(ClusterConfig {
                    self_addr: addr.clone(),
                    peers: addrs.to_vec(),
                    replicas,
                    proxy,
                    gossip_interval: gossip,
                    ..ClusterConfig::default()
                }),
                ..ServerConfig::default()
            })
            .expect("cluster node starts")
        })
        .collect()
}

fn round_trip(addr: &str, line: &str) -> String {
    let stream = TcpStream::connect(addr).expect("connect");
    stream
        .set_read_timeout(Some(Duration::from_secs(10)))
        .expect("read timeout");
    let mut writer = stream.try_clone().expect("clone stream");
    writeln!(writer, "{line}").expect("send");
    let mut reply = String::new();
    BufReader::new(stream)
        .read_line(&mut reply)
        .expect("read reply");
    reply
}

/// Data-query lines spanning the key space: 5 arches × 4 primitives
/// plus two tables, enough that a 3-node ring places keys on every
/// node. All carry `"id":1`, so the id token is always `"1"`.
fn sample_lines() -> Vec<String> {
    let mut lines = Vec::new();
    for arch in ["mips-r3000", "i860", "SPARC", "CVAX", "R2000"] {
        for primitive in ["syscall", "trap", "ctxsw", "pte"] {
            lines.push(format!(
                "{{\"op\":\"measure\",\"arch\":\"{arch}\",\"primitive\":\"{primitive}\",\"id\":1}}"
            ));
        }
    }
    for table in ["table1", "table5"] {
        lines.push(format!(
            "{{\"op\":\"table\",\"table\":\"{table}\",\"id\":1}}"
        ));
    }
    lines
}

/// The server-side routing key for a request line — the same parse +
/// `routing_key` the event loop runs, so tests route exactly as it does.
/// (Routing is epoch-free on purpose: a live spec swap must not migrate
/// keys around the ring.)
fn key_of(line: &str) -> String {
    parse_request(line)
        .expect("line parses")
        .query
        .routing_key()
        .expect("data query has a key")
}

#[test]
fn every_key_answers_through_one_node_with_proxying() {
    let addrs = reserve_addrs(3);
    let handles = start_cluster(&addrs, 1, true, Duration::from_millis(200));

    // R=1: node 0 owns ~1/3 of the keys, so most of these must be
    // relayed — yet every one must come back ok through the one dial.
    for line in sample_lines() {
        let reply = round_trip(&addrs[0], &line);
        assert!(reply.contains("\"ok\":true"), "line {line} got: {reply}");
        assert!(
            !reply.contains("\"error\":\"not_owner\""),
            "proxy mode must never redirect: {reply}"
        );
    }

    let (forwarded, _, redirected, _) = handles[0].cluster_counters().expect("cluster mode");
    assert!(forwarded > 0, "no request was relayed off-node");
    assert_eq!(redirected, 0, "proxy mode must not redirect");
    let proxied_total: u64 = handles
        .iter()
        .map(|h| h.cluster_counters().expect("cluster mode").1)
        .sum();
    assert!(proxied_total > 0, "no peer served a forwarded request");
    assert!(
        forwarded >= proxied_total,
        "more proxied ({proxied_total}) than forwarded ({forwarded})"
    );

    // The cluster status document validates, both in-process and as the
    // `cluster` op's result payload over the socket.
    let status = handles[0].cluster_status_json().expect("cluster status");
    osarch_core::metrics::validate_cluster_status(&status).expect("valid osarch-cluster/1");
    let reply = round_trip(&addrs[0], "{\"op\":\"cluster\",\"id\":9}");
    assert!(reply.contains("\"ok\":true"), "got: {reply}");
    assert!(
        reply.contains("\"schema\":\"osarch-cluster/1\""),
        "got: {reply}"
    );

    for handle in handles {
        handle.stop();
    }
}

#[test]
fn non_replica_redirects_with_not_owner_when_proxying_is_off() {
    let addrs = reserve_addrs(3);
    let handles = start_cluster(&addrs, 1, false, Duration::from_millis(200));
    let ring = osarch_cluster::Ring::new(&addrs, osarch_cluster::DEFAULT_VNODES);

    // Pick a key node 0 does not own; with R=1 the reply must be a
    // `not_owner` redirect naming the actual owner.
    let (line, owner) = sample_lines()
        .into_iter()
        .find_map(|line| {
            let owner = ring
                .owner(&key_of(&line))
                .expect("ring has nodes")
                .to_string();
            (owner != addrs[0]).then_some((line, owner))
        })
        .expect("some key lives on another node");

    let reply = round_trip(&addrs[0], &line);
    assert!(reply.contains("\"ok\":false"), "got: {reply}");
    assert!(reply.contains("\"error\":\"not_owner\""), "got: {reply}");
    assert!(
        reply.contains(&format!("\"owner\":\"{owner}\"")),
        "redirect must name the ring owner: {reply}"
    );
    assert!(
        reply.contains(&format!("\"key\":\"{}\"", key_of(&line))),
        "redirect must echo the key: {reply}"
    );
    let (_, _, redirected, _) = handles[0].cluster_counters().expect("cluster mode");
    assert!(redirected > 0, "redirect counter did not move");

    // Following the redirect to the stated owner succeeds.
    let direct = round_trip(&owner, &line);
    assert!(direct.contains("\"ok\":true"), "got: {direct}");

    for handle in handles {
        handle.stop();
    }
}

#[test]
fn gossip_converges_and_marks_a_killed_node_down() {
    let addrs = reserve_addrs(3);
    let mut handles = start_cluster(&addrs, 2, true, Duration::from_millis(50));

    // Phase 1: every node's digest names all three peers alive, and all
    // three digests agree byte-for-byte.
    let deadline = Instant::now() + Duration::from_secs(20);
    loop {
        let digests: Vec<String> = handles
            .iter()
            .map(|h| h.membership_digest().expect("cluster mode"))
            .collect();
        let converged = digests.windows(2).all(|pair| pair[0] == pair[1])
            && addrs.iter().all(|a| digests[0].contains(&format!("{a}=")))
            && !digests[0].contains("/suspect")
            && !digests[0].contains("/down");
        if converged {
            break;
        }
        assert!(
            Instant::now() < deadline,
            "membership never converged: {digests:?}"
        );
        std::thread::sleep(Duration::from_millis(50));
    }

    // Phase 2: kill node 2; the survivors' gossip must flag it.
    let victim = handles.pop().expect("three nodes");
    victim.stop();
    let dead = &addrs[2];
    let deadline = Instant::now() + Duration::from_secs(20);
    loop {
        let digest = handles[0].membership_digest().expect("cluster mode");
        let flagged = digest.split(';').any(|entry| {
            entry.starts_with(&format!("{dead}="))
                && (entry.ends_with("/suspect") || entry.ends_with("/down"))
        });
        if flagged {
            break;
        }
        assert!(
            Instant::now() < deadline,
            "killed node never flagged: {digest}"
        );
        std::thread::sleep(Duration::from_millis(50));
    }

    for handle in handles {
        handle.stop();
    }
}

#[test]
fn cluster_soak_kill_and_respawn_passes_and_replays_its_schedule() {
    let config = ClusterSoakConfig {
        seed: 7,
        secs: 2.0,
        ..ClusterSoakConfig::default()
    };
    let report = run_cluster_soak(&config).expect("cluster soak starts");
    assert!(
        report.passed(),
        "cluster soak violations: {:?}",
        report.violations
    );
    assert_eq!(report.corrupt, 0);
    assert!(report.oks > 0);
    assert!(report.converged_before_kill);
    assert!(report.reconverged);

    // Same seed, same victim: the kill decision is a pure function of
    // the seed, never of the run.
    let replay = run_cluster_soak(&config).expect("cluster soak replays");
    assert_eq!(replay.victim, report.victim, "kill schedule must replay");
}

#[test]
fn cluster_client_fails_over_when_a_replica_dies() {
    let addrs = reserve_addrs(3);
    let mut handles = start_cluster(&addrs, 2, true, Duration::from_millis(50));
    let mut client = ClusterClient::new(
        &addrs,
        2,
        &ClientConfig {
            attempts: 2,
            attempt_timeout: Duration::from_secs(5),
            ..ClientConfig::default()
        },
    );

    // Warm pass: all nodes up, every key answers at its primary.
    for line in sample_lines() {
        let reply = client
            .call(&key_of(&line), &line, "1")
            .expect("healthy cluster answers");
        assert!(reply.ok, "got: {}", reply.raw);
    }
    assert!(client.route_counters().routed_primary > 0);

    // Kill one node. With R=2, every key keeps a live replica, so the
    // router must still answer 100% of the key space.
    let victim = handles.pop().expect("three nodes");
    victim.stop();
    for line in sample_lines() {
        let reply = client
            .call(&key_of(&line), &line, "1")
            .expect("R=2 keeps every key answerable with one node dead");
        assert!(reply.ok, "got: {}", reply.raw);
    }
    let routes = client.route_counters();
    assert!(
        routes.failovers > 0,
        "some keys' primary was the dead node; failover counter must move: {routes:?}"
    );

    for handle in handles {
        handle.stop();
    }
}
