//! Behaviour the event-driven core added: deep request pipelining with
//! ordered replies, oversized-line resynchronization, progress-based
//! idle accounting, loop liveness, and the multiplexed load driver at a
//! connection count no thread-per-connection pool would carry.

use osarch_serve::{LoadgenConfig, Server, ServerConfig};
use std::io::{BufRead, BufReader, Read, Write};
use std::net::TcpStream;
use std::time::Duration;

fn start(config: &ServerConfig) -> osarch_serve::ServerHandle {
    Server::start(config).expect("server starts")
}

fn connect(handle: &osarch_serve::ServerHandle) -> TcpStream {
    let stream = TcpStream::connect(handle.addr()).expect("connect");
    stream
        .set_read_timeout(Some(Duration::from_secs(10)))
        .expect("read timeout");
    stream
}

#[test]
fn deep_pipelined_burst_replies_in_request_order() {
    let handle = start(&ServerConfig {
        workers: 2,
        ..ServerConfig::default()
    });
    let stream = connect(&handle);
    let mut reader = BufReader::new(stream.try_clone().expect("clone"));
    let mut writer = stream;
    // One write carrying 100 requests: a mix of instant control queries
    // and offloaded data queries, so replies *finish* out of order and
    // the ticket queue has to put them back in request order.
    let mut burst = String::new();
    for id in 0..100u32 {
        if id % 3 == 0 {
            burst.push_str(&format!("{{\"op\":\"ping\",\"id\":{id}}}\n"));
        } else {
            let arch = if id % 3 == 1 { "R3000" } else { "SPARC" };
            burst.push_str(&format!(
                "{{\"op\":\"measure\",\"arch\":\"{arch}\",\"primitive\":\"trap\",\"id\":{id}}}\n"
            ));
        }
    }
    writer.write_all(burst.as_bytes()).expect("burst write");
    for id in 0..100u32 {
        let mut reply = String::new();
        reader.read_line(&mut reply).expect("reply");
        assert!(
            reply.contains(&format!("\"id\":{id},")),
            "reply {id} out of order: {reply}"
        );
        assert!(reply.contains("\"ok\":true"), "reply {id} not ok: {reply}");
    }
    handle.stop();
}

#[test]
fn oversized_line_resyncs_and_connection_stays_usable() {
    let handle = start(&ServerConfig {
        workers: 1,
        ..ServerConfig::default()
    });
    let stream = connect(&handle);
    let mut reader = BufReader::new(stream.try_clone().expect("clone"));
    let mut writer = stream;
    // An oversized request streamed in chunks, then — on the same
    // connection — a well-formed ping. The old core hung up; the framer
    // now answers the error, discards to the newline, and keeps serving.
    let huge = vec![b'x'; osarch_serve::MAX_REQUEST_BYTES + 1024];
    writer.write_all(&huge).expect("oversized body");
    writer.write_all(b"\n").expect("oversized terminator");
    writer
        .write_all(b"{\"op\":\"ping\",\"id\":7}\n")
        .expect("follow-up ping");
    let mut reply = String::new();
    reader.read_line(&mut reply).expect("error reply");
    assert!(reply.contains("request too large"), "{reply}");
    reply.clear();
    reader.read_line(&mut reply).expect("ping reply");
    assert!(reply.contains("\"id\":7,"), "{reply}");
    assert!(reply.contains("\"pong\":true"), "{reply}");
    handle.stop();
}

#[test]
fn slow_trickle_is_not_idle_but_silence_is() {
    let handle = start(&ServerConfig {
        workers: 1,
        idle_timeout: Duration::from_millis(300),
        ..ServerConfig::default()
    });
    // A client dribbling one byte every 100 ms crosses the 300 ms idle
    // budget several times over between first byte and newline — but it
    // is making progress, so the idle clock must keep resetting.
    let stream = connect(&handle);
    let mut reader = BufReader::new(stream.try_clone().expect("clone"));
    let mut writer = stream;
    let request = b"{\"op\":\"ping\",\"id\":9}\n";
    for byte in request {
        writer.write_all(&[*byte]).expect("trickle byte");
        writer.flush().expect("flush");
        std::thread::sleep(Duration::from_millis(100));
    }
    let mut reply = String::new();
    reader
        .read_line(&mut reply)
        .expect("trickled request answered");
    assert!(reply.contains("\"pong\":true"), "{reply}");

    // A truly silent connection is disconnected at the idle timeout:
    // read returns EOF well before the 10-second read timeout would.
    let mut silent = connect(&handle);
    let mut buffer = [0u8; 1];
    let outcome = silent.read(&mut buffer);
    assert_eq!(outcome.expect("clean EOF from idle disconnect"), 0);
    handle.stop();
}

#[test]
fn worker_gauge_tracks_loop_count_through_stop() {
    let handle = start(&ServerConfig {
        workers: 3,
        ..ServerConfig::default()
    });
    let stats = handle.stats();
    // The loops increment the gauge from their own threads; give them a
    // moment to come up before pinning the count.
    let deadline = std::time::Instant::now() + Duration::from_secs(5);
    while stats.workers_live() < 3 && std::time::Instant::now() < deadline {
        std::thread::sleep(Duration::from_millis(5));
    }
    assert_eq!(stats.workers_live(), 3, "one gauge unit per event loop");
    handle.stop();
    assert_eq!(stats.workers_live(), 0, "stop joins every loop");
}

#[test]
fn multiplexed_driver_holds_hundreds_of_connections_without_corruption() {
    // 300 connections crosses the mux threshold, so this exercises the
    // pipelined driver end to end against a self-hosted server — the
    // small-scale rehearsal of the 10 000-connection benchmark.
    // Generous duration: on a loaded single-core runner the 300-socket
    // connect storm alone can eat a second before the first round fires.
    let report = osarch_serve::run_loadgen(&LoadgenConfig {
        conns: 300,
        pipeline: 4,
        secs: 3.0,
        workers: 2,
        skew: true,
        ..LoadgenConfig::default()
    })
    .expect("loadgen run");
    assert_eq!(report.mode, "pipelined");
    assert_eq!(report.pipeline_depth, 4);
    assert!(report.driver_threads >= 1 && report.driver_threads <= 32);
    assert_eq!(report.resilience.corrupt, 0, "no corrupt replies");
    assert!(report.requests > 0, "the run made progress");
    let doc = osarch_core::metrics::serve_bench_json(&report);
    osarch_core::metrics::validate_serve_bench(&doc).expect("bench document validates");
}
