//! Standalone load generator for `osarch-serve`.
//!
//! ```text
//! osarch-loadgen [--addr HOST:PORT] [--conns N] [--secs S] [--skew]
//!                [--rate R] [--workers N] [--shards N] [--out PATH]
//! ```
//!
//! Without `--addr` a server is self-hosted for the run. The report is
//! written to `BENCH_serve.json` (schema `osarch-serve-bench/2`);
//! `--out -` prints it to stdout instead.

use std::process::ExitCode;

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    match osarch_serve::loadgen::cli(&args, "osarch-loadgen") {
        Ok(code) => code,
        Err(message) => {
            eprintln!("{message}");
            ExitCode::from(2)
        }
    }
}
