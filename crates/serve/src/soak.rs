//! The chaos soak harness (`osarch chaos`).
//!
//! Runs the load generator against an in-process, fault-injected server
//! — both sides drawing their faults from one deterministic
//! [`ChaosController`] schedule — and checks the resilience invariants
//! that must hold *no matter what the schedule does*:
//!
//! 1. **no client-visible corruption** — every reply that reaches a
//!    client parses as JSON and echoes its request id (`corrupt == 0`);
//! 2. **no deadlock** — every client thread reports back before the
//!    watchdog deadline; a waiter stuck on a poisoned cache flight or a
//!    worker wedged on a dead socket would trip it;
//! 3. **no leaked workers** — worker deaths respawn in place
//!    (`workers_live == workers` while serving, `0` after shutdown);
//! 4. **degraded replies are flagged** — the client never sees a stale
//!    value without `"degraded":true` (counted both sides and compared);
//! 5. **single-flight accounting stays exact** — cache
//!    `lookups == hits + misses + coalesced` even with leaders panicking
//!    mid-flight.
//!
//! The *schedule* is the reproducible artifact: planned event counts per
//! failpoint are a pure function of the seed (see
//! [`ChaosController::schedule_events`]), so two soaks with one seed
//! assert bit-identical schedules even though thread interleaving makes
//! the injected counts differ run to run.
//!
//! Telemetry soaks under the same discipline. The server runs with
//! trace sampling on (`sample`, default 1/64) and the soak seed as the
//! telemetry seed, so every sampled trace id replays from the seed: a
//! sixth invariant asserts each loop's observed ids form a subsequence
//! of that loop's pure generator stream — bit-identical across
//! same-seed runs. Mid-run the harness scrapes `--metrics-addr` (when
//! configured), validates the `osarch-metrics/1` document with the core
//! validator (a failed scrape or validation is a violation), and the
//! report carries the final snapshot plus the sampled Chrome trace for
//! artifact upload.

use crate::client::{ClientConfig, ClientCounters, ClusterClient, ResilientClient};
use crate::loadgen::key_space;
use crate::server::{ClusterConfig, Server, ServerConfig, ServerHandle};
use osarch_chaos::{ChaosConfig, ChaosController, ChaosRng, Failpoint};
use osarch_core::metrics::ResilienceCounters;
use std::io::{Read, Write};
use std::net::{SocketAddr, TcpListener, TcpStream};
use std::sync::mpsc;
use std::sync::Arc;
use std::time::{Duration, Instant};

/// Chaos soak knobs.
#[derive(Debug, Clone)]
pub struct SoakConfig {
    /// Seed for the fault schedule and every client's jitter stream.
    pub seed: u64,
    /// Fault probability per failpoint draw.
    pub rate: f64,
    /// Soak duration in seconds.
    pub secs: f64,
    /// Concurrent client connections.
    pub conns: u32,
    /// Server worker threads.
    pub workers: usize,
    /// Cache shards.
    pub shards: usize,
    /// Trace-sampling divisor (sample one request in `sample`; 0 turns
    /// tracing off). The soak seed doubles as the telemetry seed.
    pub sample: u64,
    /// Bind a metrics scrape listener here and validate a mid-run
    /// scrape against the `osarch-metrics/1` schema.
    pub metrics_addr: Option<String>,
}

impl Default for SoakConfig {
    fn default() -> SoakConfig {
        SoakConfig {
            seed: 42,
            rate: 0.2,
            secs: 3.0,
            conns: 8,
            workers: 4,
            shards: 16,
            sample: 64,
            metrics_addr: None,
        }
    }
}

/// One failpoint's planned schedule entry.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ScheduleEntry {
    /// The failpoint label (e.g. `compute/panic`).
    pub label: &'static str,
    /// Planned injections over the schedule horizon — a pure function of
    /// the seed, identical across same-seed runs.
    pub planned: u64,
}

/// Everything a soak run observed.
#[derive(Debug, Clone)]
pub struct SoakReport {
    /// The deterministic fault schedule, one entry per failpoint.
    pub schedule: Vec<ScheduleEntry>,
    /// Sum of planned injections over the horizon.
    pub schedule_total: u64,
    /// Faults actually injected this run (interleaving-dependent).
    pub injected_total: u64,
    /// Calls that completed with a verified `ok` reply.
    pub oks: u64,
    /// Calls that failed after retries (gave up or shed).
    pub failures: u64,
    /// Merged client resilience tallies.
    pub resilience: ResilienceCounters,
    /// Server-side panics contained by per-request isolation.
    pub server_panics: u64,
    /// Server-side degraded (stale-on-error) replies.
    pub server_degraded: u64,
    /// Workers respawned after an injected death.
    pub worker_respawns: u64,
    /// Cache counters: (lookups, hits, misses, coalesced, failed).
    pub cache: (u64, u64, u64, u64, u64),
    /// Span chains captured by the trace ring at shutdown.
    pub chains_sampled: u64,
    /// Per-loop trace ids of the retained chains, in completion order —
    /// each list is a subsequence of the loop's deterministic id stream.
    pub trace_ids_by_loop: Vec<Vec<u64>>,
    /// The final `osarch-metrics/1` snapshot document.
    pub metrics_snapshot: String,
    /// The sampled requests as a Chrome-trace (`osarch-trace/1`) document.
    pub chrome_trace: String,
    /// Invariant violations; empty means the soak passed.
    pub violations: Vec<String>,
}

impl SoakReport {
    /// Whether every invariant held.
    #[must_use]
    pub fn passed(&self) -> bool {
        self.violations.is_empty()
    }
}

/// Run one chaos soak and check every invariant. The report's
/// `violations` list is the verdict; I/O errors are only returned for
/// harness failures (e.g. the listener socket itself).
pub fn run(config: &SoakConfig) -> std::io::Result<SoakReport> {
    // Injected panics are expected: keep them off stderr, but let any
    // *unexpected* panic through. The guard also serializes concurrent
    // fault-injected harnesses (the hook is process-global).
    let _quiet = osarch_chaos::QuietChaosPanics::install();

    let chaos = Arc::new(ChaosController::new(ChaosConfig {
        seed: config.seed,
        rate: config.rate,
        ..ChaosConfig::default()
    }));

    // The schedule is computed before any thread starts: it depends only
    // on the seed, never on the run.
    let schedule: Vec<ScheduleEntry> = Failpoint::ALL
        .iter()
        .map(|&fp| ScheduleEntry {
            label: fp.label(),
            planned: chaos.schedule_events(fp),
        })
        .collect();
    let schedule_total = chaos.schedule_total();

    soak_chaos_run(config, &chaos, schedule, schedule_total)
}

fn soak_chaos_run(
    config: &SoakConfig,
    chaos: &Arc<ChaosController>,
    schedule: Vec<ScheduleEntry>,
    schedule_total: u64,
) -> std::io::Result<SoakReport> {
    let handle = Server::start(&ServerConfig {
        workers: config.workers,
        shards: config.shards,
        queue_depth: (config.conns as usize * 2).max(64),
        // Tight deadline: injected compute delays (20–120 ms) overrun it,
        // exercising the deadline-exceeded error path under chaos.
        deadline: Duration::from_millis(50),
        write_timeout: Duration::from_millis(500),
        chaos: Some(Arc::clone(chaos)),
        sample_every: config.sample,
        telemetry_seed: config.seed,
        metrics_addr: config.metrics_addr.clone(),
        ..ServerConfig::default()
    })?;
    let addr = handle.addr().to_string();
    let stats = handle.stats();
    let mut violations: Vec<String> = Vec::new();

    // Drive the clients. Each reports its tallies over a channel; the
    // watchdog receive below is the deadlock detector.
    let duration = Duration::from_secs_f64(config.secs.max(0.5));
    let stop_at = Instant::now() + duration;
    let (tx, rx) = mpsc::channel::<(u32, u64, u64, ClientCounters)>();
    let mut threads = Vec::new();
    for conn in 0..config.conns {
        let tx = tx.clone();
        let addr = addr.clone();
        let chaos = Arc::clone(chaos);
        let seed = config.seed ^ (u64::from(conn) + 1).wrapping_mul(0x9e37_79b9_7f4a_7c15);
        threads.push(std::thread::spawn(move || {
            let (oks, failures, counters) = soak_client(&addr, seed, stop_at, &chaos);
            // A dropped receiver means the watchdog already gave up.
            let _ = tx.send((conn, oks, failures, counters));
        }));
    }
    drop(tx);

    // Mid-run scrape: hit the metrics listener while faults are flying
    // and hold the document to the schema. The clients keep the server
    // busy on their own threads while this one sleeps to the midpoint.
    if let Some(scrape_addr) = handle.metrics_addr() {
        std::thread::sleep(duration / 2);
        match scrape_metrics_json(scrape_addr) {
            Ok(body) => {
                if let Err(reason) = osarch_core::metrics::validate_metrics_snapshot(&body) {
                    violations.push(format!("METRICS: mid-run snapshot rejected: {reason}"));
                }
            }
            Err(err) => violations.push(format!("METRICS: mid-run scrape failed: {err}")),
        }
    }

    let mut oks = 0u64;
    let mut failures = 0u64;
    let mut resilience = ResilienceCounters::default();
    let watchdog = duration + Duration::from_secs(30);
    for _ in 0..config.conns {
        match rx.recv_timeout(watchdog) {
            Ok((_, conn_oks, conn_failures, counters)) => {
                oks += conn_oks;
                failures += conn_failures;
                merge(&mut resilience, counters);
            }
            Err(_) => {
                violations.push(format!(
                    "DEADLOCK: a client thread failed to report within {watchdog:?}"
                ));
                break;
            }
        }
    }
    // Only join what finished; a deadlocked thread would block forever.
    if violations.is_empty() {
        for thread in threads {
            let _ = thread.join();
        }
    }

    // Invariant 3 (first half): every worker alive (deaths respawned).
    let live_during = stats.workers_live();
    if live_during != config.workers as u64 {
        violations.push(format!(
            "LEAKED WORKER: {live_during} of {} workers live before shutdown",
            config.workers
        ));
    }

    let (hits, misses, coalesced) = handle.cache_stats();
    let (cache_failed, cache_degraded) = handle.cache_failure_stats();
    let lookups = handle.cache_lookups();
    let server_panics = stats.panics();
    let server_degraded = stats.degraded();
    let worker_respawns = stats.worker_respawns();
    let injected_total = chaos.injected_total();

    // Telemetry exports, taken while the server is still up: the final
    // snapshot, the sampled chains as a Chrome trace, and the per-loop
    // trace-id sequences for the replay invariant.
    let metrics_snapshot = handle.metrics_snapshot_json();
    let hub = handle.telemetry();
    let chains = hub.chains();
    let chains_sampled = hub.chains_sampled();
    let chrome_trace = osarch_core::metrics::serve_chains_chrome_json(&chains);
    let mut trace_ids_by_loop: Vec<Vec<u64>> = vec![Vec::new(); config.workers];
    for chain in &chains {
        if let Some(ids) = trace_ids_by_loop.get_mut(chain.loop_index) {
            ids.push(chain.trace_id);
        }
    }
    handle.stop();

    // Invariant 1: zero client-visible corruption.
    if resilience.corrupt > 0 {
        violations.push(format!(
            "CORRUPTION: {} replies failed verification",
            resilience.corrupt
        ));
    }
    // Invariant 3 (second half): shutdown reaps every worker.
    let live_after = stats.workers_live();
    if live_after != 0 {
        violations.push(format!("LEAKED WORKER: {live_after} live after stop"));
    }
    // Invariant 4: every stale reply the client saw was flagged, and the
    // server flagged at least as many as the clients observed (some are
    // torn in flight by write faults and never reach a client).
    if resilience.degraded > server_degraded {
        violations.push(format!(
            "UNFLAGGED DEGRADATION: clients saw {} degraded replies, server served {}",
            resilience.degraded, server_degraded
        ));
    }
    if server_degraded > cache_degraded {
        violations.push(format!(
            "DEGRADED MISCOUNT: server {server_degraded} > cache {cache_degraded}"
        ));
    }
    // Invariant 5: single-flight accounting is exact.
    if lookups != hits + misses + coalesced {
        violations.push(format!(
            "SINGLE-FLIGHT ACCOUNTING: {lookups} lookups != {hits} hits + \
             {misses} misses + {coalesced} coalesced"
        ));
    }
    // Sanity: the soak must have actually exercised the system.
    if oks == 0 {
        violations.push("NO PROGRESS: zero successful requests".to_string());
    }
    // Invariant 6: telemetry replays from the seed. Every retained trace
    // id must appear, in order, in its loop's pure SplitMix64 stream —
    // the stream a same-seed rerun regenerates bit-identically.
    for (loop_index, ids) in trace_ids_by_loop.iter().enumerate() {
        if let Some(missing) = first_id_off_stream(&hub, loop_index, ids) {
            violations.push(format!(
                "TRACE REPLAY: loop {loop_index} id {missing:#018x} is not on the \
                 seeded id stream"
            ));
        }
    }
    // Mid-run snapshot was validated live; hold the final one too.
    if let Err(reason) = osarch_core::metrics::validate_metrics_snapshot(&metrics_snapshot) {
        violations.push(format!("METRICS: final snapshot rejected: {reason}"));
    }

    Ok(SoakReport {
        schedule,
        schedule_total,
        injected_total,
        oks,
        failures,
        resilience,
        server_panics,
        server_degraded,
        worker_respawns,
        cache: (lookups, hits, misses, coalesced, cache_failed),
        chains_sampled,
        trace_ids_by_loop,
        metrics_snapshot,
        chrome_trace,
        violations,
    })
}

/// Check every observed trace id against one loop's seeded id stream;
/// returns an id that falls off the stream (`None` means the replay
/// invariant holds). Membership, not order: chains complete in reply
/// order, which pipelining decouples from id-draw order. The scan
/// horizon is generous — two draws per sampled request, bounded far
/// above any soak's volume.
fn first_id_off_stream(
    hub: &osarch_telemetry::TelemetryHub,
    loop_index: usize,
    observed: &[u64],
) -> Option<u64> {
    const HORIZON: u64 = 4_000_000;
    let mut pending: std::collections::HashSet<u64> = observed.iter().copied().collect();
    if pending.is_empty() {
        return None;
    }
    let mut stream = hub.ids_for(loop_index);
    for _ in 0..HORIZON {
        pending.remove(&stream.next_id());
        if pending.is_empty() {
            return None;
        }
    }
    pending.into_iter().next()
}

/// One HTTP/1.0 GET against the scrape listener's JSON path, returning
/// the response body.
fn scrape_metrics_json(addr: SocketAddr) -> std::io::Result<String> {
    let mut stream = TcpStream::connect_timeout(&addr, Duration::from_secs(2))?;
    stream.set_read_timeout(Some(Duration::from_secs(5)))?;
    stream.write_all(b"GET /metrics/json HTTP/1.0\r\nConnection: close\r\n\r\n")?;
    let mut response = String::new();
    stream.read_to_string(&mut response)?;
    let body = response.split_once("\r\n\r\n").map_or("", |(_, body)| body);
    if body.is_empty() {
        return Err(std::io::Error::new(
            std::io::ErrorKind::UnexpectedEof,
            "scrape response carried no body",
        ));
    }
    Ok(body.to_string())
}

/// One soak client: closed-loop requests over the measure key space with
/// a fault-injecting resilient client, until the stop time.
fn soak_client(
    addr: &str,
    seed: u64,
    stop_at: Instant,
    chaos: &Arc<ChaosController>,
) -> (u64, u64, ClientCounters) {
    let mut client = ResilientClient::new(
        addr,
        ClientConfig {
            seed,
            attempts: 3,
            attempt_timeout: Duration::from_millis(800),
            backoff_base: Duration::from_micros(200),
            backoff_max: Duration::from_millis(10),
            breaker_threshold: 8,
            breaker_cooldown: 4,
            validate_replies: true,
        },
    )
    .with_chaos(Arc::clone(chaos));
    let keys = key_space();
    let mut rng = ChaosRng::new(seed ^ 0x0050_414b);
    let mut oks = 0u64;
    let mut failures = 0u64;
    let mut request_id = 0u64;
    while Instant::now() < stop_at {
        let (arch, primitive) = keys[rng.range(keys.len() as u64) as usize];
        request_id += 1;
        let id_token = request_id.to_string();
        let line = format!(
            "{{\"op\":\"measure\",\"arch\":\"{arch}\",\"primitive\":\"{}\",\"id\":{id_token}}}",
            primitive.tag()
        );
        match client.call(&line, &id_token) {
            Ok(_) => oks += 1,
            Err(_) => failures += 1,
        }
    }
    (oks, failures, client.counters())
}

fn merge(total: &mut ResilienceCounters, c: ClientCounters) {
    total.retries += c.retries;
    total.giveups += c.giveups;
    total.breaker_opens += c.breaker_opens;
    total.degraded += c.degraded;
    total.timeouts += c.timeouts;
    total.conn_resets += c.conn_resets;
    total.server_errors += c.server_errors;
    total.breaker_open += c.breaker_shed;
    total.corrupt += c.corrupt;
}

// ---------------------------------------------------------------------------
// Cluster soak: deterministic node kill + respawn
// ---------------------------------------------------------------------------

/// Cluster soak knobs (`osarch chaos --cluster`).
#[derive(Debug, Clone)]
pub struct ClusterSoakConfig {
    /// Seed for the kill schedule and the router's jitter streams. The
    /// victim choice is a pure function of `(seed, Failpoint::NodeKill)`
    /// — two runs with one seed kill the same node at the same phase
    /// boundary.
    pub seed: u64,
    /// Soak duration in seconds, split into three phases: healthy
    /// sweeps, one-node-dead sweeps, post-respawn sweeps.
    pub secs: f64,
    /// Cluster size (node processes, each an in-process server).
    pub nodes: usize,
    /// Replication factor R.
    pub replicas: usize,
    /// Gossip anti-entropy cadence in milliseconds.
    pub gossip_ms: u64,
}

impl Default for ClusterSoakConfig {
    fn default() -> ClusterSoakConfig {
        ClusterSoakConfig {
            seed: 42,
            secs: 3.0,
            nodes: 3,
            replicas: 2,
            gossip_ms: 50,
        }
    }
}

/// Everything a cluster soak observed.
#[derive(Debug, Clone)]
pub struct ClusterSoakReport {
    /// Node addresses, in start order.
    pub addrs: Vec<String>,
    /// The seeded kill decision: which node dies at the 1/3 boundary.
    pub victim: usize,
    /// Full key-space sweeps completed per phase: healthy, one node
    /// dead, after respawn.
    pub sweeps: [u64; 3],
    /// Calls answered ok across all phases.
    pub oks: u64,
    /// Calls that failed after in-call failover and retries.
    pub failures: u64,
    /// Replies that failed JSON/id verification (must be zero).
    pub corrupt: u64,
    /// Calls answered by the key's primary replica.
    pub routed_primary: u64,
    /// Calls answered by a non-primary replica (failover).
    pub failovers: u64,
    /// `not_owner` redirects the router followed.
    pub redirects_followed: u64,
    /// Whether membership converged before the kill.
    pub converged_before_kill: bool,
    /// Whether membership reconverged after the respawn, with the
    /// victim alive again at a higher incarnation.
    pub reconverged: bool,
    /// The victim's incarnation after respawn (must exceed its first).
    pub respawn_incarnation: u64,
    /// Invariant violations; empty means the soak passed.
    pub violations: Vec<String>,
}

impl ClusterSoakReport {
    /// Whether every invariant held.
    #[must_use]
    pub fn passed(&self) -> bool {
        self.violations.is_empty()
    }
}

/// Reserve `n` distinct loopback ports by binding them all at once,
/// then freeing them: every node needs every peer's dialable address
/// before any node starts.
fn reserve_cluster_addrs(n: usize) -> std::io::Result<Vec<String>> {
    let listeners: Vec<TcpListener> = (0..n)
        .map(|_| TcpListener::bind("127.0.0.1:0"))
        .collect::<std::io::Result<_>>()?;
    listeners
        .iter()
        .map(|listener| Ok(format!("127.0.0.1:{}", listener.local_addr()?.port())))
        .collect()
}

fn start_cluster_node(
    addrs: &[String],
    index: usize,
    config: &ClusterSoakConfig,
    incarnation: u64,
) -> std::io::Result<ServerHandle> {
    Server::start(&ServerConfig {
        addr: addrs[index].clone(),
        workers: 2,
        compute_threads: 2,
        cluster: Some(ClusterConfig {
            self_addr: addrs[index].clone(),
            peers: addrs.to_vec(),
            replicas: config.replicas,
            incarnation,
            gossip_interval: Duration::from_millis(config.gossip_ms.max(10)),
            ..ClusterConfig::default()
        }),
        ..ServerConfig::default()
    })
}

/// All live nodes' digests agree and carry no suspect/down rumours.
fn cluster_settled(handles: &[Option<ServerHandle>]) -> bool {
    let digests: Vec<String> = handles
        .iter()
        .flatten()
        .filter_map(ServerHandle::membership_digest)
        .collect();
    !digests.is_empty()
        && digests.windows(2).all(|pair| pair[0] == pair[1])
        && !digests[0].contains("/suspect")
        && !digests[0].contains("/down")
}

fn wait_settled(handles: &[Option<ServerHandle>], patience: Duration) -> bool {
    let deadline = Instant::now() + patience;
    while Instant::now() < deadline {
        if cluster_settled(handles) {
            return true;
        }
        std::thread::sleep(Duration::from_millis(20));
    }
    cluster_settled(handles)
}

/// The victim's incarnation as a survivor sees it, when alive.
fn victim_incarnation(handles: &[Option<ServerHandle>], victim_addr: &str) -> Option<u64> {
    let digest = handles.iter().flatten().next()?.membership_digest()?;
    digest.split(';').find_map(|entry| {
        let rest = entry.strip_prefix(victim_addr)?.strip_prefix('=')?;
        let (incarnation, status) = rest.split_once('/')?;
        (status == "alive").then(|| incarnation.parse().ok())?
    })
}

/// One full sweep of the measure key space through the routing client.
/// Returns `(oks, failures)`; every reply is JSON/id-verified.
fn cluster_sweep(client: &mut ClusterClient, request_id: &mut u64) -> (u64, u64) {
    let mut oks = 0u64;
    let mut failures = 0u64;
    for (arch, primitive) in key_space() {
        *request_id += 1;
        let id_token = request_id.to_string();
        let line = format!(
            "{{\"op\":\"measure\",\"arch\":\"{arch}\",\"primitive\":\"{}\",\"id\":{id_token}}}",
            primitive.tag()
        );
        let key = format!("measure/{arch}/{}", primitive.tag());
        match client.call(&key, &line, &id_token) {
            Ok(_) => oks += 1,
            Err(_) => failures += 1,
        }
    }
    (oks, failures)
}

/// Run one cluster soak: three nodes (by default) under a shard-routing
/// client, with one seeded whole-node kill at the 1/3 mark and a
/// respawn (incarnation + 1) at the 2/3 mark. Invariants:
///
/// 1. **availability** — with R ≥ 2 and one node dead, *every* key
///    still answers (the dead-phase sweeps must see zero failures);
/// 2. **no corruption** — every reply parses and echoes its id;
/// 3. **reconvergence** — after the respawn, every node's membership
///    digest agrees again and the victim is alive at a higher
///    incarnation (stale `down` rumours lose to the bumped epoch);
/// 4. **determinism** — the victim choice is a pure function of the
///    seed (drawn through [`Failpoint::NodeKill`]'s salted stream), so
///    a same-seed rerun kills the same node.
pub fn run_cluster(config: &ClusterSoakConfig) -> std::io::Result<ClusterSoakReport> {
    let nodes = config.nodes.max(2);
    let addrs = reserve_cluster_addrs(nodes)?;
    let mut handles: Vec<Option<ServerHandle>> = (0..nodes)
        .map(|index| start_cluster_node(&addrs, index, config, 0).map(Some))
        .collect::<std::io::Result<_>>()?;

    // The seeded kill decision, salted by the NodeKill failpoint index
    // the same way the connection-level schedule salts its draws.
    let salt = (Failpoint::NodeKill.index() as u64).wrapping_mul(0x9e37_79b9_7f4a_7c15);
    let mut rng = ChaosRng::new(config.seed ^ salt);
    let victim = rng.range(nodes as u64) as usize;

    let mut violations: Vec<String> = Vec::new();
    let converged_before_kill = wait_settled(&handles, Duration::from_secs(10));
    if !converged_before_kill {
        violations.push("CONVERGENCE: membership never settled before the kill".to_string());
    }

    let mut client = ClusterClient::new(
        &addrs,
        config.replicas,
        &ClientConfig {
            seed: config.seed,
            attempts: 3,
            attempt_timeout: Duration::from_secs(2),
            breaker_threshold: 2,
            breaker_cooldown: 4,
            validate_replies: true,
            ..ClientConfig::default()
        },
    );

    let duration = Duration::from_secs_f64(config.secs.max(1.5));
    let started = Instant::now();
    let kill_at = started + duration / 3;
    let respawn_at = started + (duration / 3) * 2;
    let mut request_id = 0u64;
    let mut oks = 0u64;
    let mut failures = 0u64;
    let mut sweeps = [0u64; 3];

    // Phase 1: healthy cluster. At least one sweep, then until the
    // kill boundary.
    loop {
        let (sweep_oks, sweep_failures) = cluster_sweep(&mut client, &mut request_id);
        oks += sweep_oks;
        failures += sweep_failures;
        sweeps[0] += 1;
        if sweep_failures > 0 {
            violations.push(format!(
                "AVAILABILITY: {sweep_failures} keys unanswered with every node up"
            ));
        }
        if Instant::now() >= kill_at {
            break;
        }
    }

    // Phase 2: kill the victim outright — its listener closes and every
    // in-flight connection drops. R-way replication must keep 100% of
    // the key space answerable.
    if let Some(handle) = handles[victim].take() {
        handle.stop();
    }
    loop {
        let (sweep_oks, sweep_failures) = cluster_sweep(&mut client, &mut request_id);
        oks += sweep_oks;
        failures += sweep_failures;
        sweeps[1] += 1;
        if sweep_failures > 0 {
            violations.push(format!(
                "AVAILABILITY: {sweep_failures} keys unanswered with node {victim} dead"
            ));
        }
        if Instant::now() >= respawn_at {
            break;
        }
    }

    // Phase 3: respawn the victim with a bumped incarnation so gossip
    // revives it over any `down` rumour, then require reconvergence.
    let respawn_incarnation = 1;
    handles[victim] = Some(start_cluster_node(
        &addrs,
        victim,
        config,
        respawn_incarnation,
    )?);
    let reconverged = wait_settled(&handles, Duration::from_secs(20))
        && victim_incarnation(&handles, &addrs[victim])
            .is_some_and(|incarnation| incarnation >= respawn_incarnation);
    if !reconverged {
        violations.push(format!(
            "RECONVERGENCE: membership did not re-agree with node {victim} \
             back at incarnation {respawn_incarnation}"
        ));
    }
    {
        let (sweep_oks, sweep_failures) = cluster_sweep(&mut client, &mut request_id);
        oks += sweep_oks;
        failures += sweep_failures;
        sweeps[2] += 1;
        if sweep_failures > 0 {
            violations.push(format!(
                "AVAILABILITY: {sweep_failures} keys unanswered after the respawn"
            ));
        }
    }

    let corrupt = client.counters().corrupt;
    if corrupt > 0 {
        violations.push(format!("CORRUPTION: {corrupt} replies failed verification"));
    }
    if oks == 0 {
        violations.push("NO PROGRESS: zero successful requests".to_string());
    }
    let routes = client.route_counters();
    for handle in handles.into_iter().flatten() {
        handle.stop();
    }

    Ok(ClusterSoakReport {
        addrs,
        victim,
        sweeps,
        oks,
        failures,
        corrupt,
        routed_primary: routes.routed_primary,
        failovers: routes.failovers,
        redirects_followed: routes.redirects_followed,
        converged_before_kill,
        reconverged,
        respawn_incarnation,
        violations,
    })
}

/// The `osarch chaos` front end: parse `args`, run the soak, print the
/// verdict. `Err` carries a one-line usage error (exit 2 at the caller).
pub fn cli(args: &[String], prog: &str) -> Result<std::process::ExitCode, String> {
    use std::process::ExitCode;
    let mut config = SoakConfig::default();
    let mut metrics_out: Option<String> = None;
    let mut trace_out: Option<String> = None;
    let mut cluster = false;
    let mut cluster_config = ClusterSoakConfig::default();
    let mut rest = args.iter();
    let parse = |flag: &str, value: Option<&String>| -> Result<String, String> {
        value
            .cloned()
            .ok_or_else(|| format!("{flag} requires a value"))
    };
    while let Some(arg) = rest.next() {
        match arg.as_str() {
            "--seed" => {
                config.seed = parse("--seed", rest.next())?
                    .parse()
                    .map_err(|_| "--seed expects an integer".to_string())?;
            }
            "--rate" => {
                config.rate = parse("--rate", rest.next())?
                    .parse()
                    .map_err(|_| "--rate expects a probability in [0,1]".to_string())?;
                if !(0.0..=1.0).contains(&config.rate) {
                    return Err("--rate expects a probability in [0,1]".to_string());
                }
            }
            "--duration" => {
                config.secs = parse("--duration", rest.next())?
                    .parse()
                    .map_err(|_| "--duration expects seconds".to_string())?;
            }
            "--conns" => {
                config.conns = parse("--conns", rest.next())?
                    .parse()
                    .map_err(|_| "--conns expects a positive integer".to_string())?;
            }
            "--workers" => {
                config.workers = parse("--workers", rest.next())?
                    .parse()
                    .map_err(|_| "--workers expects a positive integer".to_string())?;
            }
            "--sample" => {
                config.sample = parse("--sample", rest.next())?
                    .parse()
                    .map_err(|_| "--sample expects an integer divisor (0 disables)".to_string())?;
            }
            "--metrics-addr" => {
                config.metrics_addr = Some(parse("--metrics-addr", rest.next())?);
            }
            "--metrics-out" => metrics_out = Some(parse("--metrics-out", rest.next())?),
            "--trace-out" => trace_out = Some(parse("--trace-out", rest.next())?),
            "--cluster" => cluster = true,
            "--nodes" => {
                cluster_config.nodes = parse("--nodes", rest.next())?
                    .parse()
                    .map_err(|_| "--nodes expects a positive integer".to_string())?;
                if cluster_config.nodes < 2 {
                    return Err("--nodes must be at least 2".to_string());
                }
            }
            "--replicas" => {
                cluster_config.replicas = parse("--replicas", rest.next())?
                    .parse()
                    .map_err(|_| "--replicas expects a positive integer".to_string())?;
                if cluster_config.replicas == 0 {
                    return Err("--replicas must be at least 1".to_string());
                }
            }
            other => {
                return Err(format!(
                    "unknown argument {other:?}\nusage: {prog} [--seed N] [--rate P] \
                     [--duration S] [--conns N] [--workers N] [--sample N] \
                     [--metrics-addr HOST:PORT] [--metrics-out PATH] [--trace-out PATH] \
                     [--cluster [--nodes N] [--replicas R]]"
                ))
            }
        }
    }
    if config.conns == 0 {
        return Err("--conns must be at least 1".to_string());
    }
    if cluster {
        cluster_config.seed = config.seed;
        cluster_config.secs = config.secs;
        return cluster_cli(&cluster_config);
    }
    let report = match run(&config) {
        Ok(report) => report,
        Err(err) => {
            eprintln!("chaos soak failed to start: {err}");
            return Ok(ExitCode::FAILURE);
        }
    };
    println!(
        "chaos soak: seed {} rate {} for {:.1}s ({} conns, {} workers)",
        config.seed, config.rate, config.secs, config.conns, config.workers
    );
    println!(
        "schedule ({} planned events over the horizon):",
        report.schedule_total
    );
    for entry in &report.schedule {
        println!("  {:<18} {}", entry.label, entry.planned);
    }
    let r = &report.resilience;
    println!(
        "traffic: {} ok, {} failed | {} injected | retries {} giveups {} \
         breaker_opens {} degraded {}",
        report.oks,
        report.failures,
        report.injected_total,
        r.retries,
        r.giveups,
        r.breaker_opens,
        r.degraded
    );
    println!(
        "error classes: timeout={} conn_reset={} server_error={} breaker_open={}",
        r.timeouts, r.conn_resets, r.server_errors, r.breaker_open
    );
    let (lookups, hits, misses, coalesced, failed) = report.cache;
    println!(
        "server: {} panics contained, {} degraded, {} worker respawns | \
         cache {} lookups = {} hits + {} misses + {} coalesced ({} failed)",
        report.server_panics,
        report.server_degraded,
        report.worker_respawns,
        lookups,
        hits,
        misses,
        coalesced,
        failed
    );
    println!(
        "telemetry: sampling {} | {} chains sampled ({} retained) across {} loops",
        if config.sample == 0 {
            "off".to_string()
        } else {
            format!("1/{}", config.sample)
        },
        report.chains_sampled,
        report.trace_ids_by_loop.iter().map(Vec::len).sum::<usize>(),
        report.trace_ids_by_loop.len()
    );
    if let Some(path) = &metrics_out {
        if let Err(err) = std::fs::write(path, &report.metrics_snapshot) {
            eprintln!("cannot write {path}: {err}");
            return Ok(ExitCode::FAILURE);
        }
        println!("wrote {path} (osarch-metrics/1 snapshot)");
    }
    if let Some(path) = &trace_out {
        if let Err(err) = std::fs::write(path, &report.chrome_trace) {
            eprintln!("cannot write {path}: {err}");
            return Ok(ExitCode::FAILURE);
        }
        println!("wrote {path} (osarch-trace/1 Chrome trace)");
    }
    if report.passed() {
        println!("PASS: all invariants held");
        Ok(ExitCode::SUCCESS)
    } else {
        for violation in &report.violations {
            eprintln!("FAIL: {violation}");
        }
        Ok(ExitCode::FAILURE)
    }
}

/// The `osarch chaos --cluster` verdict printer.
fn cluster_cli(config: &ClusterSoakConfig) -> Result<std::process::ExitCode, String> {
    use std::process::ExitCode;
    let report = match run_cluster(config) {
        Ok(report) => report,
        Err(err) => {
            eprintln!("cluster soak failed to start: {err}");
            return Ok(ExitCode::FAILURE);
        }
    };
    println!(
        "cluster soak: seed {} for {:.1}s ({} nodes, R={}, gossip {}ms)",
        config.seed, config.secs, config.nodes, config.replicas, config.gossip_ms
    );
    println!(
        "kill schedule (node/kill, seeded): victim node {} ({}) dies at t+1/3, \
         respawns at t+2/3 with incarnation {}",
        report.victim, report.addrs[report.victim], report.respawn_incarnation
    );
    println!(
        "traffic: {} ok, {} failed, {} corrupt | sweeps healthy={} dead={} respawned={}",
        report.oks,
        report.failures,
        report.corrupt,
        report.sweeps[0],
        report.sweeps[1],
        report.sweeps[2]
    );
    println!(
        "routing: primary={} failovers={} redirects_followed={}",
        report.routed_primary, report.failovers, report.redirects_followed
    );
    println!(
        "membership: converged_before_kill={} reconverged_after_respawn={}",
        report.converged_before_kill, report.reconverged
    );
    if report.passed() {
        println!("PASS: all invariants held");
        Ok(ExitCode::SUCCESS)
    } else {
        for violation in &report.violations {
            eprintln!("FAIL: {violation}");
        }
        Ok(ExitCode::FAILURE)
    }
}
