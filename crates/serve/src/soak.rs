//! The chaos soak harness (`osarch chaos`).
//!
//! Runs the load generator against an in-process, fault-injected server
//! — both sides drawing their faults from one deterministic
//! [`ChaosController`] schedule — and checks the resilience invariants
//! that must hold *no matter what the schedule does*:
//!
//! 1. **no client-visible corruption** — every reply that reaches a
//!    client parses as JSON and echoes its request id (`corrupt == 0`);
//! 2. **no deadlock** — every client thread reports back before the
//!    watchdog deadline; a waiter stuck on a poisoned cache flight or a
//!    worker wedged on a dead socket would trip it;
//! 3. **no leaked workers** — worker deaths respawn in place
//!    (`workers_live == workers` while serving, `0` after shutdown);
//! 4. **degraded replies are flagged** — the client never sees a stale
//!    value without `"degraded":true` (counted both sides and compared);
//! 5. **single-flight accounting stays exact** — cache
//!    `lookups == hits + misses + coalesced` even with leaders panicking
//!    mid-flight.
//!
//! The *schedule* is the reproducible artifact: planned event counts per
//! failpoint are a pure function of the seed (see
//! [`ChaosController::schedule_events`]), so two soaks with one seed
//! assert bit-identical schedules even though thread interleaving makes
//! the injected counts differ run to run.
//!
//! Telemetry soaks under the same discipline. The server runs with
//! trace sampling on (`sample`, default 1/64) and the soak seed as the
//! telemetry seed, so every sampled trace id replays from the seed: a
//! sixth invariant asserts each loop's observed ids form a subsequence
//! of that loop's pure generator stream — bit-identical across
//! same-seed runs. Mid-run the harness scrapes `--metrics-addr` (when
//! configured), validates the `osarch-metrics/1` document with the core
//! validator (a failed scrape or validation is a violation), and the
//! report carries the final snapshot plus the sampled Chrome trace for
//! artifact upload.

use crate::client::{ClientConfig, ClientCounters, ClusterClient, ResilientClient};
use crate::loadgen::key_space;
use crate::protocol::Query;
use crate::registry::SpecSnapshot;
use crate::server::{ClusterConfig, Server, ServerConfig, ServerHandle};
use osarch_chaos::{ChaosConfig, ChaosController, ChaosRng, Failpoint};
use osarch_core::metrics::ResilienceCounters;
use std::collections::{BTreeMap, HashMap};
use std::io::{BufRead, BufReader, Read, Write};
use std::net::{SocketAddr, TcpListener, TcpStream};
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::mpsc;
use std::sync::Arc;
use std::time::{Duration, Instant};

/// Chaos soak knobs.
#[derive(Debug, Clone)]
pub struct SoakConfig {
    /// Seed for the fault schedule and every client's jitter stream.
    pub seed: u64,
    /// Fault probability per failpoint draw.
    pub rate: f64,
    /// Soak duration in seconds.
    pub secs: f64,
    /// Concurrent client connections.
    pub conns: u32,
    /// Server worker threads.
    pub workers: usize,
    /// Cache shards.
    pub shards: usize,
    /// Trace-sampling divisor (sample one request in `sample`; 0 turns
    /// tracing off). The soak seed doubles as the telemetry seed.
    pub sample: u64,
    /// Bind a metrics scrape listener here and validate a mid-run
    /// scrape against the `osarch-metrics/1` schema.
    pub metrics_addr: Option<String>,
}

impl Default for SoakConfig {
    fn default() -> SoakConfig {
        SoakConfig {
            seed: 42,
            rate: 0.2,
            secs: 3.0,
            conns: 8,
            workers: 4,
            shards: 16,
            sample: 64,
            metrics_addr: None,
        }
    }
}

/// One failpoint's planned schedule entry.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ScheduleEntry {
    /// The failpoint label (e.g. `compute/panic`).
    pub label: &'static str,
    /// Planned injections over the schedule horizon — a pure function of
    /// the seed, identical across same-seed runs.
    pub planned: u64,
}

/// Everything a soak run observed.
#[derive(Debug, Clone)]
pub struct SoakReport {
    /// The deterministic fault schedule, one entry per failpoint.
    pub schedule: Vec<ScheduleEntry>,
    /// Sum of planned injections over the horizon.
    pub schedule_total: u64,
    /// Faults actually injected this run (interleaving-dependent).
    pub injected_total: u64,
    /// Calls that completed with a verified `ok` reply.
    pub oks: u64,
    /// Calls that failed after retries (gave up or shed).
    pub failures: u64,
    /// Merged client resilience tallies.
    pub resilience: ResilienceCounters,
    /// Server-side panics contained by per-request isolation.
    pub server_panics: u64,
    /// Server-side degraded (stale-on-error) replies.
    pub server_degraded: u64,
    /// Workers respawned after an injected death.
    pub worker_respawns: u64,
    /// Cache counters: (lookups, hits, misses, coalesced, failed).
    pub cache: (u64, u64, u64, u64, u64),
    /// Span chains captured by the trace ring at shutdown.
    pub chains_sampled: u64,
    /// Per-loop trace ids of the retained chains, in completion order —
    /// each list is a subsequence of the loop's deterministic id stream.
    pub trace_ids_by_loop: Vec<Vec<u64>>,
    /// The final `osarch-metrics/1` snapshot document.
    pub metrics_snapshot: String,
    /// The sampled requests as a Chrome-trace (`osarch-trace/1`) document.
    pub chrome_trace: String,
    /// Invariant violations; empty means the soak passed.
    pub violations: Vec<String>,
}

impl SoakReport {
    /// Whether every invariant held.
    #[must_use]
    pub fn passed(&self) -> bool {
        self.violations.is_empty()
    }
}

/// Run one chaos soak and check every invariant. The report's
/// `violations` list is the verdict; I/O errors are only returned for
/// harness failures (e.g. the listener socket itself).
pub fn run(config: &SoakConfig) -> std::io::Result<SoakReport> {
    // Injected panics are expected: keep them off stderr, but let any
    // *unexpected* panic through. The guard also serializes concurrent
    // fault-injected harnesses (the hook is process-global).
    let _quiet = osarch_chaos::QuietChaosPanics::install();

    let chaos = Arc::new(ChaosController::new(ChaosConfig {
        seed: config.seed,
        rate: config.rate,
        ..ChaosConfig::default()
    }));

    // The schedule is computed before any thread starts: it depends only
    // on the seed, never on the run.
    let schedule: Vec<ScheduleEntry> = Failpoint::ALL
        .iter()
        .map(|&fp| ScheduleEntry {
            label: fp.label(),
            planned: chaos.schedule_events(fp),
        })
        .collect();
    let schedule_total = chaos.schedule_total();

    soak_chaos_run(config, &chaos, schedule, schedule_total)
}

fn soak_chaos_run(
    config: &SoakConfig,
    chaos: &Arc<ChaosController>,
    schedule: Vec<ScheduleEntry>,
    schedule_total: u64,
) -> std::io::Result<SoakReport> {
    let handle = Server::start(&ServerConfig {
        workers: config.workers,
        shards: config.shards,
        queue_depth: (config.conns as usize * 2).max(64),
        // Tight deadline: injected compute delays (20–120 ms) overrun it,
        // exercising the deadline-exceeded error path under chaos.
        deadline: Duration::from_millis(50),
        write_timeout: Duration::from_millis(500),
        chaos: Some(Arc::clone(chaos)),
        sample_every: config.sample,
        telemetry_seed: config.seed,
        metrics_addr: config.metrics_addr.clone(),
        ..ServerConfig::default()
    })?;
    let addr = handle.addr().to_string();
    let stats = handle.stats();
    let mut violations: Vec<String> = Vec::new();

    // Drive the clients. Each reports its tallies over a channel; the
    // watchdog receive below is the deadlock detector.
    let duration = Duration::from_secs_f64(config.secs.max(0.5));
    let stop_at = Instant::now() + duration;
    let (tx, rx) = mpsc::channel::<(u32, u64, u64, ClientCounters)>();
    let mut threads = Vec::new();
    for conn in 0..config.conns {
        let tx = tx.clone();
        let addr = addr.clone();
        let chaos = Arc::clone(chaos);
        let seed = config.seed ^ (u64::from(conn) + 1).wrapping_mul(0x9e37_79b9_7f4a_7c15);
        threads.push(std::thread::spawn(move || {
            let (oks, failures, counters) = soak_client(&addr, seed, stop_at, &chaos);
            // A dropped receiver means the watchdog already gave up.
            let _ = tx.send((conn, oks, failures, counters));
        }));
    }
    drop(tx);

    // Mid-run scrape: hit the metrics listener while faults are flying
    // and hold the document to the schema. The clients keep the server
    // busy on their own threads while this one sleeps to the midpoint.
    if let Some(scrape_addr) = handle.metrics_addr() {
        std::thread::sleep(duration / 2);
        match scrape_metrics_json(scrape_addr) {
            Ok(body) => {
                if let Err(reason) = osarch_core::metrics::validate_metrics_snapshot(&body) {
                    violations.push(format!("METRICS: mid-run snapshot rejected: {reason}"));
                }
            }
            Err(err) => violations.push(format!("METRICS: mid-run scrape failed: {err}")),
        }
    }

    let mut oks = 0u64;
    let mut failures = 0u64;
    let mut resilience = ResilienceCounters::default();
    let watchdog = duration + Duration::from_secs(30);
    for _ in 0..config.conns {
        match rx.recv_timeout(watchdog) {
            Ok((_, conn_oks, conn_failures, counters)) => {
                oks += conn_oks;
                failures += conn_failures;
                merge(&mut resilience, counters);
            }
            Err(_) => {
                violations.push(format!(
                    "DEADLOCK: a client thread failed to report within {watchdog:?}"
                ));
                break;
            }
        }
    }
    // Only join what finished; a deadlocked thread would block forever.
    if violations.is_empty() {
        for thread in threads {
            let _ = thread.join();
        }
    }

    // Invariant 3 (first half): every worker alive (deaths respawned).
    let live_during = stats.workers_live();
    if live_during != config.workers as u64 {
        violations.push(format!(
            "LEAKED WORKER: {live_during} of {} workers live before shutdown",
            config.workers
        ));
    }

    let (hits, misses, coalesced) = handle.cache_stats();
    let (cache_failed, cache_degraded) = handle.cache_failure_stats();
    let lookups = handle.cache_lookups();
    let server_panics = stats.panics();
    let server_degraded = stats.degraded();
    let worker_respawns = stats.worker_respawns();
    let injected_total = chaos.injected_total();

    // Telemetry exports, taken while the server is still up: the final
    // snapshot, the sampled chains as a Chrome trace, and the per-loop
    // trace-id sequences for the replay invariant.
    let metrics_snapshot = handle.metrics_snapshot_json();
    let hub = handle.telemetry();
    let chains = hub.chains();
    let chains_sampled = hub.chains_sampled();
    let chrome_trace = osarch_core::metrics::serve_chains_chrome_json(&chains);
    let mut trace_ids_by_loop: Vec<Vec<u64>> = vec![Vec::new(); config.workers];
    for chain in &chains {
        if let Some(ids) = trace_ids_by_loop.get_mut(chain.loop_index) {
            ids.push(chain.trace_id);
        }
    }
    handle.stop();

    // Invariant 1: zero client-visible corruption.
    if resilience.corrupt > 0 {
        violations.push(format!(
            "CORRUPTION: {} replies failed verification",
            resilience.corrupt
        ));
    }
    // Invariant 3 (second half): shutdown reaps every worker.
    let live_after = stats.workers_live();
    if live_after != 0 {
        violations.push(format!("LEAKED WORKER: {live_after} live after stop"));
    }
    // Invariant 4: every stale reply the client saw was flagged, and the
    // server flagged at least as many as the clients observed (some are
    // torn in flight by write faults and never reach a client).
    if resilience.degraded > server_degraded {
        violations.push(format!(
            "UNFLAGGED DEGRADATION: clients saw {} degraded replies, server served {}",
            resilience.degraded, server_degraded
        ));
    }
    if server_degraded > cache_degraded {
        violations.push(format!(
            "DEGRADED MISCOUNT: server {server_degraded} > cache {cache_degraded}"
        ));
    }
    // Invariant 5: single-flight accounting is exact.
    if lookups != hits + misses + coalesced {
        violations.push(format!(
            "SINGLE-FLIGHT ACCOUNTING: {lookups} lookups != {hits} hits + \
             {misses} misses + {coalesced} coalesced"
        ));
    }
    // Sanity: the soak must have actually exercised the system.
    if oks == 0 {
        violations.push("NO PROGRESS: zero successful requests".to_string());
    }
    // Invariant 6: telemetry replays from the seed. Every retained trace
    // id must appear, in order, in its loop's pure SplitMix64 stream —
    // the stream a same-seed rerun regenerates bit-identically.
    for (loop_index, ids) in trace_ids_by_loop.iter().enumerate() {
        if let Some(missing) = first_id_off_stream(&hub, loop_index, ids) {
            violations.push(format!(
                "TRACE REPLAY: loop {loop_index} id {missing:#018x} is not on the \
                 seeded id stream"
            ));
        }
    }
    // Mid-run snapshot was validated live; hold the final one too.
    if let Err(reason) = osarch_core::metrics::validate_metrics_snapshot(&metrics_snapshot) {
        violations.push(format!("METRICS: final snapshot rejected: {reason}"));
    }

    Ok(SoakReport {
        schedule,
        schedule_total,
        injected_total,
        oks,
        failures,
        resilience,
        server_panics,
        server_degraded,
        worker_respawns,
        cache: (lookups, hits, misses, coalesced, cache_failed),
        chains_sampled,
        trace_ids_by_loop,
        metrics_snapshot,
        chrome_trace,
        violations,
    })
}

/// Check every observed trace id against one loop's seeded id stream;
/// returns an id that falls off the stream (`None` means the replay
/// invariant holds). Membership, not order: chains complete in reply
/// order, which pipelining decouples from id-draw order. The scan
/// horizon is generous — two draws per sampled request, bounded far
/// above any soak's volume.
fn first_id_off_stream(
    hub: &osarch_telemetry::TelemetryHub,
    loop_index: usize,
    observed: &[u64],
) -> Option<u64> {
    const HORIZON: u64 = 4_000_000;
    let mut pending: std::collections::HashSet<u64> = observed.iter().copied().collect();
    if pending.is_empty() {
        return None;
    }
    let mut stream = hub.ids_for(loop_index);
    for _ in 0..HORIZON {
        pending.remove(&stream.next_id());
        if pending.is_empty() {
            return None;
        }
    }
    pending.into_iter().next()
}

/// One HTTP/1.0 GET against the scrape listener's JSON path, returning
/// the response body.
fn scrape_metrics_json(addr: SocketAddr) -> std::io::Result<String> {
    let mut stream = TcpStream::connect_timeout(&addr, Duration::from_secs(2))?;
    stream.set_read_timeout(Some(Duration::from_secs(5)))?;
    stream.write_all(b"GET /metrics/json HTTP/1.0\r\nConnection: close\r\n\r\n")?;
    let mut response = String::new();
    stream.read_to_string(&mut response)?;
    let body = response.split_once("\r\n\r\n").map_or("", |(_, body)| body);
    if body.is_empty() {
        return Err(std::io::Error::new(
            std::io::ErrorKind::UnexpectedEof,
            "scrape response carried no body",
        ));
    }
    Ok(body.to_string())
}

/// One soak client: closed-loop requests over the measure key space with
/// a fault-injecting resilient client, until the stop time.
fn soak_client(
    addr: &str,
    seed: u64,
    stop_at: Instant,
    chaos: &Arc<ChaosController>,
) -> (u64, u64, ClientCounters) {
    let mut client = ResilientClient::new(
        addr,
        ClientConfig {
            seed,
            attempts: 3,
            attempt_timeout: Duration::from_millis(800),
            backoff_base: Duration::from_micros(200),
            backoff_max: Duration::from_millis(10),
            breaker_threshold: 8,
            breaker_cooldown: 4,
            validate_replies: true,
        },
    )
    .with_chaos(Arc::clone(chaos));
    let keys = key_space();
    let mut rng = ChaosRng::new(seed ^ 0x0050_414b);
    let mut oks = 0u64;
    let mut failures = 0u64;
    let mut request_id = 0u64;
    while Instant::now() < stop_at {
        let (arch, primitive) = keys[rng.range(keys.len() as u64) as usize];
        request_id += 1;
        let id_token = request_id.to_string();
        let line = format!(
            "{{\"op\":\"measure\",\"arch\":\"{arch}\",\"primitive\":\"{}\",\"id\":{id_token}}}",
            primitive.tag()
        );
        match client.call(&line, &id_token) {
            Ok(_) => oks += 1,
            Err(_) => failures += 1,
        }
    }
    (oks, failures, client.counters())
}

fn merge(total: &mut ResilienceCounters, c: ClientCounters) {
    total.retries += c.retries;
    total.giveups += c.giveups;
    total.breaker_opens += c.breaker_opens;
    total.degraded += c.degraded;
    total.timeouts += c.timeouts;
    total.conn_resets += c.conn_resets;
    total.server_errors += c.server_errors;
    total.breaker_open += c.breaker_shed;
    total.corrupt += c.corrupt;
}

// ---------------------------------------------------------------------------
// Cluster soak: deterministic node kill + respawn
// ---------------------------------------------------------------------------

/// Cluster soak knobs (`osarch chaos --cluster`).
#[derive(Debug, Clone)]
pub struct ClusterSoakConfig {
    /// Seed for the kill schedule and the router's jitter streams. The
    /// victim choice is a pure function of `(seed, Failpoint::NodeKill)`
    /// — two runs with one seed kill the same node at the same phase
    /// boundary.
    pub seed: u64,
    /// Soak duration in seconds, split into three phases: healthy
    /// sweeps, one-node-dead sweeps, post-respawn sweeps.
    pub secs: f64,
    /// Cluster size (node processes, each an in-process server).
    pub nodes: usize,
    /// Replication factor R.
    pub replicas: usize,
    /// Gossip anti-entropy cadence in milliseconds.
    pub gossip_ms: u64,
}

impl Default for ClusterSoakConfig {
    fn default() -> ClusterSoakConfig {
        ClusterSoakConfig {
            seed: 42,
            secs: 3.0,
            nodes: 3,
            replicas: 2,
            gossip_ms: 50,
        }
    }
}

/// Everything a cluster soak observed.
#[derive(Debug, Clone)]
pub struct ClusterSoakReport {
    /// Node addresses, in start order.
    pub addrs: Vec<String>,
    /// The seeded kill decision: which node dies at the 1/3 boundary.
    pub victim: usize,
    /// Full key-space sweeps completed per phase: healthy, one node
    /// dead, after respawn.
    pub sweeps: [u64; 3],
    /// Calls answered ok across all phases.
    pub oks: u64,
    /// Calls that failed after in-call failover and retries.
    pub failures: u64,
    /// Replies that failed JSON/id verification (must be zero).
    pub corrupt: u64,
    /// Calls answered by the key's primary replica.
    pub routed_primary: u64,
    /// Calls answered by a non-primary replica (failover).
    pub failovers: u64,
    /// `not_owner` redirects the router followed.
    pub redirects_followed: u64,
    /// Whether membership converged before the kill.
    pub converged_before_kill: bool,
    /// Whether membership reconverged after the respawn, with the
    /// victim alive again at a higher incarnation.
    pub reconverged: bool,
    /// The victim's incarnation after respawn (must exceed its first).
    pub respawn_incarnation: u64,
    /// Invariant violations; empty means the soak passed.
    pub violations: Vec<String>,
}

impl ClusterSoakReport {
    /// Whether every invariant held.
    #[must_use]
    pub fn passed(&self) -> bool {
        self.violations.is_empty()
    }
}

/// Reserve `n` distinct loopback ports by binding them all at once,
/// then freeing them: every node needs every peer's dialable address
/// before any node starts.
fn reserve_cluster_addrs(n: usize) -> std::io::Result<Vec<String>> {
    let listeners: Vec<TcpListener> = (0..n)
        .map(|_| TcpListener::bind("127.0.0.1:0"))
        .collect::<std::io::Result<_>>()?;
    listeners
        .iter()
        .map(|listener| Ok(format!("127.0.0.1:{}", listener.local_addr()?.port())))
        .collect()
}

fn start_cluster_node(
    addrs: &[String],
    index: usize,
    config: &ClusterSoakConfig,
    incarnation: u64,
) -> std::io::Result<ServerHandle> {
    Server::start(&ServerConfig {
        addr: addrs[index].clone(),
        workers: 2,
        compute_threads: 2,
        cluster: Some(ClusterConfig {
            self_addr: addrs[index].clone(),
            peers: addrs.to_vec(),
            replicas: config.replicas,
            incarnation,
            gossip_interval: Duration::from_millis(config.gossip_ms.max(10)),
            ..ClusterConfig::default()
        }),
        ..ServerConfig::default()
    })
}

/// All live nodes' digests agree and carry no suspect/down rumours.
fn cluster_settled(handles: &[Option<ServerHandle>]) -> bool {
    let digests: Vec<String> = handles
        .iter()
        .flatten()
        .filter_map(ServerHandle::membership_digest)
        .collect();
    !digests.is_empty()
        && digests.windows(2).all(|pair| pair[0] == pair[1])
        && !digests[0].contains("/suspect")
        && !digests[0].contains("/down")
}

fn wait_settled(handles: &[Option<ServerHandle>], patience: Duration) -> bool {
    let deadline = Instant::now() + patience;
    while Instant::now() < deadline {
        if cluster_settled(handles) {
            return true;
        }
        std::thread::sleep(Duration::from_millis(20));
    }
    cluster_settled(handles)
}

/// The victim's incarnation as a survivor sees it, when alive.
fn victim_incarnation(handles: &[Option<ServerHandle>], victim_addr: &str) -> Option<u64> {
    let digest = handles.iter().flatten().next()?.membership_digest()?;
    digest.split(';').find_map(|entry| {
        let rest = entry.strip_prefix(victim_addr)?.strip_prefix('=')?;
        let (incarnation, status) = rest.split_once('/')?;
        (status == "alive").then(|| incarnation.parse().ok())?
    })
}

/// One full sweep of the measure key space through the routing client.
/// Returns `(oks, failures)`; every reply is JSON/id-verified.
fn cluster_sweep(client: &mut ClusterClient, request_id: &mut u64) -> (u64, u64) {
    let mut oks = 0u64;
    let mut failures = 0u64;
    for (arch, primitive) in key_space() {
        *request_id += 1;
        let id_token = request_id.to_string();
        let line = format!(
            "{{\"op\":\"measure\",\"arch\":\"{arch}\",\"primitive\":\"{}\",\"id\":{id_token}}}",
            primitive.tag()
        );
        let key = format!("measure/{arch}/{}", primitive.tag());
        match client.call(&key, &line, &id_token) {
            Ok(_) => oks += 1,
            Err(_) => failures += 1,
        }
    }
    (oks, failures)
}

/// Run one cluster soak: three nodes (by default) under a shard-routing
/// client, with one seeded whole-node kill at the 1/3 mark and a
/// respawn (incarnation + 1) at the 2/3 mark. Invariants:
///
/// 1. **availability** — with R ≥ 2 and one node dead, *every* key
///    still answers (the dead-phase sweeps must see zero failures);
/// 2. **no corruption** — every reply parses and echoes its id;
/// 3. **reconvergence** — after the respawn, every node's membership
///    digest agrees again and the victim is alive at a higher
///    incarnation (stale `down` rumours lose to the bumped epoch);
/// 4. **determinism** — the victim choice is a pure function of the
///    seed (drawn through [`Failpoint::NodeKill`]'s salted stream), so
///    a same-seed rerun kills the same node.
pub fn run_cluster(config: &ClusterSoakConfig) -> std::io::Result<ClusterSoakReport> {
    let nodes = config.nodes.max(2);
    let addrs = reserve_cluster_addrs(nodes)?;
    let mut handles: Vec<Option<ServerHandle>> = (0..nodes)
        .map(|index| start_cluster_node(&addrs, index, config, 0).map(Some))
        .collect::<std::io::Result<_>>()?;

    // The seeded kill decision, salted by the NodeKill failpoint index
    // the same way the connection-level schedule salts its draws.
    let salt = (Failpoint::NodeKill.index() as u64).wrapping_mul(0x9e37_79b9_7f4a_7c15);
    let mut rng = ChaosRng::new(config.seed ^ salt);
    let victim = rng.range(nodes as u64) as usize;

    let mut violations: Vec<String> = Vec::new();
    let converged_before_kill = wait_settled(&handles, Duration::from_secs(10));
    if !converged_before_kill {
        violations.push("CONVERGENCE: membership never settled before the kill".to_string());
    }

    let mut client = ClusterClient::new(
        &addrs,
        config.replicas,
        &ClientConfig {
            seed: config.seed,
            attempts: 3,
            attempt_timeout: Duration::from_secs(2),
            breaker_threshold: 2,
            breaker_cooldown: 4,
            validate_replies: true,
            ..ClientConfig::default()
        },
    );

    let duration = Duration::from_secs_f64(config.secs.max(1.5));
    let started = Instant::now();
    let kill_at = started + duration / 3;
    let respawn_at = started + (duration / 3) * 2;
    let mut request_id = 0u64;
    let mut oks = 0u64;
    let mut failures = 0u64;
    let mut sweeps = [0u64; 3];

    // Phase 1: healthy cluster. At least one sweep, then until the
    // kill boundary.
    loop {
        let (sweep_oks, sweep_failures) = cluster_sweep(&mut client, &mut request_id);
        oks += sweep_oks;
        failures += sweep_failures;
        sweeps[0] += 1;
        if sweep_failures > 0 {
            violations.push(format!(
                "AVAILABILITY: {sweep_failures} keys unanswered with every node up"
            ));
        }
        if Instant::now() >= kill_at {
            break;
        }
    }

    // Phase 2: kill the victim outright — its listener closes and every
    // in-flight connection drops. R-way replication must keep 100% of
    // the key space answerable.
    if let Some(handle) = handles[victim].take() {
        handle.stop();
    }
    loop {
        let (sweep_oks, sweep_failures) = cluster_sweep(&mut client, &mut request_id);
        oks += sweep_oks;
        failures += sweep_failures;
        sweeps[1] += 1;
        if sweep_failures > 0 {
            violations.push(format!(
                "AVAILABILITY: {sweep_failures} keys unanswered with node {victim} dead"
            ));
        }
        if Instant::now() >= respawn_at {
            break;
        }
    }

    // Phase 3: respawn the victim with a bumped incarnation so gossip
    // revives it over any `down` rumour, then require reconvergence.
    let respawn_incarnation = 1;
    handles[victim] = Some(start_cluster_node(
        &addrs,
        victim,
        config,
        respawn_incarnation,
    )?);
    let reconverged = wait_settled(&handles, Duration::from_secs(20))
        && victim_incarnation(&handles, &addrs[victim])
            .is_some_and(|incarnation| incarnation >= respawn_incarnation);
    if !reconverged {
        violations.push(format!(
            "RECONVERGENCE: membership did not re-agree with node {victim} \
             back at incarnation {respawn_incarnation}"
        ));
    }
    {
        let (sweep_oks, sweep_failures) = cluster_sweep(&mut client, &mut request_id);
        oks += sweep_oks;
        failures += sweep_failures;
        sweeps[2] += 1;
        if sweep_failures > 0 {
            violations.push(format!(
                "AVAILABILITY: {sweep_failures} keys unanswered after the respawn"
            ));
        }
    }

    let corrupt = client.counters().corrupt;
    if corrupt > 0 {
        violations.push(format!("CORRUPTION: {corrupt} replies failed verification"));
    }
    if oks == 0 {
        violations.push("NO PROGRESS: zero successful requests".to_string());
    }
    let routes = client.route_counters();
    for handle in handles.into_iter().flatten() {
        handle.stop();
    }

    Ok(ClusterSoakReport {
        addrs,
        victim,
        sweeps,
        oks,
        failures,
        corrupt,
        routed_primary: routes.routed_primary,
        failovers: routes.failovers,
        redirects_followed: routes.redirects_followed,
        converged_before_kill,
        reconverged,
        respawn_incarnation,
        violations,
    })
}

// ---------------------------------------------------------------------------
// Swap soak: repeated live spec swaps under full fault injection
// ---------------------------------------------------------------------------

/// The admin token every swap soak runs with (the soak owns both ends
/// of the connection, so the value only has to be non-empty).
const SWAP_TOKEN: &str = "swap-soak-admin-token";

/// Per-exchange timeout for raw admin/verifier connections.
const SWAP_IO_TIMEOUT: Duration = Duration::from_secs(3);

/// Swap soak knobs (`osarch chaos --swap`).
#[derive(Debug, Clone)]
pub struct SwapSoakConfig {
    /// Seed for the fault schedule; the CorruptSpec decision stream —
    /// which activations roll back — is a pure function of it.
    pub seed: u64,
    /// Fault probability per failpoint draw. Kept lower than the plain
    /// soak's default: the swap soak demands *zero* dropped requests,
    /// so every injected fault must be absorbable by patient retries.
    pub rate: f64,
    /// Live activations to drive through the admin plane.
    pub swaps: u64,
    /// Background load connections (builtin measure traffic).
    pub conns: u32,
    /// Server worker threads.
    pub workers: usize,
}

impl Default for SwapSoakConfig {
    fn default() -> SwapSoakConfig {
        SwapSoakConfig {
            seed: 42,
            rate: 0.08,
            swaps: 24,
            conns: 4,
            workers: 4,
        }
    }
}

/// Everything a swap soak observed.
#[derive(Debug, Clone)]
pub struct SwapSoakReport {
    /// Activations driven through the admin plane.
    pub swaps_attempted: u64,
    /// Activations that committed and survived the probe.
    pub swaps_committed: u64,
    /// Activations the injected `admin/corrupt-spec` fault rolled back.
    pub auto_rollbacks: u64,
    /// Explicit `spec-rollback` admin calls issued by the soak.
    pub explicit_rollbacks: u64,
    /// Event loops the `swap/mid-swap-loop-death` fault killed (all
    /// must have respawned with the committed epoch intact).
    pub loop_deaths: u64,
    /// The registry epoch after the final swap.
    pub final_epoch: u64,
    /// The registry digest after the final swap.
    pub final_digest: String,
    /// Background load calls answered ok.
    pub oks: u64,
    /// Background load calls dropped after retries — must be zero.
    pub failures: u64,
    /// Replies failing JSON/id verification — must be zero.
    pub corrupt: u64,
    /// Epoch-tagged `measure spec` samples captured by the verifier.
    pub samples: u64,
    /// Of those, degraded (stale-last-good) replies — still checked
    /// byte-identical to their epoch's emitter.
    pub degraded_samples: u64,
    /// Observed per-activation rollback outcomes, in order — must equal
    /// the pure seeded CorruptSpec decision stream bit for bit.
    pub rollback_stream: Vec<bool>,
    /// One line per admin action, for artifact upload.
    pub transcript: Vec<String>,
    /// Invariant violations; empty means the soak passed.
    pub violations: Vec<String>,
}

impl SwapSoakReport {
    /// Whether every invariant held.
    #[must_use]
    pub fn passed(&self) -> bool {
        self.violations.is_empty()
    }
}

/// The swap-soak candidate document for activation `index`: the first
/// builtin re-based with a distinct clock, named `hot`. Distinct clocks
/// give every activation distinct content (and so a distinct digest).
fn swap_doc(index: u64) -> String {
    let mut spec = osarch_cpu::Arch::all()[0].spec();
    spec.clock_mhz = 20.0 + index as f64;
    spec.to_json("hot")
}

/// One request/reply exchange over a fresh connection. Admin traffic is
/// rare; a fresh dial per op keeps lost-reply recovery simple (there is
/// never a half-consumed read buffer to reason about).
fn exchange_once(addr: SocketAddr, line: &str, timeout: Duration) -> std::io::Result<String> {
    let stream = TcpStream::connect_timeout(&addr, timeout)?;
    stream.set_read_timeout(Some(timeout))?;
    stream.set_nodelay(true).ok();
    let mut reader = BufReader::new(stream);
    reader.get_mut().write_all(line.as_bytes())?;
    reader.get_mut().write_all(b"\n")?;
    let mut reply = String::new();
    if reader.read_line(&mut reply)? == 0 || !reply.ends_with('\n') {
        // No reply, or a torn line: the connection died mid-write (a
        // loop-death or connection fault landed between our write and
        // the server's). Either way the outcome is unknown — the
        // caller must recover via the authoritative registry state.
        return Err(std::io::Error::new(
            std::io::ErrorKind::UnexpectedEof,
            "connection closed before the full reply",
        ));
    }
    Ok(reply)
}

/// Scan `doc` for `"key":<digits>`.
fn field_u64(doc: &str, key: &str) -> Option<u64> {
    let needle = format!("\"{key}\":");
    let at = doc.find(&needle)? + needle.len();
    let digits: String = doc[at..].chars().take_while(char::is_ascii_digit).collect();
    digits.parse().ok()
}

/// Scan `doc` for `"key":"<value>"` (no escapes — digests and names).
fn field_str(doc: &str, key: &str) -> Option<String> {
    let needle = format!("\"{key}\":\"");
    let at = doc.find(&needle)? + needle.len();
    doc[at..].split('"').next().map(str::to_string)
}

/// Scan `doc` for `"key":true|false`.
fn field_bool(doc: &str, key: &str) -> Option<bool> {
    let needle = format!("\"{key}\":");
    let at = doc.find(&needle)? + needle.len();
    if doc[at..].starts_with("true") {
        Some(true)
    } else if doc[at..].starts_with("false") {
        Some(false)
    } else {
        None
    }
}

/// A local mirror of the server's registry state-machine: the soak
/// replays every admin action against it, so divergence between the
/// reply digests and the model is itself an invariant violation, and
/// the model's per-epoch snapshots are the "direct emitter" every
/// sampled payload is held byte-identical to.
struct SwapModel {
    active: SpecSnapshot,
    last_good: SpecSnapshot,
    /// Epoch → the snapshot(s) that may legitimately have served it.
    /// Normally one; a lost-reply gap accepts both the candidate and
    /// the prior content.
    expected: BTreeMap<u64, Vec<SpecSnapshot>>,
}

impl SwapModel {
    fn new() -> SwapModel {
        let builtins = SpecSnapshot::builtins();
        let mut expected = BTreeMap::new();
        expected.insert(builtins.epoch(), vec![builtins.clone()]);
        SwapModel {
            active: builtins.clone(),
            last_good: builtins,
            expected,
        }
    }

    fn note(&mut self, snap: &SpecSnapshot) {
        self.expected
            .entry(snap.epoch())
            .or_default()
            .push(snap.clone());
    }

    /// A successful activation: prior active becomes last-good, the
    /// candidate becomes active at `epoch`. Returns the model digest.
    fn apply_success(&mut self, doc: &str, epoch: u64) -> Result<String, String> {
        let candidate = self.active.with_spec(doc, epoch)?;
        self.note(&candidate);
        self.last_good = self.active.clone();
        self.active = candidate;
        Ok(self.active.digest())
    }

    /// A probe-failure rollback: the candidate was briefly active at
    /// `epoch - 1`, then the prior content was restored at `epoch`.
    fn apply_auto_rollback(&mut self, doc: &str, epoch: u64) -> Result<String, String> {
        let candidate = self.active.with_spec(doc, epoch.saturating_sub(1))?;
        self.note(&candidate);
        // The registry's commit made the prior active last-good; the
        // rollback restored its content without touching last-good.
        self.last_good = self.active.clone();
        let restored = self.active.at_epoch(epoch);
        self.note(&restored);
        self.active = restored;
        Ok(self.active.digest())
    }

    /// An explicit `spec-rollback`: last-good content at `epoch`
    /// (last-good itself is unchanged, exactly as in the registry).
    fn apply_explicit_rollback(&mut self, epoch: u64) -> String {
        let restored = self.last_good.at_epoch(epoch);
        self.note(&restored);
        self.active = restored;
        self.active.digest()
    }
}

/// What a lost-reply recovery concluded actually happened server-side.
enum LostSwap {
    /// The request never reached the registry — safe to retry.
    Nothing,
    /// The activation committed and survived its probe.
    Committed,
    /// The activation committed, the probe died, the registry rolled
    /// back.
    RolledBack,
}

/// Resolve a lost `spec-activate` reply: read the authoritative
/// `(epoch, digest)` via `spec-list` and match it against the model's
/// two possible successors. The content hash disambiguates — a digest
/// is `{epoch}:{content hash}` and the hash is epoch-independent.
fn resolve_lost_swap(
    addr: SocketAddr,
    model: &mut SwapModel,
    doc: &str,
    admin_id: &mut u64,
) -> Result<LostSwap, String> {
    let (epoch, digest) = spec_list(addr, admin_id)?;
    let before = model.active.epoch();
    if epoch == before && digest == model.active.digest() {
        return Ok(LostSwap::Nothing);
    }
    if epoch <= before {
        return Err(format!(
            "recovery saw epoch {epoch} at digest {digest}, not newer than {before}"
        ));
    }
    // Epochs the lost swap may have served in passing: accept both the
    // candidate and the prior content for each.
    let fill: Vec<u64> = (before + 1..epoch).collect();
    let candidate = model
        .active
        .with_spec(doc, epoch)
        .map_err(|e| format!("recovery could not rebuild the candidate: {e}"))?;
    if candidate.digest() == digest {
        for gap in fill {
            if let Ok(snap) = model.active.with_spec(doc, gap) {
                model.note(&snap);
            }
            let prior = model.active.at_epoch(gap);
            model.note(&prior);
        }
        model
            .apply_success(doc, epoch)
            .map_err(|e| format!("recovery model update failed: {e}"))?;
        return Ok(LostSwap::Committed);
    }
    if model.active.at_epoch(epoch).digest() == digest {
        for gap in fill {
            if gap == epoch - 1 {
                continue; // apply_auto_rollback notes the candidate there
            }
            if let Ok(snap) = model.active.with_spec(doc, gap) {
                model.note(&snap);
            }
            let prior = model.active.at_epoch(gap);
            model.note(&prior);
        }
        model
            .apply_auto_rollback(doc, epoch)
            .map_err(|e| format!("recovery model update failed: {e}"))?;
        return Ok(LostSwap::RolledBack);
    }
    Err(format!(
        "recovery saw digest {digest} at epoch {epoch}, matching neither \
         the candidate nor the prior content"
    ))
}

/// Authoritative `(epoch, digest)` via `spec-list`, retried through
/// injected connection faults.
fn spec_list(addr: SocketAddr, admin_id: &mut u64) -> Result<(u64, String), String> {
    for _ in 0..100 {
        *admin_id += 1;
        let line = format!(
            "{{\"op\":\"admin\",\"action\":\"spec-list\",\"token\":\"{SWAP_TOKEN}\",\
             \"id\":{admin_id}}}"
        );
        if let Ok(reply) = exchange_once(addr, &line, SWAP_IO_TIMEOUT) {
            if let Some(at) = reply.find("\"result\":") {
                let payload = &reply[at..];
                if let (Some(epoch), Some(digest)) =
                    (field_u64(payload, "epoch"), field_str(payload, "digest"))
                {
                    return Ok((epoch, digest));
                }
            }
        }
        std::thread::sleep(Duration::from_millis(10));
    }
    Err("spec-list never answered through the fault schedule".to_string())
}

/// A patient background load client: no client-side fault injection and
/// enough retry budget that every server-side fault is absorbed — the
/// zero-drop invariant charges any give-up to the soak.
fn swap_load_client(addr: &str, seed: u64, stop: &AtomicBool) -> (u64, u64, ClientCounters) {
    let mut client = ResilientClient::new(
        addr,
        ClientConfig {
            seed,
            attempts: 10,
            attempt_timeout: Duration::from_secs(2),
            backoff_base: Duration::from_micros(200),
            backoff_max: Duration::from_millis(20),
            // Effectively no breaker: shedding would count as a drop.
            breaker_threshold: 1_000_000,
            breaker_cooldown: 1,
            validate_replies: true,
        },
    );
    let keys = key_space();
    let mut rng = ChaosRng::new(seed ^ 0x5357_4150);
    let mut oks = 0u64;
    let mut failures = 0u64;
    let mut request_id = 0u64;
    while !stop.load(Ordering::Relaxed) {
        let (arch, primitive) = keys[rng.range(keys.len() as u64) as usize];
        request_id += 1;
        let id_token = request_id.to_string();
        let line = format!(
            "{{\"op\":\"measure\",\"arch\":\"{arch}\",\"primitive\":\"{}\",\"id\":{id_token}}}",
            primitive.tag()
        );
        match client.call(&line, &id_token) {
            Ok(_) => oks += 1,
            Err(_) => failures += 1,
        }
    }
    (oks, failures, client.counters())
}

/// The epoch verifier: hammers `measure` on the hot-swapped spec over a
/// raw connection and records `(epoch, primitive, payload)` for every
/// ok reply — including degraded ones, whose stale payload is keyed
/// under the same epoch-scoped prefix and must match it all the same.
/// Returns the samples, the degraded count, and id-echo mismatches.
fn swap_verifier(
    addr: SocketAddr,
    stop: &AtomicBool,
) -> (Vec<(u64, osarch_kernel::Primitive, String)>, u64, u64) {
    let primitives = osarch_kernel::Primitive::all();
    let mut samples = Vec::new();
    let mut degraded = 0u64;
    let mut mismatches = 0u64;
    let mut request_id = 500_000u64;
    let mut conn: Option<BufReader<TcpStream>> = None;
    while !stop.load(Ordering::Relaxed) {
        let Some(reader) = conn.as_mut() else {
            match TcpStream::connect_timeout(&addr, Duration::from_millis(500)) {
                Ok(stream) => {
                    stream.set_read_timeout(Some(SWAP_IO_TIMEOUT)).ok();
                    stream.set_nodelay(true).ok();
                    conn = Some(BufReader::new(stream));
                }
                Err(_) => std::thread::sleep(Duration::from_millis(5)),
            }
            continue;
        };
        request_id += 1;
        let primitive = primitives[request_id as usize % primitives.len()];
        let line = format!(
            "{{\"op\":\"measure\",\"spec\":\"hot\",\"primitive\":\"{}\",\"id\":{request_id}}}\n",
            primitive.tag()
        );
        if reader.get_mut().write_all(line.as_bytes()).is_err() {
            conn = None;
            continue;
        }
        let mut reply = String::new();
        match reader.read_line(&mut reply) {
            Ok(0) | Err(_) => {
                conn = None;
                continue;
            }
            Ok(_) => {}
        }
        if !reply.ends_with('\n') {
            // Torn mid-write by an injected fault: not epoch evidence,
            // not corruption — just a dead connection.
            conn = None;
            continue;
        }
        if !reply.contains(&format!("\"id\":{request_id},")) {
            mismatches += 1;
            conn = None;
            continue;
        }
        if !reply.contains("\"ok\":true") {
            // `unknown spec` before the first activation (or while a
            // rollback has the hot spec out), deadline errors, … — all
            // legitimate, none epoch evidence.
            continue;
        }
        if reply.contains("\"degraded\":true") {
            degraded += 1;
        }
        let (Some(epoch), Some(at)) = (field_u64(&reply, "epoch"), reply.find("\"result\":"))
        else {
            mismatches += 1;
            continue;
        };
        let payload = reply[at + "\"result\":".len()..].trim_end();
        let payload = payload.strip_suffix('}').unwrap_or(payload);
        samples.push((epoch, primitive, payload.to_string()));
    }
    (samples, degraded, mismatches)
}

/// Run one swap soak: repeated live spec swaps through the admin plane
/// while background load and an epoch verifier hammer the data plane,
/// everything under full fault injection. Invariants:
///
/// 1. **zero dropped requests** — every background call lands after
///    retries; give-ups, breaker sheds and watchdog trips all fail;
/// 2. **zero corruption** — every reply parses and echoes its id;
/// 3. **epoch identity** — every ok `measure spec` payload (degraded
///    included) is byte-identical to its reply epoch's direct emitter,
///    recomputed from the model snapshot for that epoch;
/// 4. **fault-safe control plane** — every activation either commits or
///    rolls back to last-good; the reply digests (and the final
///    registry digest) match the soak's replayed model exactly;
/// 5. **deterministic replay** — the observed rollback sequence equals
///    the pure seeded CorruptSpec decision stream, so a same-seed rerun
///    reproduces it bit-identically;
/// 6. **no leaked loops** — mid-swap loop deaths respawn in place.
///
/// # Errors
///
/// I/O errors are returned only for harness failures (the listener
/// socket itself); every soak-level failure lands in `violations`.
pub fn run_swap(config: &SwapSoakConfig) -> std::io::Result<SwapSoakReport> {
    let _quiet = osarch_chaos::QuietChaosPanics::install();
    let chaos = Arc::new(ChaosController::new(ChaosConfig {
        seed: config.seed,
        rate: config.rate,
        ..ChaosConfig::default()
    }));
    let handle = Server::start(&ServerConfig {
        workers: config.workers,
        shards: 16,
        queue_depth: (config.conns as usize * 4).max(64),
        // Generous deadline: injected compute delays must degrade or
        // retry, never hard-drop, because this soak demands zero drops.
        deadline: Duration::from_secs(2),
        write_timeout: Duration::from_secs(2),
        chaos: Some(Arc::clone(&chaos)),
        sample_every: 64,
        telemetry_seed: config.seed,
        admin_token: Some(SWAP_TOKEN.to_string()),
        ..ServerConfig::default()
    })?;
    let addr = handle.addr();
    let addr_text = addr.to_string();
    let stats = handle.stats();
    let stop = Arc::new(AtomicBool::new(false));
    let mut violations: Vec<String> = Vec::new();
    let mut transcript: Vec<String> = Vec::new();

    let (tx, rx) = mpsc::channel::<(u64, u64, ClientCounters)>();
    let mut load_threads = Vec::new();
    for conn in 0..config.conns {
        let tx = tx.clone();
        let addr = addr_text.clone();
        let stop = Arc::clone(&stop);
        let seed = config.seed ^ (u64::from(conn) + 1).wrapping_mul(0x9e37_79b9_7f4a_7c15);
        load_threads.push(std::thread::spawn(move || {
            let _ = tx.send(swap_load_client(&addr, seed, &stop));
        }));
    }
    drop(tx);
    let verifier = {
        let stop = Arc::clone(&stop);
        std::thread::spawn(move || swap_verifier(addr, &stop))
    };

    // The admin sequence, driven synchronously from this thread.
    let mut model = SwapModel::new();
    let mut rollback_stream: Vec<bool> = Vec::new();
    let mut committed = 0u64;
    let mut auto_rollbacks = 0u64;
    let mut explicit_rollbacks = 0u64;
    let mut admin_id = 1_000_000u64;
    'swaps: for swap in 1..=config.swaps {
        let doc = swap_doc(swap);
        // Stage. Idempotent, so a lost reply just retries.
        let mut staged = false;
        for _ in 0..50 {
            admin_id += 1;
            let line = format!(
                "{{\"op\":\"admin\",\"action\":\"spec-load\",\"token\":\"{SWAP_TOKEN}\",\
                 \"id\":{admin_id},\"spec\":\"{}\"}}",
                osarch_core::metrics::json_escape(&doc)
            );
            match exchange_once(addr, &line, SWAP_IO_TIMEOUT) {
                Ok(reply) if reply.contains("\"staged\":\"hot\"") => {
                    staged = true;
                    break;
                }
                Ok(reply) => {
                    violations.push(format!("ADMIN: spec-load refused: {}", reply.trim_end()));
                    break 'swaps;
                }
                Err(_) => std::thread::sleep(Duration::from_millis(5)),
            }
        }
        if !staged {
            violations.push(format!("ADMIN: swap {swap} spec-load never got through"));
            break;
        }
        // Activate, resolving lost replies against the authoritative
        // registry state.
        let mut settled = false;
        for _ in 0..10 {
            admin_id += 1;
            let line = format!(
                "{{\"op\":\"admin\",\"action\":\"spec-activate\",\"token\":\"{SWAP_TOKEN}\",\
                 \"name\":\"hot\",\"id\":{admin_id}}}"
            );
            match exchange_once(addr, &line, SWAP_IO_TIMEOUT) {
                Ok(reply) => {
                    let Some(at) = reply.find("\"result\":") else {
                        violations.push(format!(
                            "ADMIN: spec-activate errored: {}",
                            reply.trim_end()
                        ));
                        break 'swaps;
                    };
                    let payload = &reply[at..];
                    let (Some(activated), Some(epoch), Some(digest)) = (
                        field_bool(payload, "activated"),
                        field_u64(payload, "epoch"),
                        field_str(payload, "digest"),
                    ) else {
                        violations.push(format!(
                            "ADMIN: spec-activate reply unparsable: {}",
                            reply.trim_end()
                        ));
                        break 'swaps;
                    };
                    let modelled = if activated {
                        committed += 1;
                        rollback_stream.push(false);
                        model.apply_success(&doc, epoch)
                    } else {
                        auto_rollbacks += 1;
                        rollback_stream.push(true);
                        model.apply_auto_rollback(&doc, epoch)
                    };
                    match modelled {
                        Ok(model_digest) if model_digest == digest => transcript.push(format!(
                            "swap {swap}: {} at epoch {epoch} ({digest})",
                            if activated {
                                "activated"
                            } else {
                                "rolled back"
                            }
                        )),
                        Ok(model_digest) => violations.push(format!(
                            "MODEL DIVERGENCE: swap {swap} reply digest {digest} != \
                             model {model_digest}"
                        )),
                        Err(reason) => violations.push(format!(
                            "MODEL DIVERGENCE: swap {swap} model rejected the doc: {reason}"
                        )),
                    }
                    settled = true;
                    break;
                }
                Err(_) => match resolve_lost_swap(addr, &mut model, &doc, &mut admin_id) {
                    Ok(LostSwap::Nothing) => {}
                    Ok(LostSwap::Committed) => {
                        committed += 1;
                        rollback_stream.push(false);
                        transcript.push(format!(
                            "swap {swap}: activated at epoch {} (reply lost; recovered)",
                            model.active.epoch()
                        ));
                        settled = true;
                        break;
                    }
                    Ok(LostSwap::RolledBack) => {
                        auto_rollbacks += 1;
                        rollback_stream.push(true);
                        transcript.push(format!(
                            "swap {swap}: rolled back at epoch {} (reply lost; recovered)",
                            model.active.epoch()
                        ));
                        settled = true;
                        break;
                    }
                    Err(reason) => {
                        violations.push(format!("RECOVERY: swap {swap}: {reason}"));
                        break 'swaps;
                    }
                },
            }
        }
        if !settled {
            violations.push(format!("ADMIN: swap {swap} never settled"));
            break;
        }
        // Midpoint: one explicit rollback, so the rollback path is
        // exercised even under a schedule that plans no corrupt-spec
        // fault.
        if swap == config.swaps / 2 {
            let mut rolled = false;
            for _ in 0..10 {
                admin_id += 1;
                let line = format!(
                    "{{\"op\":\"admin\",\"action\":\"spec-rollback\",\"token\":\"{SWAP_TOKEN}\",\
                     \"id\":{admin_id}}}"
                );
                match exchange_once(addr, &line, SWAP_IO_TIMEOUT) {
                    Ok(reply) => {
                        if let Some(at) = reply.find("\"result\":") {
                            let payload = &reply[at..];
                            if let (Some(epoch), Some(digest)) =
                                (field_u64(payload, "epoch"), field_str(payload, "digest"))
                            {
                                let model_digest = model.apply_explicit_rollback(epoch);
                                if model_digest == digest {
                                    transcript.push(format!(
                                        "swap {swap}+: explicit rollback to epoch {epoch} \
                                         ({digest})"
                                    ));
                                } else {
                                    violations.push(format!(
                                        "MODEL DIVERGENCE: explicit rollback digest {digest} \
                                         != model {model_digest}"
                                    ));
                                }
                                explicit_rollbacks += 1;
                                rolled = true;
                            }
                        }
                        break;
                    }
                    Err(_) => {
                        // Lost reply: check whether the rollback landed.
                        match spec_list(addr, &mut admin_id) {
                            Ok((epoch, digest)) if epoch > model.active.epoch() => {
                                let model_digest = model.apply_explicit_rollback(epoch);
                                if model_digest != digest {
                                    violations.push(format!(
                                        "MODEL DIVERGENCE: lost explicit rollback left \
                                         digest {digest}, model {model_digest}"
                                    ));
                                }
                                explicit_rollbacks += 1;
                                rolled = true;
                                break;
                            }
                            Ok(_) => {} // nothing happened; retry
                            Err(reason) => {
                                violations.push(format!("RECOVERY: explicit rollback: {reason}"));
                                break;
                            }
                        }
                    }
                }
            }
            if !rolled {
                violations.push("ADMIN: the explicit rollback never settled".to_string());
            }
        }
        // Let the data plane sample this epoch before the next swap.
        std::thread::sleep(Duration::from_millis(25));
    }

    // Authoritative final state, cross-checked three ways: spec-list
    // over the wire, the in-process handle, and the model.
    let (final_epoch, final_digest) =
        spec_list(addr, &mut admin_id).unwrap_or((0, String::from("unreachable")));
    if final_digest != model.active.digest() {
        violations.push(format!(
            "MODEL DIVERGENCE: final digest {final_digest} != model {}",
            model.active.digest()
        ));
    }
    if handle.registry_digest() != model.active.digest() {
        violations.push(format!(
            "MODEL DIVERGENCE: handle digest {} != model {}",
            handle.registry_digest(),
            model.active.digest()
        ));
    }
    let (registry_swaps, registry_rollbacks) = handle.registry_swap_stats();
    let expect_swaps = committed + 2 * auto_rollbacks + explicit_rollbacks;
    let expect_rollbacks = auto_rollbacks + explicit_rollbacks;
    if (registry_swaps, registry_rollbacks) != (expect_swaps, expect_rollbacks) {
        violations.push(format!(
            "SWAP ACCOUNTING: registry counted {registry_swaps} swaps / \
             {registry_rollbacks} rollbacks, soak drove {expect_swaps} / {expect_rollbacks}"
        ));
    }

    // Invariant 6 (first half): every loop alive before shutdown.
    let live_during = stats.workers_live();
    if live_during != config.workers as u64 {
        violations.push(format!(
            "LEAKED WORKER: {live_during} of {} loops live before shutdown",
            config.workers
        ));
    }
    let loop_deaths = stats.worker_respawns();

    // Wind down traffic and collect tallies; the receive is the
    // deadlock watchdog.
    std::thread::sleep(Duration::from_millis(100));
    stop.store(true, Ordering::Relaxed);
    let mut oks = 0u64;
    let mut failures = 0u64;
    let mut counters = ClientCounters::default();
    let watchdog = Duration::from_secs(60);
    for _ in 0..config.conns {
        match rx.recv_timeout(watchdog) {
            Ok((conn_oks, conn_failures, conn_counters)) => {
                oks += conn_oks;
                failures += conn_failures;
                counters.corrupt += conn_counters.corrupt;
                counters.giveups += conn_counters.giveups;
                counters.breaker_shed += conn_counters.breaker_shed;
                counters.degraded += conn_counters.degraded;
            }
            Err(_) => {
                violations.push(format!(
                    "DEADLOCK: a load thread failed to report within {watchdog:?}"
                ));
                break;
            }
        }
    }
    if violations.iter().all(|v| !v.starts_with("DEADLOCK")) {
        for thread in load_threads {
            let _ = thread.join();
        }
    }
    let (samples, degraded_samples, id_mismatches) = match verifier.join() {
        Ok(result) => result,
        Err(_) => {
            violations.push("DEADLOCK: the verifier thread panicked".to_string());
            (Vec::new(), 0, 0)
        }
    };
    handle.stop();

    // Invariant 1: zero dropped requests.
    if failures > 0 || counters.giveups > 0 || counters.breaker_shed > 0 {
        violations.push(format!(
            "DROPPED REQUESTS: {failures} calls failed ({} give-ups, {} breaker sheds) \
             across {} live swaps",
            counters.giveups,
            counters.breaker_shed,
            committed + auto_rollbacks
        ));
    }
    if oks == 0 {
        violations.push("NO PROGRESS: zero successful requests".to_string());
    }
    // Invariant 2: zero corruption, either side.
    if counters.corrupt > 0 || id_mismatches > 0 {
        violations.push(format!(
            "CORRUPTION: {} load replies and {id_mismatches} verifier replies failed \
             verification",
            counters.corrupt
        ));
    }
    // Invariant 3: epoch identity — every sampled payload byte-identical
    // to its epoch's direct emitter, recomputed from the model.
    let mut emitter_memo: HashMap<(String, &'static str), Option<String>> = HashMap::new();
    let mut diverged = 0u64;
    for (epoch, primitive, payload) in &samples {
        let Some(snaps) = model.expected.get(epoch) else {
            diverged += 1;
            if diverged <= 3 {
                violations.push(format!(
                    "EPOCH IDENTITY: a reply carried unknown epoch {epoch}"
                ));
            }
            continue;
        };
        let matched = snaps.iter().any(|snap| {
            let emitted = emitter_memo
                .entry((snap.digest(), primitive.tag()))
                .or_insert_with(|| {
                    snap.spec("hot").is_some().then(|| {
                        Query::MeasureSpec {
                            name: "hot".to_string(),
                            primitive: *primitive,
                        }
                        .compute(snap)
                    })
                });
            emitted.as_deref() == Some(payload.as_str())
        });
        if !matched {
            diverged += 1;
            if diverged <= 3 {
                violations.push(format!(
                    "EPOCH IDENTITY: epoch {epoch} {} payload diverged from its direct \
                     emitter",
                    primitive.tag()
                ));
            }
        }
    }
    if diverged > 3 {
        violations.push(format!(
            "EPOCH IDENTITY: {diverged} samples diverged in total"
        ));
    }
    if samples.is_empty() {
        violations.push("NO PROGRESS: the verifier captured zero epoch samples".to_string());
    }
    // Invariant 5: the rollback sequence replays from the seed.
    let fresh = ChaosController::new(ChaosConfig {
        seed: config.seed,
        rate: config.rate,
        ..ChaosConfig::default()
    });
    let pure: Vec<bool> = rollback_stream
        .iter()
        .map(|_| fresh.should_inject(Failpoint::CorruptSpec))
        .collect();
    if rollback_stream != pure {
        violations.push(format!(
            "REPLAY: observed rollback stream {rollback_stream:?} != seeded stream {pure:?}"
        ));
    }
    // The soak's charter includes the rollback path; a schedule that
    // never exercises it (possible under an unlucky seed at a low
    // rate) is a configuration failure, not a pass.
    if config.rate > 0.0 && auto_rollbacks == 0 {
        violations.push(
            "ROLLBACK PATH UNEXERCISED: the seeded schedule planned no corrupt-spec \
             fault; pick another --seed or raise --rate"
                .to_string(),
        );
    }
    // Invariant 6 (second half): shutdown reaps every loop.
    let live_after = stats.workers_live();
    if live_after != 0 {
        violations.push(format!("LEAKED WORKER: {live_after} live after stop"));
    }

    Ok(SwapSoakReport {
        swaps_attempted: config.swaps,
        swaps_committed: committed,
        auto_rollbacks,
        explicit_rollbacks,
        loop_deaths,
        final_epoch,
        final_digest,
        oks,
        failures,
        corrupt: counters.corrupt + id_mismatches,
        samples: samples.len() as u64,
        degraded_samples,
        rollback_stream,
        transcript,
        violations,
    })
}

// ---------------------------------------------------------------------------
// Cluster swap soak: spec convergence through gossip, with a mid-swap kill
// ---------------------------------------------------------------------------

/// Cluster swap-soak knobs (`osarch chaos --swap --cluster`).
#[derive(Debug, Clone)]
pub struct SwapClusterConfig {
    /// Seed for the victim choice and the router's jitter streams.
    pub seed: u64,
    /// Live activations driven through node 0's admin plane.
    pub swaps: u64,
    /// Cluster size.
    pub nodes: usize,
    /// Replication factor R.
    pub replicas: usize,
    /// Gossip anti-entropy cadence in milliseconds — also the spec
    /// digest propagation path.
    pub gossip_ms: u64,
}

impl Default for SwapClusterConfig {
    fn default() -> SwapClusterConfig {
        SwapClusterConfig {
            seed: 42,
            swaps: 8,
            nodes: 3,
            replicas: 2,
            gossip_ms: 50,
        }
    }
}

/// Everything a cluster swap soak observed.
#[derive(Debug, Clone)]
pub struct SwapClusterReport {
    /// Node addresses, in start order. Node 0 is the admin node.
    pub addrs: Vec<String>,
    /// The seeded victim (never node 0) killed mid-sequence.
    pub victim: usize,
    /// Activations that committed on node 0.
    pub swaps_committed: u64,
    /// The final epoch every node must converge to.
    pub final_epoch: u64,
    /// The final digest every node must converge to.
    pub final_digest: String,
    /// Sweep calls answered ok.
    pub oks: u64,
    /// Sweep calls that failed — must be zero (R ≥ 2 keeps every key
    /// answerable even with the victim dead).
    pub failures: u64,
    /// Replies failing JSON/id verification — must be zero.
    pub corrupt: u64,
    /// Whether membership settled before the kill.
    pub converged_before_kill: bool,
    /// Whether every node (victim included, post-respawn) converged to
    /// the final spec digest.
    pub spec_converged: bool,
    /// One line per admin action and lifecycle event.
    pub transcript: Vec<String>,
    /// Invariant violations; empty means the soak passed.
    pub violations: Vec<String>,
}

impl SwapClusterReport {
    /// Whether every invariant held.
    #[must_use]
    pub fn passed(&self) -> bool {
        self.violations.is_empty()
    }
}

fn start_swap_cluster_node(
    addrs: &[String],
    index: usize,
    config: &SwapClusterConfig,
    incarnation: u64,
) -> std::io::Result<ServerHandle> {
    Server::start(&ServerConfig {
        addr: addrs[index].clone(),
        workers: 2,
        compute_threads: 2,
        admin_token: Some(SWAP_TOKEN.to_string()),
        cluster: Some(ClusterConfig {
            self_addr: addrs[index].clone(),
            peers: addrs.to_vec(),
            replicas: config.replicas,
            incarnation,
            gossip_interval: Duration::from_millis(config.gossip_ms.max(10)),
            ..ClusterConfig::default()
        }),
        ..ServerConfig::default()
    })
}

/// Run one cluster swap soak: a ring of nodes, live swaps driven
/// through node 0, spec digests gossiped on the membership path, a
/// seeded mid-swap node kill + respawn. Invariants:
///
/// 1. **convergence** — every node (the respawned victim included)
///    ends at the final epoch and digest; a mid-swap kill must not
///    permanently split the ring across epochs;
/// 2. **availability** — with R ≥ 2, every sweep answers every key
///    through all phases;
/// 3. **no corruption** — every reply parses and echoes its id;
/// 4. **model fidelity** — node 0's activation digests replay exactly
///    against the soak's local registry model.
///
/// # Errors
///
/// I/O errors are returned only for harness failures (reserving node
/// addresses, starting a node); soak failures land in `violations`.
pub fn run_swap_cluster(config: &SwapClusterConfig) -> std::io::Result<SwapClusterReport> {
    let nodes = config.nodes.max(2);
    let swaps = config.swaps.max(4);
    let addrs = reserve_cluster_addrs(nodes)?;
    let mut handles: Vec<Option<ServerHandle>> = (0..nodes)
        .map(|index| start_swap_cluster_node(&addrs, index, config, 0).map(Some))
        .collect::<std::io::Result<_>>()?;
    let admin_addr: SocketAddr = handles[0]
        .as_ref()
        .map(ServerHandle::addr)
        .ok_or_else(|| std::io::Error::other("node 0 did not start"))?;

    // The seeded victim — never node 0, which drives the swaps.
    let salt = (Failpoint::NodeKill.index() as u64).wrapping_mul(0x9e37_79b9_7f4a_7c15);
    let mut rng = ChaosRng::new(config.seed ^ salt);
    let victim = 1 + rng.range(nodes as u64 - 1) as usize;

    let mut violations: Vec<String> = Vec::new();
    let mut transcript: Vec<String> = Vec::new();
    let converged_before_kill = wait_settled(&handles, Duration::from_secs(10));
    if !converged_before_kill {
        violations.push("CONVERGENCE: membership never settled before the kill".to_string());
    }

    let mut client = ClusterClient::new(
        &addrs,
        config.replicas,
        &ClientConfig {
            seed: config.seed,
            attempts: 3,
            attempt_timeout: Duration::from_secs(2),
            breaker_threshold: 2,
            breaker_cooldown: 4,
            validate_replies: true,
            ..ClientConfig::default()
        },
    );

    let kill_at = swaps / 2;
    let respawn_at = (kill_at + 2).min(swaps);
    let mut model = SpecSnapshot::builtins();
    let mut committed = 0u64;
    let mut admin_id = 2_000_000u64;
    let mut request_id = 0u64;
    let mut oks = 0u64;
    let mut failures = 0u64;
    'swaps: for swap in 1..=swaps {
        let doc = swap_doc(swap);
        // Stage + activate through node 0 (no fault injection in the
        // cluster variant: the chaos here is the node kill itself).
        let mut done = false;
        for _ in 0..10 {
            admin_id += 1;
            let load = format!(
                "{{\"op\":\"admin\",\"action\":\"spec-load\",\"token\":\"{SWAP_TOKEN}\",\
                 \"id\":{admin_id},\"spec\":\"{}\"}}",
                osarch_core::metrics::json_escape(&doc)
            );
            if exchange_once(admin_addr, &load, SWAP_IO_TIMEOUT).is_err() {
                std::thread::sleep(Duration::from_millis(10));
                continue;
            }
            admin_id += 1;
            let activate = format!(
                "{{\"op\":\"admin\",\"action\":\"spec-activate\",\"token\":\"{SWAP_TOKEN}\",\
                 \"name\":\"hot\",\"id\":{admin_id}}}"
            );
            let Ok(reply) = exchange_once(admin_addr, &activate, SWAP_IO_TIMEOUT) else {
                std::thread::sleep(Duration::from_millis(10));
                continue;
            };
            let payload = reply.find("\"result\":").map(|at| &reply[at..]);
            let (Some(epoch), Some(digest)) = (
                payload.and_then(|p| field_u64(p, "epoch")),
                payload.and_then(|p| field_str(p, "digest")),
            ) else {
                violations.push(format!(
                    "ADMIN: spec-activate errored: {}",
                    reply.trim_end()
                ));
                break 'swaps;
            };
            match model.with_spec(&doc, epoch) {
                Ok(next) if next.digest() == digest => {
                    model = next;
                    committed += 1;
                    transcript.push(format!("swap {swap}: epoch {epoch} ({digest}) on node 0"));
                }
                Ok(next) => violations.push(format!(
                    "MODEL DIVERGENCE: swap {swap} digest {digest} != model {}",
                    next.digest()
                )),
                Err(reason) => violations.push(format!(
                    "MODEL DIVERGENCE: swap {swap} model rejected the doc: {reason}"
                )),
            }
            done = true;
            break;
        }
        if !done {
            violations.push(format!("ADMIN: swap {swap} never got through node 0"));
            break;
        }
        // The mid-swap kill: immediately after an activation commits on
        // node 0, before gossip can have propagated it — the victim
        // dies holding the *previous* epoch.
        if swap == kill_at {
            if let Some(handle) = handles[victim].take() {
                handle.stop();
            }
            transcript.push(format!(
                "kill: node {victim} ({}) down mid-swap at epoch {}",
                addrs[victim],
                model.epoch()
            ));
        }
        if swap == respawn_at {
            handles[victim] = Some(start_swap_cluster_node(&addrs, victim, config, 1)?);
            transcript.push(format!(
                "respawn: node {victim} back at incarnation 1 (fresh registry, epoch 1)"
            ));
        }
        // One sweep per swap keeps the data plane hot across every
        // phase; R ≥ 2 must keep every key answerable.
        let (sweep_oks, sweep_failures) = cluster_sweep(&mut client, &mut request_id);
        oks += sweep_oks;
        failures += sweep_failures;
        if sweep_failures > 0 {
            violations.push(format!(
                "AVAILABILITY: {sweep_failures} keys unanswered at swap {swap}"
            ));
        }
        std::thread::sleep(Duration::from_millis(config.gossip_ms.max(10)));
    }

    // Every node must converge to the final digest — the survivors via
    // gossip pull, the respawned victim from its fresh epoch 1.
    let final_digest = model.digest();
    let deadline = Instant::now() + Duration::from_secs(20);
    let mut spec_converged = false;
    while Instant::now() < deadline {
        let digests: Vec<String> = handles
            .iter()
            .flatten()
            .map(ServerHandle::registry_digest)
            .collect();
        if digests.len() == nodes && digests.iter().all(|d| *d == final_digest) {
            spec_converged = true;
            break;
        }
        std::thread::sleep(Duration::from_millis(20));
    }
    if !spec_converged {
        let digests: Vec<String> = handles
            .iter()
            .flatten()
            .map(ServerHandle::registry_digest)
            .collect();
        violations.push(format!(
            "SPEC CONVERGENCE: ring split across epochs — digests {digests:?}, \
             expected {final_digest} everywhere"
        ));
    }
    let corrupt = client.counters().corrupt;
    if corrupt > 0 {
        violations.push(format!("CORRUPTION: {corrupt} replies failed verification"));
    }
    if oks == 0 {
        violations.push("NO PROGRESS: zero successful requests".to_string());
    }
    for handle in handles.into_iter().flatten() {
        handle.stop();
    }

    Ok(SwapClusterReport {
        addrs,
        victim,
        swaps_committed: committed,
        final_epoch: model.epoch(),
        final_digest,
        oks,
        failures,
        corrupt,
        converged_before_kill,
        spec_converged,
        transcript,
        violations,
    })
}

/// The `osarch chaos` front end: parse `args`, run the soak, print the
/// verdict. `Err` carries a one-line usage error (exit 2 at the caller).
pub fn cli(args: &[String], prog: &str) -> Result<std::process::ExitCode, String> {
    use std::process::ExitCode;
    let mut config = SoakConfig::default();
    let mut metrics_out: Option<String> = None;
    let mut trace_out: Option<String> = None;
    let mut cluster = false;
    let mut cluster_config = ClusterSoakConfig::default();
    let mut swap = false;
    let mut swaps: Option<u64> = None;
    let mut transcript_out: Option<String> = None;
    // The swap soak's defaults differ (lower rate, fewer conns), so
    // remember which knobs the user actually set.
    let mut rate_set = false;
    let mut conns_set = false;
    let mut workers_set = false;
    let mut rest = args.iter();
    let parse = |flag: &str, value: Option<&String>| -> Result<String, String> {
        value
            .cloned()
            .ok_or_else(|| format!("{flag} requires a value"))
    };
    while let Some(arg) = rest.next() {
        match arg.as_str() {
            "--seed" => {
                config.seed = parse("--seed", rest.next())?
                    .parse()
                    .map_err(|_| "--seed expects an integer".to_string())?;
            }
            "--rate" => {
                config.rate = parse("--rate", rest.next())?
                    .parse()
                    .map_err(|_| "--rate expects a probability in [0,1]".to_string())?;
                if !(0.0..=1.0).contains(&config.rate) {
                    return Err("--rate expects a probability in [0,1]".to_string());
                }
                rate_set = true;
            }
            "--duration" => {
                config.secs = parse("--duration", rest.next())?
                    .parse()
                    .map_err(|_| "--duration expects seconds".to_string())?;
            }
            "--conns" => {
                config.conns = parse("--conns", rest.next())?
                    .parse()
                    .map_err(|_| "--conns expects a positive integer".to_string())?;
                conns_set = true;
            }
            "--workers" => {
                config.workers = parse("--workers", rest.next())?
                    .parse()
                    .map_err(|_| "--workers expects a positive integer".to_string())?;
                workers_set = true;
            }
            "--sample" => {
                config.sample = parse("--sample", rest.next())?
                    .parse()
                    .map_err(|_| "--sample expects an integer divisor (0 disables)".to_string())?;
            }
            "--metrics-addr" => {
                config.metrics_addr = Some(parse("--metrics-addr", rest.next())?);
            }
            "--metrics-out" => metrics_out = Some(parse("--metrics-out", rest.next())?),
            "--trace-out" => trace_out = Some(parse("--trace-out", rest.next())?),
            "--cluster" => cluster = true,
            "--swap" => swap = true,
            "--swaps" => {
                let count: u64 = parse("--swaps", rest.next())?
                    .parse()
                    .map_err(|_| "--swaps expects a positive integer".to_string())?;
                if count == 0 {
                    return Err("--swaps must be at least 1".to_string());
                }
                swaps = Some(count);
            }
            "--transcript-out" => transcript_out = Some(parse("--transcript-out", rest.next())?),
            "--nodes" => {
                cluster_config.nodes = parse("--nodes", rest.next())?
                    .parse()
                    .map_err(|_| "--nodes expects a positive integer".to_string())?;
                if cluster_config.nodes < 2 {
                    return Err("--nodes must be at least 2".to_string());
                }
            }
            "--replicas" => {
                cluster_config.replicas = parse("--replicas", rest.next())?
                    .parse()
                    .map_err(|_| "--replicas expects a positive integer".to_string())?;
                if cluster_config.replicas == 0 {
                    return Err("--replicas must be at least 1".to_string());
                }
            }
            other => {
                return Err(format!(
                    "unknown argument {other:?}\nusage: {prog} [--seed N] [--rate P] \
                     [--duration S] [--conns N] [--workers N] [--sample N] \
                     [--metrics-addr HOST:PORT] [--metrics-out PATH] [--trace-out PATH] \
                     [--cluster [--nodes N] [--replicas R]] \
                     [--swap [--swaps N] [--transcript-out PATH]]"
                ))
            }
        }
    }
    if config.conns == 0 {
        return Err("--conns must be at least 1".to_string());
    }
    if !swap && (swaps.is_some() || transcript_out.is_some()) {
        return Err("--swaps and --transcript-out require --swap".to_string());
    }
    if swap {
        if cluster {
            let mut swap_cluster_config = SwapClusterConfig {
                seed: config.seed,
                nodes: cluster_config.nodes,
                replicas: cluster_config.replicas,
                ..SwapClusterConfig::default()
            };
            if let Some(count) = swaps {
                swap_cluster_config.swaps = count;
            }
            return swap_cluster_cli(&swap_cluster_config, transcript_out.as_deref());
        }
        let mut swap_config = SwapSoakConfig {
            seed: config.seed,
            ..SwapSoakConfig::default()
        };
        if rate_set {
            swap_config.rate = config.rate;
        }
        if conns_set {
            swap_config.conns = config.conns;
        }
        if workers_set {
            swap_config.workers = config.workers;
        }
        if let Some(count) = swaps {
            swap_config.swaps = count;
        }
        return swap_cli(&swap_config, transcript_out.as_deref());
    }
    if cluster {
        cluster_config.seed = config.seed;
        cluster_config.secs = config.secs;
        return cluster_cli(&cluster_config);
    }
    let report = match run(&config) {
        Ok(report) => report,
        Err(err) => {
            eprintln!("chaos soak failed to start: {err}");
            return Ok(ExitCode::FAILURE);
        }
    };
    println!(
        "chaos soak: seed {} rate {} for {:.1}s ({} conns, {} workers)",
        config.seed, config.rate, config.secs, config.conns, config.workers
    );
    println!(
        "schedule ({} planned events over the horizon):",
        report.schedule_total
    );
    for entry in &report.schedule {
        println!("  {:<18} {}", entry.label, entry.planned);
    }
    let r = &report.resilience;
    println!(
        "traffic: {} ok, {} failed | {} injected | retries {} giveups {} \
         breaker_opens {} degraded {}",
        report.oks,
        report.failures,
        report.injected_total,
        r.retries,
        r.giveups,
        r.breaker_opens,
        r.degraded
    );
    println!(
        "error classes: timeout={} conn_reset={} server_error={} breaker_open={}",
        r.timeouts, r.conn_resets, r.server_errors, r.breaker_open
    );
    let (lookups, hits, misses, coalesced, failed) = report.cache;
    println!(
        "server: {} panics contained, {} degraded, {} worker respawns | \
         cache {} lookups = {} hits + {} misses + {} coalesced ({} failed)",
        report.server_panics,
        report.server_degraded,
        report.worker_respawns,
        lookups,
        hits,
        misses,
        coalesced,
        failed
    );
    println!(
        "telemetry: sampling {} | {} chains sampled ({} retained) across {} loops",
        if config.sample == 0 {
            "off".to_string()
        } else {
            format!("1/{}", config.sample)
        },
        report.chains_sampled,
        report.trace_ids_by_loop.iter().map(Vec::len).sum::<usize>(),
        report.trace_ids_by_loop.len()
    );
    if let Some(path) = &metrics_out {
        if let Err(err) = std::fs::write(path, &report.metrics_snapshot) {
            eprintln!("cannot write {path}: {err}");
            return Ok(ExitCode::FAILURE);
        }
        println!("wrote {path} (osarch-metrics/1 snapshot)");
    }
    if let Some(path) = &trace_out {
        if let Err(err) = std::fs::write(path, &report.chrome_trace) {
            eprintln!("cannot write {path}: {err}");
            return Ok(ExitCode::FAILURE);
        }
        println!("wrote {path} (osarch-trace/1 Chrome trace)");
    }
    if report.passed() {
        println!("PASS: all invariants held");
        Ok(ExitCode::SUCCESS)
    } else {
        for violation in &report.violations {
            eprintln!("FAIL: {violation}");
        }
        Ok(ExitCode::FAILURE)
    }
}

/// The `osarch chaos --cluster` verdict printer.
fn cluster_cli(config: &ClusterSoakConfig) -> Result<std::process::ExitCode, String> {
    use std::process::ExitCode;
    let report = match run_cluster(config) {
        Ok(report) => report,
        Err(err) => {
            eprintln!("cluster soak failed to start: {err}");
            return Ok(ExitCode::FAILURE);
        }
    };
    println!(
        "cluster soak: seed {} for {:.1}s ({} nodes, R={}, gossip {}ms)",
        config.seed, config.secs, config.nodes, config.replicas, config.gossip_ms
    );
    println!(
        "kill schedule (node/kill, seeded): victim node {} ({}) dies at t+1/3, \
         respawns at t+2/3 with incarnation {}",
        report.victim, report.addrs[report.victim], report.respawn_incarnation
    );
    println!(
        "traffic: {} ok, {} failed, {} corrupt | sweeps healthy={} dead={} respawned={}",
        report.oks,
        report.failures,
        report.corrupt,
        report.sweeps[0],
        report.sweeps[1],
        report.sweeps[2]
    );
    println!(
        "routing: primary={} failovers={} redirects_followed={}",
        report.routed_primary, report.failovers, report.redirects_followed
    );
    println!(
        "membership: converged_before_kill={} reconverged_after_respawn={}",
        report.converged_before_kill, report.reconverged
    );
    if report.passed() {
        println!("PASS: all invariants held");
        Ok(ExitCode::SUCCESS)
    } else {
        for violation in &report.violations {
            eprintln!("FAIL: {violation}");
        }
        Ok(ExitCode::FAILURE)
    }
}

/// Write the swap transcript (one admin action per line) for artifact
/// upload, with the verdict appended so the file is self-contained.
fn write_transcript(
    path: &str,
    transcript: &[String],
    violations: &[String],
) -> Result<(), String> {
    let mut text = transcript.join("\n");
    text.push('\n');
    if violations.is_empty() {
        text.push_str("PASS: all invariants held\n");
    } else {
        for violation in violations {
            text.push_str(&format!("FAIL: {violation}\n"));
        }
    }
    std::fs::write(path, text).map_err(|err| format!("cannot write {path}: {err}"))
}

/// The `osarch chaos --swap` verdict printer.
fn swap_cli(
    config: &SwapSoakConfig,
    transcript_out: Option<&str>,
) -> Result<std::process::ExitCode, String> {
    use std::process::ExitCode;
    let report = match run_swap(config) {
        Ok(report) => report,
        Err(err) => {
            eprintln!("swap soak failed to start: {err}");
            return Ok(ExitCode::FAILURE);
        }
    };
    println!(
        "swap soak: seed {} rate {} across {} live swaps ({} conns, {} workers)",
        config.seed, config.rate, config.swaps, config.conns, config.workers
    );
    println!(
        "swaps: {} committed, {} auto-rollbacks (corrupt-spec probe), {} explicit, \
         {} mid-swap loop deaths (all respawned)",
        report.swaps_committed,
        report.auto_rollbacks,
        report.explicit_rollbacks,
        report.loop_deaths
    );
    // '.' = committed, 'R' = rolled back — bit-identical on a same-seed
    // rerun, because the stream is a pure function of the seed.
    let stream: String = report
        .rollback_stream
        .iter()
        .map(|rolled| if *rolled { 'R' } else { '.' })
        .collect();
    println!("replay stream: [{stream}] (pure function of --seed)");
    println!(
        "registry: final epoch {} digest {}",
        report.final_epoch, report.final_digest
    );
    println!(
        "traffic: {} ok, {} dropped, {} corrupt | {} epoch samples verified \
         byte-identical ({} degraded)",
        report.oks, report.failures, report.corrupt, report.samples, report.degraded_samples
    );
    for line in &report.transcript {
        println!("  {line}");
    }
    if let Some(path) = transcript_out {
        write_transcript(path, &report.transcript, &report.violations)?;
        println!("wrote {path} (swap transcript)");
    }
    if report.passed() {
        println!("PASS: all invariants held");
        Ok(ExitCode::SUCCESS)
    } else {
        for violation in &report.violations {
            eprintln!("FAIL: {violation}");
        }
        Ok(ExitCode::FAILURE)
    }
}

/// The `osarch chaos --swap --cluster` verdict printer.
fn swap_cluster_cli(
    config: &SwapClusterConfig,
    transcript_out: Option<&str>,
) -> Result<std::process::ExitCode, String> {
    use std::process::ExitCode;
    let report = match run_swap_cluster(config) {
        Ok(report) => report,
        Err(err) => {
            eprintln!("cluster swap soak failed to start: {err}");
            return Ok(ExitCode::FAILURE);
        }
    };
    println!(
        "cluster swap soak: seed {} across {} live swaps ({} nodes, R={}, gossip {}ms)",
        config.seed, config.swaps, config.nodes, config.replicas, config.gossip_ms
    );
    println!(
        "kill schedule (seeded): victim node {} ({}) dies mid-swap, respawns with a \
         fresh registry two swaps later",
        report.victim, report.addrs[report.victim]
    );
    println!(
        "swaps: {} committed via node 0 | registry: final epoch {} digest {}",
        report.swaps_committed, report.final_epoch, report.final_digest
    );
    println!(
        "traffic: {} ok, {} failed, {} corrupt",
        report.oks, report.failures, report.corrupt
    );
    println!(
        "convergence: membership_before_kill={} spec_digest_all_nodes={}",
        report.converged_before_kill, report.spec_converged
    );
    for line in &report.transcript {
        println!("  {line}");
    }
    if let Some(path) = transcript_out {
        write_transcript(path, &report.transcript, &report.violations)?;
        println!("wrote {path} (swap transcript)");
    }
    if report.passed() {
        println!("PASS: all invariants held");
        Ok(ExitCode::SUCCESS)
    } else {
        for violation in &report.violations {
            eprintln!("FAIL: {violation}");
        }
        Ok(ExitCode::FAILURE)
    }
}
