//! The chaos soak harness (`osarch chaos`).
//!
//! Runs the load generator against an in-process, fault-injected server
//! — both sides drawing their faults from one deterministic
//! [`ChaosController`] schedule — and checks the resilience invariants
//! that must hold *no matter what the schedule does*:
//!
//! 1. **no client-visible corruption** — every reply that reaches a
//!    client parses as JSON and echoes its request id (`corrupt == 0`);
//! 2. **no deadlock** — every client thread reports back before the
//!    watchdog deadline; a waiter stuck on a poisoned cache flight or a
//!    worker wedged on a dead socket would trip it;
//! 3. **no leaked workers** — worker deaths respawn in place
//!    (`workers_live == workers` while serving, `0` after shutdown);
//! 4. **degraded replies are flagged** — the client never sees a stale
//!    value without `"degraded":true` (counted both sides and compared);
//! 5. **single-flight accounting stays exact** — cache
//!    `lookups == hits + misses + coalesced` even with leaders panicking
//!    mid-flight.
//!
//! The *schedule* is the reproducible artifact: planned event counts per
//! failpoint are a pure function of the seed (see
//! [`ChaosController::schedule_events`]), so two soaks with one seed
//! assert bit-identical schedules even though thread interleaving makes
//! the injected counts differ run to run.
//!
//! Telemetry soaks under the same discipline. The server runs with
//! trace sampling on (`sample`, default 1/64) and the soak seed as the
//! telemetry seed, so every sampled trace id replays from the seed: a
//! sixth invariant asserts each loop's observed ids form a subsequence
//! of that loop's pure generator stream — bit-identical across
//! same-seed runs. Mid-run the harness scrapes `--metrics-addr` (when
//! configured), validates the `osarch-metrics/1` document with the core
//! validator (a failed scrape or validation is a violation), and the
//! report carries the final snapshot plus the sampled Chrome trace for
//! artifact upload.

use crate::client::{ClientConfig, ClientCounters, ResilientClient};
use crate::loadgen::key_space;
use crate::server::{Server, ServerConfig};
use osarch_chaos::{ChaosConfig, ChaosController, ChaosRng, Failpoint};
use osarch_core::metrics::ResilienceCounters;
use std::io::{Read, Write};
use std::net::{SocketAddr, TcpStream};
use std::sync::mpsc;
use std::sync::Arc;
use std::time::{Duration, Instant};

/// Chaos soak knobs.
#[derive(Debug, Clone)]
pub struct SoakConfig {
    /// Seed for the fault schedule and every client's jitter stream.
    pub seed: u64,
    /// Fault probability per failpoint draw.
    pub rate: f64,
    /// Soak duration in seconds.
    pub secs: f64,
    /// Concurrent client connections.
    pub conns: u32,
    /// Server worker threads.
    pub workers: usize,
    /// Cache shards.
    pub shards: usize,
    /// Trace-sampling divisor (sample one request in `sample`; 0 turns
    /// tracing off). The soak seed doubles as the telemetry seed.
    pub sample: u64,
    /// Bind a metrics scrape listener here and validate a mid-run
    /// scrape against the `osarch-metrics/1` schema.
    pub metrics_addr: Option<String>,
}

impl Default for SoakConfig {
    fn default() -> SoakConfig {
        SoakConfig {
            seed: 42,
            rate: 0.2,
            secs: 3.0,
            conns: 8,
            workers: 4,
            shards: 16,
            sample: 64,
            metrics_addr: None,
        }
    }
}

/// One failpoint's planned schedule entry.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ScheduleEntry {
    /// The failpoint label (e.g. `compute/panic`).
    pub label: &'static str,
    /// Planned injections over the schedule horizon — a pure function of
    /// the seed, identical across same-seed runs.
    pub planned: u64,
}

/// Everything a soak run observed.
#[derive(Debug, Clone)]
pub struct SoakReport {
    /// The deterministic fault schedule, one entry per failpoint.
    pub schedule: Vec<ScheduleEntry>,
    /// Sum of planned injections over the horizon.
    pub schedule_total: u64,
    /// Faults actually injected this run (interleaving-dependent).
    pub injected_total: u64,
    /// Calls that completed with a verified `ok` reply.
    pub oks: u64,
    /// Calls that failed after retries (gave up or shed).
    pub failures: u64,
    /// Merged client resilience tallies.
    pub resilience: ResilienceCounters,
    /// Server-side panics contained by per-request isolation.
    pub server_panics: u64,
    /// Server-side degraded (stale-on-error) replies.
    pub server_degraded: u64,
    /// Workers respawned after an injected death.
    pub worker_respawns: u64,
    /// Cache counters: (lookups, hits, misses, coalesced, failed).
    pub cache: (u64, u64, u64, u64, u64),
    /// Span chains captured by the trace ring at shutdown.
    pub chains_sampled: u64,
    /// Per-loop trace ids of the retained chains, in completion order —
    /// each list is a subsequence of the loop's deterministic id stream.
    pub trace_ids_by_loop: Vec<Vec<u64>>,
    /// The final `osarch-metrics/1` snapshot document.
    pub metrics_snapshot: String,
    /// The sampled requests as a Chrome-trace (`osarch-trace/1`) document.
    pub chrome_trace: String,
    /// Invariant violations; empty means the soak passed.
    pub violations: Vec<String>,
}

impl SoakReport {
    /// Whether every invariant held.
    #[must_use]
    pub fn passed(&self) -> bool {
        self.violations.is_empty()
    }
}

/// Run one chaos soak and check every invariant. The report's
/// `violations` list is the verdict; I/O errors are only returned for
/// harness failures (e.g. the listener socket itself).
pub fn run(config: &SoakConfig) -> std::io::Result<SoakReport> {
    // Injected panics are expected: keep them off stderr, but let any
    // *unexpected* panic through. The guard also serializes concurrent
    // fault-injected harnesses (the hook is process-global).
    let _quiet = osarch_chaos::QuietChaosPanics::install();

    let chaos = Arc::new(ChaosController::new(ChaosConfig {
        seed: config.seed,
        rate: config.rate,
        ..ChaosConfig::default()
    }));

    // The schedule is computed before any thread starts: it depends only
    // on the seed, never on the run.
    let schedule: Vec<ScheduleEntry> = Failpoint::ALL
        .iter()
        .map(|&fp| ScheduleEntry {
            label: fp.label(),
            planned: chaos.schedule_events(fp),
        })
        .collect();
    let schedule_total = chaos.schedule_total();

    soak_chaos_run(config, &chaos, schedule, schedule_total)
}

fn soak_chaos_run(
    config: &SoakConfig,
    chaos: &Arc<ChaosController>,
    schedule: Vec<ScheduleEntry>,
    schedule_total: u64,
) -> std::io::Result<SoakReport> {
    let handle = Server::start(&ServerConfig {
        workers: config.workers,
        shards: config.shards,
        queue_depth: (config.conns as usize * 2).max(64),
        // Tight deadline: injected compute delays (20–120 ms) overrun it,
        // exercising the deadline-exceeded error path under chaos.
        deadline: Duration::from_millis(50),
        write_timeout: Duration::from_millis(500),
        chaos: Some(Arc::clone(chaos)),
        sample_every: config.sample,
        telemetry_seed: config.seed,
        metrics_addr: config.metrics_addr.clone(),
        ..ServerConfig::default()
    })?;
    let addr = handle.addr().to_string();
    let stats = handle.stats();
    let mut violations: Vec<String> = Vec::new();

    // Drive the clients. Each reports its tallies over a channel; the
    // watchdog receive below is the deadlock detector.
    let duration = Duration::from_secs_f64(config.secs.max(0.5));
    let stop_at = Instant::now() + duration;
    let (tx, rx) = mpsc::channel::<(u32, u64, u64, ClientCounters)>();
    let mut threads = Vec::new();
    for conn in 0..config.conns {
        let tx = tx.clone();
        let addr = addr.clone();
        let chaos = Arc::clone(chaos);
        let seed = config.seed ^ (u64::from(conn) + 1).wrapping_mul(0x9e37_79b9_7f4a_7c15);
        threads.push(std::thread::spawn(move || {
            let (oks, failures, counters) = soak_client(&addr, seed, stop_at, &chaos);
            // A dropped receiver means the watchdog already gave up.
            let _ = tx.send((conn, oks, failures, counters));
        }));
    }
    drop(tx);

    // Mid-run scrape: hit the metrics listener while faults are flying
    // and hold the document to the schema. The clients keep the server
    // busy on their own threads while this one sleeps to the midpoint.
    if let Some(scrape_addr) = handle.metrics_addr() {
        std::thread::sleep(duration / 2);
        match scrape_metrics_json(scrape_addr) {
            Ok(body) => {
                if let Err(reason) = osarch_core::metrics::validate_metrics_snapshot(&body) {
                    violations.push(format!("METRICS: mid-run snapshot rejected: {reason}"));
                }
            }
            Err(err) => violations.push(format!("METRICS: mid-run scrape failed: {err}")),
        }
    }

    let mut oks = 0u64;
    let mut failures = 0u64;
    let mut resilience = ResilienceCounters::default();
    let watchdog = duration + Duration::from_secs(30);
    for _ in 0..config.conns {
        match rx.recv_timeout(watchdog) {
            Ok((_, conn_oks, conn_failures, counters)) => {
                oks += conn_oks;
                failures += conn_failures;
                merge(&mut resilience, counters);
            }
            Err(_) => {
                violations.push(format!(
                    "DEADLOCK: a client thread failed to report within {watchdog:?}"
                ));
                break;
            }
        }
    }
    // Only join what finished; a deadlocked thread would block forever.
    if violations.is_empty() {
        for thread in threads {
            let _ = thread.join();
        }
    }

    // Invariant 3 (first half): every worker alive (deaths respawned).
    let live_during = stats.workers_live();
    if live_during != config.workers as u64 {
        violations.push(format!(
            "LEAKED WORKER: {live_during} of {} workers live before shutdown",
            config.workers
        ));
    }

    let (hits, misses, coalesced) = handle.cache_stats();
    let (cache_failed, cache_degraded) = handle.cache_failure_stats();
    let lookups = handle.cache_lookups();
    let server_panics = stats.panics();
    let server_degraded = stats.degraded();
    let worker_respawns = stats.worker_respawns();
    let injected_total = chaos.injected_total();

    // Telemetry exports, taken while the server is still up: the final
    // snapshot, the sampled chains as a Chrome trace, and the per-loop
    // trace-id sequences for the replay invariant.
    let metrics_snapshot = handle.metrics_snapshot_json();
    let hub = handle.telemetry();
    let chains = hub.chains();
    let chains_sampled = hub.chains_sampled();
    let chrome_trace = osarch_core::metrics::serve_chains_chrome_json(&chains);
    let mut trace_ids_by_loop: Vec<Vec<u64>> = vec![Vec::new(); config.workers];
    for chain in &chains {
        if let Some(ids) = trace_ids_by_loop.get_mut(chain.loop_index) {
            ids.push(chain.trace_id);
        }
    }
    handle.stop();

    // Invariant 1: zero client-visible corruption.
    if resilience.corrupt > 0 {
        violations.push(format!(
            "CORRUPTION: {} replies failed verification",
            resilience.corrupt
        ));
    }
    // Invariant 3 (second half): shutdown reaps every worker.
    let live_after = stats.workers_live();
    if live_after != 0 {
        violations.push(format!("LEAKED WORKER: {live_after} live after stop"));
    }
    // Invariant 4: every stale reply the client saw was flagged, and the
    // server flagged at least as many as the clients observed (some are
    // torn in flight by write faults and never reach a client).
    if resilience.degraded > server_degraded {
        violations.push(format!(
            "UNFLAGGED DEGRADATION: clients saw {} degraded replies, server served {}",
            resilience.degraded, server_degraded
        ));
    }
    if server_degraded > cache_degraded {
        violations.push(format!(
            "DEGRADED MISCOUNT: server {server_degraded} > cache {cache_degraded}"
        ));
    }
    // Invariant 5: single-flight accounting is exact.
    if lookups != hits + misses + coalesced {
        violations.push(format!(
            "SINGLE-FLIGHT ACCOUNTING: {lookups} lookups != {hits} hits + \
             {misses} misses + {coalesced} coalesced"
        ));
    }
    // Sanity: the soak must have actually exercised the system.
    if oks == 0 {
        violations.push("NO PROGRESS: zero successful requests".to_string());
    }
    // Invariant 6: telemetry replays from the seed. Every retained trace
    // id must appear, in order, in its loop's pure SplitMix64 stream —
    // the stream a same-seed rerun regenerates bit-identically.
    for (loop_index, ids) in trace_ids_by_loop.iter().enumerate() {
        if let Some(missing) = first_id_off_stream(&hub, loop_index, ids) {
            violations.push(format!(
                "TRACE REPLAY: loop {loop_index} id {missing:#018x} is not on the \
                 seeded id stream"
            ));
        }
    }
    // Mid-run snapshot was validated live; hold the final one too.
    if let Err(reason) = osarch_core::metrics::validate_metrics_snapshot(&metrics_snapshot) {
        violations.push(format!("METRICS: final snapshot rejected: {reason}"));
    }

    Ok(SoakReport {
        schedule,
        schedule_total,
        injected_total,
        oks,
        failures,
        resilience,
        server_panics,
        server_degraded,
        worker_respawns,
        cache: (lookups, hits, misses, coalesced, cache_failed),
        chains_sampled,
        trace_ids_by_loop,
        metrics_snapshot,
        chrome_trace,
        violations,
    })
}

/// Check every observed trace id against one loop's seeded id stream;
/// returns an id that falls off the stream (`None` means the replay
/// invariant holds). Membership, not order: chains complete in reply
/// order, which pipelining decouples from id-draw order. The scan
/// horizon is generous — two draws per sampled request, bounded far
/// above any soak's volume.
fn first_id_off_stream(
    hub: &osarch_telemetry::TelemetryHub,
    loop_index: usize,
    observed: &[u64],
) -> Option<u64> {
    const HORIZON: u64 = 4_000_000;
    let mut pending: std::collections::HashSet<u64> = observed.iter().copied().collect();
    if pending.is_empty() {
        return None;
    }
    let mut stream = hub.ids_for(loop_index);
    for _ in 0..HORIZON {
        pending.remove(&stream.next_id());
        if pending.is_empty() {
            return None;
        }
    }
    pending.into_iter().next()
}

/// One HTTP/1.0 GET against the scrape listener's JSON path, returning
/// the response body.
fn scrape_metrics_json(addr: SocketAddr) -> std::io::Result<String> {
    let mut stream = TcpStream::connect_timeout(&addr, Duration::from_secs(2))?;
    stream.set_read_timeout(Some(Duration::from_secs(5)))?;
    stream.write_all(b"GET /metrics/json HTTP/1.0\r\nConnection: close\r\n\r\n")?;
    let mut response = String::new();
    stream.read_to_string(&mut response)?;
    let body = response.split_once("\r\n\r\n").map_or("", |(_, body)| body);
    if body.is_empty() {
        return Err(std::io::Error::new(
            std::io::ErrorKind::UnexpectedEof,
            "scrape response carried no body",
        ));
    }
    Ok(body.to_string())
}

/// One soak client: closed-loop requests over the measure key space with
/// a fault-injecting resilient client, until the stop time.
fn soak_client(
    addr: &str,
    seed: u64,
    stop_at: Instant,
    chaos: &Arc<ChaosController>,
) -> (u64, u64, ClientCounters) {
    let mut client = ResilientClient::new(
        addr,
        ClientConfig {
            seed,
            attempts: 3,
            attempt_timeout: Duration::from_millis(800),
            backoff_base: Duration::from_micros(200),
            backoff_max: Duration::from_millis(10),
            breaker_threshold: 8,
            breaker_cooldown: 4,
            validate_replies: true,
        },
    )
    .with_chaos(Arc::clone(chaos));
    let keys = key_space();
    let mut rng = ChaosRng::new(seed ^ 0x0050_414b);
    let mut oks = 0u64;
    let mut failures = 0u64;
    let mut request_id = 0u64;
    while Instant::now() < stop_at {
        let (arch, primitive) = keys[rng.range(keys.len() as u64) as usize];
        request_id += 1;
        let id_token = request_id.to_string();
        let line = format!(
            "{{\"op\":\"measure\",\"arch\":\"{arch}\",\"primitive\":\"{}\",\"id\":{id_token}}}",
            primitive.tag()
        );
        match client.call(&line, &id_token) {
            Ok(_) => oks += 1,
            Err(_) => failures += 1,
        }
    }
    (oks, failures, client.counters())
}

fn merge(total: &mut ResilienceCounters, c: ClientCounters) {
    total.retries += c.retries;
    total.giveups += c.giveups;
    total.breaker_opens += c.breaker_opens;
    total.degraded += c.degraded;
    total.timeouts += c.timeouts;
    total.conn_resets += c.conn_resets;
    total.server_errors += c.server_errors;
    total.breaker_open += c.breaker_shed;
    total.corrupt += c.corrupt;
}

/// The `osarch chaos` front end: parse `args`, run the soak, print the
/// verdict. `Err` carries a one-line usage error (exit 2 at the caller).
pub fn cli(args: &[String], prog: &str) -> Result<std::process::ExitCode, String> {
    use std::process::ExitCode;
    let mut config = SoakConfig::default();
    let mut metrics_out: Option<String> = None;
    let mut trace_out: Option<String> = None;
    let mut rest = args.iter();
    let parse = |flag: &str, value: Option<&String>| -> Result<String, String> {
        value
            .cloned()
            .ok_or_else(|| format!("{flag} requires a value"))
    };
    while let Some(arg) = rest.next() {
        match arg.as_str() {
            "--seed" => {
                config.seed = parse("--seed", rest.next())?
                    .parse()
                    .map_err(|_| "--seed expects an integer".to_string())?;
            }
            "--rate" => {
                config.rate = parse("--rate", rest.next())?
                    .parse()
                    .map_err(|_| "--rate expects a probability in [0,1]".to_string())?;
                if !(0.0..=1.0).contains(&config.rate) {
                    return Err("--rate expects a probability in [0,1]".to_string());
                }
            }
            "--duration" => {
                config.secs = parse("--duration", rest.next())?
                    .parse()
                    .map_err(|_| "--duration expects seconds".to_string())?;
            }
            "--conns" => {
                config.conns = parse("--conns", rest.next())?
                    .parse()
                    .map_err(|_| "--conns expects a positive integer".to_string())?;
            }
            "--workers" => {
                config.workers = parse("--workers", rest.next())?
                    .parse()
                    .map_err(|_| "--workers expects a positive integer".to_string())?;
            }
            "--sample" => {
                config.sample = parse("--sample", rest.next())?
                    .parse()
                    .map_err(|_| "--sample expects an integer divisor (0 disables)".to_string())?;
            }
            "--metrics-addr" => {
                config.metrics_addr = Some(parse("--metrics-addr", rest.next())?);
            }
            "--metrics-out" => metrics_out = Some(parse("--metrics-out", rest.next())?),
            "--trace-out" => trace_out = Some(parse("--trace-out", rest.next())?),
            other => {
                return Err(format!(
                    "unknown argument {other:?}\nusage: {prog} [--seed N] [--rate P] \
                     [--duration S] [--conns N] [--workers N] [--sample N] \
                     [--metrics-addr HOST:PORT] [--metrics-out PATH] [--trace-out PATH]"
                ))
            }
        }
    }
    if config.conns == 0 {
        return Err("--conns must be at least 1".to_string());
    }
    let report = match run(&config) {
        Ok(report) => report,
        Err(err) => {
            eprintln!("chaos soak failed to start: {err}");
            return Ok(ExitCode::FAILURE);
        }
    };
    println!(
        "chaos soak: seed {} rate {} for {:.1}s ({} conns, {} workers)",
        config.seed, config.rate, config.secs, config.conns, config.workers
    );
    println!(
        "schedule ({} planned events over the horizon):",
        report.schedule_total
    );
    for entry in &report.schedule {
        println!("  {:<18} {}", entry.label, entry.planned);
    }
    let r = &report.resilience;
    println!(
        "traffic: {} ok, {} failed | {} injected | retries {} giveups {} \
         breaker_opens {} degraded {}",
        report.oks,
        report.failures,
        report.injected_total,
        r.retries,
        r.giveups,
        r.breaker_opens,
        r.degraded
    );
    println!(
        "error classes: timeout={} conn_reset={} server_error={} breaker_open={}",
        r.timeouts, r.conn_resets, r.server_errors, r.breaker_open
    );
    let (lookups, hits, misses, coalesced, failed) = report.cache;
    println!(
        "server: {} panics contained, {} degraded, {} worker respawns | \
         cache {} lookups = {} hits + {} misses + {} coalesced ({} failed)",
        report.server_panics,
        report.server_degraded,
        report.worker_respawns,
        lookups,
        hits,
        misses,
        coalesced,
        failed
    );
    println!(
        "telemetry: sampling {} | {} chains sampled ({} retained) across {} loops",
        if config.sample == 0 {
            "off".to_string()
        } else {
            format!("1/{}", config.sample)
        },
        report.chains_sampled,
        report.trace_ids_by_loop.iter().map(Vec::len).sum::<usize>(),
        report.trace_ids_by_loop.len()
    );
    if let Some(path) = &metrics_out {
        if let Err(err) = std::fs::write(path, &report.metrics_snapshot) {
            eprintln!("cannot write {path}: {err}");
            return Ok(ExitCode::FAILURE);
        }
        println!("wrote {path} (osarch-metrics/1 snapshot)");
    }
    if let Some(path) = &trace_out {
        if let Err(err) = std::fs::write(path, &report.chrome_trace) {
            eprintln!("cannot write {path}: {err}");
            return Ok(ExitCode::FAILURE);
        }
        println!("wrote {path} (osarch-trace/1 Chrome trace)");
    }
    if report.passed() {
        println!("PASS: all invariants held");
        Ok(ExitCode::SUCCESS)
    } else {
        for violation in &report.violations {
            eprintln!("FAIL: {violation}");
        }
        Ok(ExitCode::FAILURE)
    }
}
