//! `osarch top ADDR` — a live terminal dashboard over the `metrics` op.
//!
//! Connects to a running `osarch-serve` instance, issues one
//! `{"op":"metrics"}` query per refresh (1 Hz by default), and renders
//! the `osarch-metrics/1` snapshot as a plain-ANSI screen: throughput
//! (derived from the totals delta between refreshes), per-op tail
//! percentiles out of the windowed histograms, event-loop lag, cache
//! hit ratio, and the resilience counters. No TUI dependency — the only
//! control codes used are cursor-home and clear-screen, so the output
//! also pipes cleanly with `--once`.
//!
//! The snapshot is scraped with the same deterministic substring scans
//! the loadgen uses on `stats` replies: the emitter in `core/metrics`
//! writes every key in a fixed order, so a JSON parser would buy
//! nothing but a dependency.
//!
//! A failed scrape does not kill the dashboard: cluster soaks kill and
//! respawn whole nodes, so the watch loop retries with exponential
//! backoff (500 ms doubling to 8 s) and only gives up after the target
//! has been unreachable for `--retry-secs` (default 120, `0` restores
//! fail-fast). `--once` always fails fast — it exists for scripts.

use std::io::{BufRead, BufReader, Write};
use std::net::TcpStream;
use std::time::Duration;

/// One parsed refresh of the `metrics` snapshot — just the fields the
/// dashboard renders, scraped from the JSON document.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct TopSnapshot {
    /// Server uptime in microseconds.
    pub uptime_us: u64,
    /// Trace-sampling divisor (0 = tracing off).
    pub sample_every: u64,
    /// Lifetime request total (throughput derives from its delta).
    pub requests: u64,
    /// Lifetime error total.
    pub errors: u64,
    /// Lifetime degraded-reply total.
    pub degraded: u64,
    /// Lifetime worker respawns.
    pub worker_respawns: u64,
    /// Lifetime injected faults.
    pub faults_injected: u64,
    /// Lifetime spec swaps committed by the registry.
    pub swaps: u64,
    /// Lifetime automatic/explicit spec rollbacks.
    pub rollbacks: u64,
    /// Active spec-registry epoch (1 = the built-ins).
    pub registry_epoch: u64,
    /// Cache hit ratio over the server lifetime (hits+coalesced / lookups).
    pub cache_hit_ratio: f64,
    /// Open connections right now.
    pub conns_open: u64,
    /// Open-connection budget.
    pub conn_budget: u64,
    /// Configured event loops.
    pub workers: u64,
    /// Live event loops.
    pub workers_live: u64,
    /// Compute-offload queue depth right now.
    pub compute_backlog: u64,
    /// Oldest unflushed write backlog, milliseconds.
    pub oldest_write_backlog_ms: u64,
    /// Whether graceful shutdown is in progress.
    pub shutting_down: bool,
    /// Event-loop busy-time p99 over the retained window, microseconds.
    pub loop_lag_p99_us: u64,
    /// Per-op latency rows over the retained window.
    pub ops: Vec<OpRow>,
}

/// One op's windowed latency line.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct OpRow {
    /// Protocol op name.
    pub op: String,
    /// Requests recorded in the retained window.
    pub count: u64,
    /// Median latency, microseconds.
    pub p50: u64,
    /// 99th percentile latency, microseconds.
    pub p99: u64,
    /// 99.9th percentile latency, microseconds.
    pub p999: u64,
    /// Worst observed latency, microseconds.
    pub max: u64,
}

/// Scrape one unsigned integer that follows `"key":` in `doc`.
fn num(doc: &str, key: &str) -> u64 {
    let needle = format!("\"{key}\":");
    doc.find(&needle)
        .and_then(|at| {
            let digits: String = doc[at + needle.len()..]
                .chars()
                .take_while(char::is_ascii_digit)
                .collect();
            digits.parse().ok()
        })
        .unwrap_or(0)
}

/// Scrape one decimal number (integer or fractional) after `"key":`.
fn float(doc: &str, key: &str) -> f64 {
    let needle = format!("\"{key}\":");
    doc.find(&needle)
        .and_then(|at| {
            let digits: String = doc[at + needle.len()..]
                .chars()
                .take_while(|c| c.is_ascii_digit() || *c == '.' || *c == '-')
                .collect();
            digits.parse().ok()
        })
        .unwrap_or(0.0)
}

/// Slice `doc` from the first occurrence of `marker` (empty if absent),
/// so scans for repeated keys land inside the right object.
fn section<'doc>(doc: &'doc str, marker: &str) -> &'doc str {
    doc.find(marker).map_or("", |at| &doc[at..])
}

/// Parse the dashboard's fields out of a `metrics` snapshot document
/// (either the raw scrape body or the payload inside a reply envelope).
#[must_use]
pub fn parse_snapshot(doc: &str) -> TopSnapshot {
    let totals = section(doc, "\"totals\":");
    let gauges = section(doc, "\"gauges\":");
    let lag = section(doc, "\"loop_lag_us\":");
    let mut ops = Vec::new();
    // Each per-op row opens with `{"op":"name",` — fixed emitter order.
    let mut rest = section(doc, "\"ops\":[");
    while let Some(at) = rest.find("{\"op\":\"") {
        rest = &rest[at + 7..];
        let Some(end) = rest.find('"') else { break };
        let op = rest[..end].to_string();
        let row = match rest.find("{\"op\":\"") {
            Some(next) => &rest[..next],
            None => rest,
        };
        ops.push(OpRow {
            op,
            count: num(row, "count"),
            p50: num(row, "p50"),
            p99: num(row, "p99"),
            p999: num(row, "p999"),
            max: num(row, "max"),
        });
    }
    TopSnapshot {
        uptime_us: num(doc, "uptime_us"),
        sample_every: num(doc, "sample_every"),
        requests: num(totals, "requests"),
        errors: num(totals, "errors"),
        degraded: num(totals, "degraded"),
        worker_respawns: num(totals, "worker_respawns"),
        faults_injected: num(totals, "faults_injected"),
        swaps: num(totals, "swaps"),
        rollbacks: num(totals, "rollbacks"),
        registry_epoch: num(gauges, "registry_epoch"),
        cache_hit_ratio: float(gauges, "cache_hit_ratio"),
        conns_open: num(gauges, "conns_open"),
        conn_budget: num(gauges, "conn_budget"),
        workers: num(gauges, "workers"),
        workers_live: num(gauges, "workers_live"),
        compute_backlog: num(gauges, "compute_backlog"),
        oldest_write_backlog_ms: num(gauges, "oldest_write_backlog_ms"),
        shutting_down: section(gauges, "\"shutting_down\":").starts_with("\"shutting_down\":true"),
        loop_lag_p99_us: num(lag, "p99"),
        ops,
    }
}

/// Render one dashboard frame. Pure: `prev` (the previous refresh, if
/// any) and the elapsed seconds between them yield the throughput line.
#[must_use]
pub fn render(addr: &str, prev: Option<&TopSnapshot>, cur: &TopSnapshot, elapsed_s: f64) -> String {
    let mut out = String::with_capacity(1536);
    let rps = match prev {
        Some(prev) if elapsed_s > 0.0 => {
            cur.requests.saturating_sub(prev.requests) as f64 / elapsed_s
        }
        _ => 0.0,
    };
    let state = if cur.shutting_down {
        "SHUTTING DOWN"
    } else if cur.workers_live < cur.workers {
        "DEGRADED"
    } else {
        "ok"
    };
    out.push_str(&format!(
        "osarch top — {addr}   uptime {:.1}s   [{state}]\n",
        cur.uptime_us as f64 / 1e6
    ));
    out.push_str(&format!(
        "throughput {rps:>8.0} req/s   requests {}   errors {}   degraded {}\n",
        cur.requests, cur.errors, cur.degraded
    ));
    out.push_str(&format!(
        "cache hit ratio {:.3}   conns {}/{}   workers {}/{} live   respawns {}   faults {}\n",
        cur.cache_hit_ratio,
        cur.conns_open,
        cur.conn_budget,
        cur.workers_live,
        cur.workers,
        cur.worker_respawns,
        cur.faults_injected
    ));
    out.push_str(&format!(
        "spec epoch {}   swaps {}   rollbacks {}\n",
        cur.registry_epoch, cur.swaps, cur.rollbacks
    ));
    out.push_str(&format!(
        "loop lag p99 {} us   offload queue {}   write backlog {} ms   sampling {}\n",
        cur.loop_lag_p99_us,
        cur.compute_backlog,
        cur.oldest_write_backlog_ms,
        if cur.sample_every == 0 {
            "off".to_string()
        } else {
            format!("1/{}", cur.sample_every)
        }
    ));
    out.push_str(&format!(
        "\n{:<10} {:>10} {:>9} {:>9} {:>9} {:>9}\n",
        "op", "count", "p50 us", "p99 us", "p999 us", "max us"
    ));
    for row in &cur.ops {
        if row.count == 0 {
            continue;
        }
        out.push_str(&format!(
            "{:<10} {:>10} {:>9} {:>9} {:>9} {:>9}\n",
            row.op, row.count, row.p50, row.p99, row.p999, row.max
        ));
    }
    if cur.ops.iter().all(|row| row.count == 0) {
        out.push_str("(no requests in the retained window)\n");
    }
    out
}

/// Issue one `metrics` query on a fresh connection and return the reply
/// line (envelope included — the parser scans through it).
fn fetch(addr: &str) -> std::io::Result<String> {
    let stream = TcpStream::connect(addr)?;
    stream.set_read_timeout(Some(Duration::from_secs(5)))?;
    let mut writer = stream.try_clone()?;
    writeln!(writer, "{{\"op\":\"metrics\",\"id\":0}}")?;
    writer.flush()?;
    let mut reply = String::new();
    BufReader::new(stream).read_line(&mut reply)?;
    if reply.is_empty() {
        return Err(std::io::Error::new(
            std::io::ErrorKind::UnexpectedEof,
            "server closed the connection before replying",
        ));
    }
    Ok(reply)
}

/// First pause after a failed scrape; doubles up to [`BACKOFF_MAX`].
const BACKOFF_START: Duration = Duration::from_millis(500);

/// Ceiling on the reconnect pause between scrape attempts.
const BACKOFF_MAX: Duration = Duration::from_secs(8);

/// The `osarch top` front end: `top ADDR [--interval-ms N]
/// [--iterations N] [--retry-secs N] [--once]`. `Err` carries a usage
/// error (exit 2 at the caller).
pub fn cli(args: &[String], prog: &str) -> Result<std::process::ExitCode, String> {
    use std::process::ExitCode;
    let usage = format!(
        "usage: {prog} top ADDR [--interval-ms N] [--iterations N] [--retry-secs N] [--once]"
    );
    let mut addr: Option<String> = None;
    let mut interval = Duration::from_millis(1000);
    let mut iterations: Option<u64> = None;
    let mut retry_window = Duration::from_secs(120);
    let mut rest = args.iter();
    while let Some(arg) = rest.next() {
        match arg.as_str() {
            "--retry-secs" => {
                let value = rest
                    .next()
                    .ok_or_else(|| format!("--retry-secs requires a value\n{usage}"))?;
                let secs: u64 = value
                    .parse()
                    .map_err(|_| format!("--retry-secs expects seconds\n{usage}"))?;
                retry_window = Duration::from_secs(secs);
            }
            "--interval-ms" => {
                let value = rest
                    .next()
                    .ok_or_else(|| format!("--interval-ms requires a value\n{usage}"))?;
                let ms: u64 = value
                    .parse()
                    .map_err(|_| format!("--interval-ms expects milliseconds\n{usage}"))?;
                interval = Duration::from_millis(ms.max(50));
            }
            "--iterations" => {
                let value = rest
                    .next()
                    .ok_or_else(|| format!("--iterations requires a value\n{usage}"))?;
                iterations = Some(
                    value
                        .parse()
                        .map_err(|_| format!("--iterations expects an integer\n{usage}"))?,
                );
            }
            "--once" => iterations = Some(1),
            other if addr.is_none() && !other.starts_with("--") => {
                addr = Some(other.to_string());
            }
            other => return Err(format!("unknown argument {other:?}\n{usage}")),
        }
    }
    let Some(addr) = addr else {
        return Err(usage);
    };
    let once = iterations == Some(1);
    let mut prev: Option<TopSnapshot> = None;
    let mut last_at = std::time::Instant::now();
    let mut frame = 0u64;
    // Reconnect state: `down_since` marks the start of the current
    // outage (None while healthy), `backoff` the next retry pause.
    let mut down_since: Option<std::time::Instant> = None;
    let mut backoff = BACKOFF_START;
    loop {
        let reply = match fetch(&addr) {
            Ok(reply) => reply,
            Err(err) => {
                let since = *down_since.get_or_insert_with(std::time::Instant::now);
                if once || retry_window.is_zero() || since.elapsed() >= retry_window {
                    eprintln!("osarch top: cannot scrape {addr}: {err}");
                    return Ok(ExitCode::FAILURE);
                }
                eprintln!(
                    "osarch top: {addr} unreachable ({err}); retrying in {:.1}s (giving up after {}s down)",
                    backoff.as_secs_f64(),
                    retry_window.as_secs()
                );
                std::thread::sleep(backoff);
                backoff = (backoff * 2).min(BACKOFF_MAX);
                continue;
            }
        };
        if down_since.take().is_some() {
            // The target restarted: its lifetime totals reset, so the
            // previous snapshot would render a bogus throughput delta.
            prev = None;
            backoff = BACKOFF_START;
        }
        if !reply.contains("\"ok\":true") {
            eprintln!(
                "osarch top: {addr} rejected the metrics query: {}",
                reply.trim()
            );
            return Ok(ExitCode::FAILURE);
        }
        let cur = parse_snapshot(&reply);
        if prev
            .as_ref()
            .is_some_and(|p| p.registry_epoch != cur.registry_epoch)
        {
            // A live spec swap landed between refreshes: the request mix
            // changed epochs, so the throughput delta would compare
            // incomparable windows — reset it, exactly as a restart does.
            prev = None;
        }
        let elapsed = last_at.elapsed().as_secs_f64();
        last_at = std::time::Instant::now();
        let screen = render(&addr, prev.as_ref(), &cur, elapsed);
        if once {
            print!("{screen}");
        } else {
            // Cursor home + clear: the whole frame repaints in place.
            print!("\x1b[H\x1b[2J{screen}");
        }
        let _ = std::io::stdout().flush();
        prev = Some(cur);
        frame += 1;
        if iterations.is_some_and(|n| frame >= n) {
            return Ok(ExitCode::SUCCESS);
        }
        std::thread::sleep(interval);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample_doc() -> String {
        // A real snapshot out of the real emitter, so the scraper and
        // the producer cannot drift apart silently.
        let hub = osarch_telemetry::TelemetryHub::new(2, &crate::stats::OP_NAMES, 64, 7);
        hub.record_op(0, 1, 150, 3);
        hub.record_op(0, 1, 950, 3);
        hub.record_op(1, 0, 40, 3);
        hub.record_loop_lag(0, 90, 3);
        hub.bump(0, osarch_telemetry::COUNTER_REQUESTS, 3, 3);
        let snapshot = hub.snapshot(
            4_500_000,
            osarch_telemetry::Gauges {
                conns_open: 5,
                conn_budget: 1024,
                workers: 2,
                workers_live: 2,
                compute_backlog: 1,
                oldest_write_backlog_ms: 12,
                registry_epoch: 3,
                shutting_down: false,
            },
            osarch_telemetry::Totals {
                requests: 300,
                errors: 4,
                degraded: 2,
                cache_hits: 60,
                cache_misses: 40,
                swaps: 2,
                rollbacks: 1,
                ..osarch_telemetry::Totals::default()
            },
        );
        osarch_core::metrics::metrics_snapshot_json(&snapshot)
    }

    #[test]
    fn parse_reads_the_real_emitter_shape() {
        let snap = parse_snapshot(&sample_doc());
        assert_eq!(snap.uptime_us, 4_500_000);
        assert_eq!(snap.sample_every, 64);
        assert_eq!(snap.requests, 300);
        assert_eq!(snap.errors, 4);
        assert_eq!(snap.degraded, 2);
        assert_eq!(snap.conns_open, 5);
        assert_eq!(snap.conn_budget, 1024);
        assert_eq!(snap.workers, 2);
        assert_eq!(snap.workers_live, 2);
        assert_eq!(snap.compute_backlog, 1);
        assert_eq!(snap.oldest_write_backlog_ms, 12);
        assert_eq!(snap.registry_epoch, 3);
        assert_eq!(snap.swaps, 2);
        assert_eq!(snap.rollbacks, 1);
        assert!(!snap.shutting_down);
        assert!((snap.cache_hit_ratio - 0.6).abs() < 1e-9);
        assert_eq!(snap.loop_lag_p99_us, 90);
        assert_eq!(snap.ops.len(), crate::stats::OP_NAMES.len());
        let measure = snap.ops.iter().find(|row| row.op == "measure").unwrap();
        assert_eq!(measure.count, 2);
        assert!(measure.p50 >= 150 && measure.p50 < 950);
        assert!(measure.p999 >= 950);
        let ping = snap.ops.iter().find(|row| row.op == "ping").unwrap();
        assert_eq!(ping.count, 1);
    }

    #[test]
    fn parse_scans_through_a_reply_envelope() {
        let payload = sample_doc();
        let envelope = crate::protocol::ok_envelope("7", false, 3, 120, payload.trim_end());
        let snap = parse_snapshot(&envelope);
        assert_eq!(snap.requests, 300);
        assert_eq!(snap.conn_budget, 1024);
    }

    #[test]
    fn render_shows_throughput_delta_and_rows() {
        let mut prev = parse_snapshot(&sample_doc());
        let mut cur = prev.clone();
        prev.requests = 100;
        cur.requests = 350;
        let screen = render("127.0.0.1:1", Some(&prev), &cur, 1.0);
        assert!(screen.contains("250 req/s"), "screen: {screen}");
        assert!(screen.contains("[ok]"));
        assert!(screen.contains("measure"));
        assert!(screen.contains("cache hit ratio 0.600"));
        assert!(screen.contains("spec epoch 3   swaps 2   rollbacks 1"));
        assert!(!screen.contains('\x1b'), "render itself is ANSI-free");
        // A dead loop flips the state flag.
        cur.workers_live = 1;
        let degraded = render("127.0.0.1:1", None, &cur, 1.0);
        assert!(degraded.contains("[DEGRADED]"));
    }

    #[test]
    fn cli_rejects_missing_addr_and_unknown_flags() {
        assert!(cli(&[], "osarch").is_err());
        let args = vec!["127.0.0.1:9".to_string(), "--bogus".to_string()];
        assert!(cli(&args, "osarch").unwrap_err().contains("--bogus"));
        let args = vec!["127.0.0.1:9".to_string(), "--retry-secs".to_string()];
        assert!(cli(&args, "osarch").unwrap_err().contains("--retry-secs"));
    }

    fn args_of(parts: &[&str]) -> Vec<String> {
        parts.iter().map(ToString::to_string).collect()
    }

    /// Reserve a loopback port and free it, so the address is dialable
    /// in form but has no listener behind it.
    fn dead_addr() -> String {
        let listener = std::net::TcpListener::bind("127.0.0.1:0").expect("reserve port");
        let port = listener.local_addr().expect("local addr").port();
        format!("127.0.0.1:{port}")
    }

    #[test]
    fn cli_fails_fast_with_once_or_a_zero_retry_window() {
        let failure = format!("{:?}", std::process::ExitCode::FAILURE);
        let addr = dead_addr();
        let code = cli(&args_of(&[&addr, "--once"]), "osarch").expect("not a usage error");
        assert_eq!(format!("{code:?}"), failure);
        let code = cli(&args_of(&[&addr, "--retry-secs", "0"]), "osarch").expect("parses");
        assert_eq!(format!("{code:?}"), failure);
    }

    #[test]
    fn cli_retries_through_an_outage_then_gives_up_at_the_window() {
        let addr = dead_addr();
        let started = std::time::Instant::now();
        let code = cli(&args_of(&[&addr, "--retry-secs", "1"]), "osarch").expect("parses");
        assert_eq!(
            format!("{code:?}"),
            format!("{:?}", std::process::ExitCode::FAILURE)
        );
        assert!(
            started.elapsed() >= Duration::from_millis(900),
            "gave up before the retry window elapsed: {:?}",
            started.elapsed()
        );
    }

    #[test]
    fn cli_reconnects_when_the_target_comes_up_late() {
        let addr = dead_addr();
        let spawn_addr = addr.clone();
        let spawner = std::thread::spawn(move || {
            // Let the dashboard fail its first scrape(s) first.
            std::thread::sleep(Duration::from_millis(700));
            crate::server::Server::start(&crate::server::ServerConfig {
                addr: spawn_addr,
                workers: 1,
                compute_threads: 1,
                ..crate::server::ServerConfig::default()
            })
            .expect("late server starts")
        });
        let args = args_of(&[
            &addr,
            "--interval-ms",
            "50",
            "--iterations",
            "2",
            "--retry-secs",
            "30",
        ]);
        let code = cli(&args, "osarch").expect("not a usage error");
        assert_eq!(
            format!("{code:?}"),
            format!("{:?}", std::process::ExitCode::SUCCESS)
        );
        spawner.join().expect("server thread").stop();
    }
}
