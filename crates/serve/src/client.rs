//! The resilient protocol client.
//!
//! Everything that drives a server from this repo — the load generator,
//! the chaos soak, the CLI — goes through [`ResilientClient`], which
//! turns the raw line protocol into a request loop that survives a
//! misbehaving server or network:
//!
//! * **per-attempt timeouts** — every attempt reads under a deadline, so
//!   a stalled response costs one attempt, not the whole run;
//! * **bounded retries with exponential backoff + deterministic jitter**
//!   — backoff durations are a pure function of the client's seed and
//!   the attempt index (no wall clock in the schedule decision), so a
//!   run's retry schedule replays exactly;
//! * **a circuit breaker** — after `breaker_threshold` consecutive
//!   failures the breaker opens and sheds the next `breaker_cooldown`
//!   calls without touching the network, then half-opens for a single
//!   probe. The cooldown is counted in *calls*, not seconds, keeping the
//!   breaker deterministic too;
//! * **reply verification** — a reply must be a complete line, parse as
//!   JSON, and echo the request id. Anything torn or mismatched counts
//!   as corruption, which the chaos soak asserts never happens silently.
//!
//! The client can also play the hostile peer: given a
//! [`ChaosController`], it truncates, splits, stalls and resets its own
//! requests on the controller's schedule, exercising the server's
//! framing and cleanup paths.

use osarch_chaos::{ChaosController, ChaosRng, Failpoint};
use std::io::{BufRead, BufReader, ErrorKind, Write};
use std::net::TcpStream;
use std::sync::Arc;
use std::time::Duration;

/// Client resilience knobs.
#[derive(Debug, Clone)]
pub struct ClientConfig {
    /// Attempts per request (first try + retries).
    pub attempts: u32,
    /// Read deadline per attempt.
    pub attempt_timeout: Duration,
    /// Backoff before retry k is `backoff_base * 2^k` plus jitter,
    /// capped at `backoff_max`.
    pub backoff_base: Duration,
    /// Upper bound on a single backoff sleep.
    pub backoff_max: Duration,
    /// Consecutive failures that open the circuit breaker.
    pub breaker_threshold: u32,
    /// Calls shed while the breaker is open, before half-opening.
    pub breaker_cooldown: u32,
    /// Seed for the deterministic jitter stream.
    pub seed: u64,
    /// Validate every reply as JSON (the soak's corruption check); when
    /// off, only framing and id-echo are verified.
    pub validate_replies: bool,
}

impl Default for ClientConfig {
    fn default() -> ClientConfig {
        ClientConfig {
            attempts: 3,
            attempt_timeout: Duration::from_secs(2),
            backoff_base: Duration::from_millis(5),
            backoff_max: Duration::from_millis(200),
            breaker_threshold: 5,
            breaker_cooldown: 8,
            seed: 0x05a1c,
            validate_replies: false,
        }
    }
}

/// Why a request (attempt or whole call) failed.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum ErrorClass {
    /// The attempt deadline expired waiting for the reply.
    Timeout,
    /// The connection dropped, reset, or delivered a torn line.
    ConnReset,
    /// The server answered with an error envelope.
    ServerError,
    /// The circuit breaker was open; the call never reached the network.
    BreakerOpen,
}

impl ErrorClass {
    /// Stable snake_case label for reports.
    #[must_use]
    pub fn label(self) -> &'static str {
        match self {
            ErrorClass::Timeout => "timeout",
            ErrorClass::ConnReset => "conn_reset",
            ErrorClass::ServerError => "server_error",
            ErrorClass::BreakerOpen => "breaker_open",
        }
    }
}

/// A verified reply.
#[derive(Debug, Clone)]
pub struct Reply {
    /// The raw reply line (newline stripped).
    pub raw: String,
    /// Whether the envelope carried `"ok":true`.
    pub ok: bool,
    /// Whether the envelope carried `"cached":true`.
    pub cached: bool,
    /// Whether the envelope carried `"degraded":true`.
    pub degraded: bool,
}

/// A failed call, after retries.
#[derive(Debug, Clone)]
pub struct CallError {
    /// The class of the final (giving-up) failure.
    pub class: ErrorClass,
    /// Human-readable detail.
    pub detail: String,
}

/// Per-client tallies, for the loadgen / soak reports.
#[derive(Debug, Default, Clone, Copy)]
pub struct ClientCounters {
    /// Calls that succeeded.
    pub oks: u64,
    /// Retry attempts beyond each call's first try.
    pub retries: u64,
    /// Calls abandoned after exhausting every attempt.
    pub giveups: u64,
    /// Times the breaker transitioned closed → open.
    pub breaker_opens: u64,
    /// Calls shed because the breaker was open.
    pub breaker_shed: u64,
    /// Attempts that timed out.
    pub timeouts: u64,
    /// Attempts that lost the connection or read a torn line.
    pub conn_resets: u64,
    /// Attempts answered with an error envelope.
    pub server_errors: u64,
    /// Replies flagged `"degraded":true`.
    pub degraded: u64,
    /// Replies that failed verification: unparseable JSON or an id echo
    /// mismatch. Must stay zero — this is the corruption detector.
    pub corrupt: u64,
}

/// Circuit-breaker state machine. Deterministic: cooldown is counted in
/// shed calls, not elapsed time.
#[derive(Debug)]
enum BreakerState {
    Closed { consecutive_failures: u32 },
    Open { shed_remaining: u32 },
    HalfOpen,
}

#[derive(Debug)]
struct Breaker {
    state: BreakerState,
    threshold: u32,
    cooldown: u32,
}

impl Breaker {
    fn new(threshold: u32, cooldown: u32) -> Breaker {
        Breaker {
            state: BreakerState::Closed {
                consecutive_failures: 0,
            },
            threshold: threshold.max(1),
            cooldown: cooldown.max(1),
        }
    }

    /// Whether a call may proceed. An open breaker sheds the call (and
    /// counts down toward half-open).
    fn admit(&mut self) -> bool {
        match &mut self.state {
            BreakerState::Closed { .. } | BreakerState::HalfOpen => true,
            BreakerState::Open { shed_remaining } => {
                if *shed_remaining == 0 {
                    self.state = BreakerState::HalfOpen;
                    true
                } else {
                    *shed_remaining -= 1;
                    false
                }
            }
        }
    }

    /// Report a successful call: the breaker closes.
    fn on_success(&mut self) {
        self.state = BreakerState::Closed {
            consecutive_failures: 0,
        };
    }

    /// Report a failed call. Returns `true` when this failure opened the
    /// breaker.
    fn on_failure(&mut self) -> bool {
        match &mut self.state {
            BreakerState::Closed {
                consecutive_failures,
            } => {
                *consecutive_failures += 1;
                if *consecutive_failures >= self.threshold {
                    self.state = BreakerState::Open {
                        shed_remaining: self.cooldown,
                    };
                    return true;
                }
                false
            }
            BreakerState::HalfOpen => {
                // The probe failed: re-open for a fresh cooldown.
                self.state = BreakerState::Open {
                    shed_remaining: self.cooldown,
                };
                true
            }
            BreakerState::Open { .. } => false,
        }
    }

    fn is_open(&self) -> bool {
        matches!(self.state, BreakerState::Open { .. })
    }
}

/// A reconnecting, retrying, breaker-guarded protocol client for one
/// target address.
pub struct ResilientClient {
    addr: String,
    config: ClientConfig,
    conn: Option<(BufReader<TcpStream>, TcpStream)>,
    rng: ChaosRng,
    breaker: Breaker,
    chaos: Option<Arc<ChaosController>>,
    /// Running tallies; read them with [`ResilientClient::counters`].
    counters: ClientCounters,
}

impl std::fmt::Debug for ResilientClient {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("ResilientClient")
            .field("addr", &self.addr)
            .field("connected", &self.conn.is_some())
            .field("breaker_open", &self.breaker.is_open())
            .field("counters", &self.counters)
            .finish()
    }
}

impl ResilientClient {
    /// A client for `addr`. Connects lazily on the first call.
    #[must_use]
    pub fn new(addr: &str, config: ClientConfig) -> ResilientClient {
        let breaker = Breaker::new(config.breaker_threshold, config.breaker_cooldown);
        ResilientClient {
            addr: addr.to_string(),
            rng: ChaosRng::new(config.seed),
            breaker,
            config,
            conn: None,
            chaos: None,
            counters: ClientCounters::default(),
        }
    }

    /// Attach a fault-injection schedule: the client will truncate,
    /// split, stall and reset its own requests on the controller's
    /// schedule (the client-side failpoints).
    #[must_use]
    pub fn with_chaos(mut self, chaos: Arc<ChaosController>) -> ResilientClient {
        self.chaos = Some(chaos);
        self
    }

    /// The tallies so far.
    #[must_use]
    pub fn counters(&self) -> ClientCounters {
        self.counters
    }

    /// Whether the breaker is currently open.
    #[must_use]
    pub fn breaker_open(&self) -> bool {
        self.breaker.is_open()
    }

    /// Issue `line` (one request, no trailing newline) and return the
    /// verified reply. `id_token` is the raw JSON token the request
    /// carried as `id` — the reply must echo it.
    pub fn call(&mut self, line: &str, id_token: &str) -> Result<Reply, CallError> {
        if !self.breaker.admit() {
            self.counters.breaker_shed += 1;
            return Err(CallError {
                class: ErrorClass::BreakerOpen,
                detail: "circuit breaker open".to_string(),
            });
        }
        let mut last = CallError {
            class: ErrorClass::ConnReset,
            detail: "no attempt made".to_string(),
        };
        for attempt in 0..self.config.attempts.max(1) {
            if attempt > 0 {
                self.counters.retries += 1;
                std::thread::sleep(self.backoff(attempt));
            }
            match self.attempt(line, id_token) {
                Ok(reply) => {
                    self.breaker.on_success();
                    self.counters.oks += 1;
                    if reply.degraded {
                        self.counters.degraded += 1;
                    }
                    return Ok(reply);
                }
                Err(error) => {
                    match error.class {
                        ErrorClass::Timeout => self.counters.timeouts += 1,
                        ErrorClass::ConnReset => self.counters.conn_resets += 1,
                        ErrorClass::ServerError => self.counters.server_errors += 1,
                        ErrorClass::BreakerOpen => {}
                    }
                    // The connection is suspect after any failure.
                    self.conn = None;
                    last = error;
                }
            }
        }
        self.counters.giveups += 1;
        if self.breaker.on_failure() {
            self.counters.breaker_opens += 1;
        }
        Err(last)
    }

    /// Deterministic backoff before retry `attempt`: exponential in the
    /// attempt index plus seeded jitter. No wall clock participates.
    fn backoff(&mut self, attempt: u32) -> Duration {
        let base = self.config.backoff_base.as_micros() as u64;
        let exp = base.saturating_mul(1u64 << attempt.min(16));
        let jitter = self.rng.range(base.max(1));
        Duration::from_micros(exp.saturating_add(jitter)).min(self.config.backoff_max)
    }

    /// One attempt: connect if needed, send (possibly with injected
    /// client-side faults), read one line under the attempt deadline,
    /// verify.
    fn attempt(&mut self, line: &str, id_token: &str) -> Result<Reply, CallError> {
        let conn_error = |detail: String| CallError {
            class: ErrorClass::ConnReset,
            detail,
        };
        if self.conn.is_none() {
            let stream =
                TcpStream::connect(&self.addr).map_err(|e| conn_error(format!("connect: {e}")))?;
            stream
                .set_read_timeout(Some(self.config.attempt_timeout))
                .map_err(|e| conn_error(format!("set timeout: {e}")))?;
            stream
                .set_write_timeout(Some(self.config.attempt_timeout))
                .map_err(|e| conn_error(format!("set timeout: {e}")))?;
            let reader = BufReader::new(
                stream
                    .try_clone()
                    .map_err(|e| conn_error(format!("clone: {e}")))?,
            );
            self.conn = Some((reader, stream));
        }
        let (reader, stream) = self.conn.as_mut().expect("connected above");

        // Send — with the controller's client-side faults when attached.
        let payload = format!("{line}\n");
        let sent = send_with_chaos(stream, payload.as_bytes(), self.chaos.as_deref());
        match sent {
            SendOutcome::Sent => {}
            SendOutcome::Injected(fault) => {
                // The fault cut the request short (truncate/reset); the
                // server never got a full line, so no reply is owed.
                return Err(conn_error(format!("chaos client fault: {fault}")));
            }
            SendOutcome::Failed(error) => {
                return Err(if is_timeout(&error) {
                    CallError {
                        class: ErrorClass::Timeout,
                        detail: format!("send: {error}"),
                    }
                } else {
                    conn_error(format!("send: {error}"))
                });
            }
        }

        // Receive one full line under the attempt deadline.
        let mut reply = String::new();
        match reader.read_line(&mut reply) {
            Ok(0) => Err(conn_error("server closed the connection".to_string())),
            Ok(_) if !reply.ends_with('\n') => {
                // A torn line: the server died mid-write. Never parse it.
                Err(conn_error("torn reply (no trailing newline)".to_string()))
            }
            Ok(_) => self.verify(reply.trim_end().to_string(), id_token),
            Err(error) if is_timeout(&error) => Err(CallError {
                class: ErrorClass::Timeout,
                detail: format!("recv: {error}"),
            }),
            Err(error) => Err(conn_error(format!("recv: {error}"))),
        }
    }

    /// Verify one complete reply line: id echo, optional JSON validation,
    /// envelope flags. Corruption (bad JSON, wrong id) is counted and
    /// reported as a connection-class error so the caller retries.
    fn verify(&mut self, raw: String, id_token: &str) -> Result<Reply, CallError> {
        let id_needle = format!("\"id\":{id_token}");
        if !raw.contains(&id_needle) {
            self.counters.corrupt += 1;
            return Err(CallError {
                class: ErrorClass::ConnReset,
                detail: format!("reply does not echo id {id_token}: {raw}"),
            });
        }
        if self.config.validate_replies && osarch_core::metrics::validate_json(&raw).is_err() {
            self.counters.corrupt += 1;
            return Err(CallError {
                class: ErrorClass::ConnReset,
                detail: format!("reply is not well-formed JSON: {raw}"),
            });
        }
        let ok = raw.contains("\"ok\":true");
        if !ok {
            return Err(CallError {
                class: ErrorClass::ServerError,
                detail: raw,
            });
        }
        Ok(Reply {
            ok,
            cached: raw.contains("\"cached\":true"),
            degraded: raw.contains("\"degraded\":true"),
            raw,
        })
    }
}

/// What became of a chaos-instrumented send.
enum SendOutcome {
    Sent,
    Injected(&'static str),
    Failed(std::io::Error),
}

/// Write `bytes` to `stream`, consulting the controller's client-side
/// failpoints: truncate (half the request, then drop), reset (full
/// request, then drop before the reply), split (one byte per write), and
/// stall (a pause between the two halves).
fn send_with_chaos(
    stream: &mut TcpStream,
    bytes: &[u8],
    chaos: Option<&ChaosController>,
) -> SendOutcome {
    let Some(chaos) = chaos else {
        return match stream.write_all(bytes).and_then(|()| stream.flush()) {
            Ok(()) => SendOutcome::Sent,
            Err(error) => SendOutcome::Failed(error),
        };
    };
    if chaos.should_inject(Failpoint::RequestTruncate) {
        let half = &bytes[..bytes.len() / 2];
        let _ = stream.write_all(half).and_then(|()| stream.flush());
        let _ = stream.shutdown(std::net::Shutdown::Both);
        return SendOutcome::Injected("request truncated");
    }
    if chaos.should_inject(Failpoint::ConnReset) {
        let _ = stream.write_all(bytes).and_then(|()| stream.flush());
        let _ = stream.shutdown(std::net::Shutdown::Both);
        return SendOutcome::Injected("connection reset after send");
    }
    if chaos.should_inject(Failpoint::RequestSplit) {
        // One byte per write() call: the server must reassemble the line
        // regardless of segmentation.
        for byte in bytes {
            if let Err(error) = stream.write_all(std::slice::from_ref(byte)) {
                return SendOutcome::Failed(error);
            }
        }
        return match stream.flush() {
            Ok(()) => SendOutcome::Sent,
            Err(error) => SendOutcome::Failed(error),
        };
    }
    if let Some(delay) = chaos.inject_delay(
        Failpoint::RequestStall,
        Duration::from_millis(5),
        Duration::from_millis(50),
    ) {
        let half = bytes.len() / 2;
        if let Err(error) = stream
            .write_all(&bytes[..half])
            .and_then(|()| stream.flush())
        {
            return SendOutcome::Failed(error);
        }
        std::thread::sleep(delay);
        return match stream
            .write_all(&bytes[half..])
            .and_then(|()| stream.flush())
        {
            Ok(()) => SendOutcome::Sent,
            Err(error) => SendOutcome::Failed(error),
        };
    }
    match stream.write_all(bytes).and_then(|()| stream.flush()) {
        Ok(()) => SendOutcome::Sent,
        Err(error) => SendOutcome::Failed(error),
    }
}

/// Whether an I/O error is a read/write deadline expiry. Both spellings
/// occur across platforms.
fn is_timeout(error: &std::io::Error) -> bool {
    matches!(error.kind(), ErrorKind::WouldBlock | ErrorKind::TimedOut)
}

/// Routing tallies of a [`ClusterClient`], on top of the per-node
/// resilience counters.
#[derive(Debug, Default, Clone, Copy)]
pub struct RouteCounters {
    /// Calls sent to the key's ring owner on the first try.
    pub routed_primary: u64,
    /// Attempts that failed over to a replica (owner breaker open,
    /// unreachable, or erroring).
    pub failovers: u64,
    /// `not_owner` redirects followed to the envelope's stated owner.
    pub redirects_followed: u64,
}

/// A shard-map-aware router over one [`ResilientClient`] per node.
///
/// Routing mirrors the server side exactly: both ends hash with
/// [`osarch_cluster::key_hash`] over the same seed list, so a routed
/// request normally lands on its owner first try. When the owner is
/// unattractive (breaker open) or fails, the call falls over to the
/// key's other replicas in ring order; a `not_owner` redirect (topology
/// drift between client and server views) is re-resolved once by
/// following the envelope's stated owner.
pub struct ClusterClient {
    ring: osarch_cluster::Ring,
    replicas: usize,
    clients: Vec<ResilientClient>,
    routes: RouteCounters,
}

impl std::fmt::Debug for ClusterClient {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("ClusterClient")
            .field("nodes", &self.ring.nodes())
            .field("replicas", &self.replicas)
            .field("routes", &self.routes)
            .finish()
    }
}

impl ClusterClient {
    /// A router over `addrs` with replication factor `replicas`. Each
    /// node gets its own client (own breaker, own jitter stream —
    /// seeded per node so schedules stay deterministic but distinct).
    #[must_use]
    pub fn new(addrs: &[String], replicas: usize, config: &ClientConfig) -> ClusterClient {
        let ring = osarch_cluster::Ring::new(addrs, osarch_cluster::DEFAULT_VNODES);
        let clients = ring
            .nodes()
            .iter()
            .enumerate()
            .map(|(index, addr)| {
                let node_config = ClientConfig {
                    seed: config.seed.wrapping_add(index as u64),
                    ..config.clone()
                };
                ResilientClient::new(addr, node_config)
            })
            .collect();
        ClusterClient {
            ring,
            replicas: replicas.max(1),
            clients,
            routes: RouteCounters::default(),
        }
    }

    /// The node addresses, in ring order.
    #[must_use]
    pub fn nodes(&self) -> &[String] {
        self.ring.nodes()
    }

    /// Where a key's owner lives, per this client's ring view.
    #[must_use]
    pub fn addr_for(&self, key: &str) -> Option<&str> {
        self.ring.owner(key)
    }

    /// The routing tallies.
    #[must_use]
    pub fn route_counters(&self) -> RouteCounters {
        self.routes
    }

    /// Per-node resilience counters summed over every node client.
    #[must_use]
    pub fn counters(&self) -> ClientCounters {
        let mut total = ClientCounters::default();
        for client in &self.clients {
            let c = client.counters();
            total.oks += c.oks;
            total.retries += c.retries;
            total.giveups += c.giveups;
            total.breaker_opens += c.breaker_opens;
            total.breaker_shed += c.breaker_shed;
            total.timeouts += c.timeouts;
            total.conn_resets += c.conn_resets;
            total.server_errors += c.server_errors;
            total.degraded += c.degraded;
            total.corrupt += c.corrupt;
        }
        total
    }

    /// Issue `line` for `key`: route to the key's replica set in ring
    /// order, preferring nodes whose breaker is closed, and follow one
    /// `not_owner` redirect if the server's view disagrees with ours.
    pub fn call(&mut self, key: &str, line: &str, id_token: &str) -> Result<Reply, CallError> {
        let targets: Vec<usize> = {
            let nodes = self.ring.nodes();
            self.ring
                .replicas(key, self.replicas)
                .iter()
                .filter_map(|addr| nodes.iter().position(|n| n == addr))
                .collect()
        };
        if targets.is_empty() {
            return Err(CallError {
                class: ErrorClass::ConnReset,
                detail: "cluster client has no nodes".to_string(),
            });
        }
        // Replica order: nodes whose breaker is closed first (cheap
        // health signal), then the breaker-open stragglers — a shed call
        // against an open breaker still counts down its cooldown.
        let closed: Vec<usize> = targets
            .iter()
            .copied()
            .filter(|&i| !self.clients[i].breaker_open())
            .collect();
        let mut order = closed.clone();
        order.extend(targets.iter().copied().filter(|i| !closed.contains(i)));
        let mut last = CallError {
            class: ErrorClass::BreakerOpen,
            detail: "every replica's breaker is open".to_string(),
        };
        for (rank, index) in order.into_iter().enumerate() {
            if rank == 0 && index == targets[0] {
                self.routes.routed_primary += 1;
            } else {
                self.routes.failovers += 1;
            }
            match self.clients[index].call(line, id_token) {
                Ok(reply) => return Ok(reply),
                Err(error) => {
                    if error.class == ErrorClass::ServerError
                        && error.detail.contains("\"error\":\"not_owner\"")
                    {
                        // Topology drift: the server knows better — follow
                        // its stated owner once, then fall through to the
                        // normal failover order.
                        if let Some(owner) = extract_field(&error.detail, "owner") {
                            let owner_index = self.ring.nodes().iter().position(|n| n == owner);
                            if let Some(owner_index) = owner_index {
                                self.routes.redirects_followed += 1;
                                match self.clients[owner_index].call(line, id_token) {
                                    Ok(reply) => return Ok(reply),
                                    Err(redirect_error) => last = redirect_error,
                                }
                                continue;
                            }
                        }
                    }
                    last = error;
                }
            }
        }
        Err(last)
    }
}

/// Pull a flat string field (`"name":"value"`) out of a raw envelope
/// without a JSON parser. Addresses and keys never contain quotes or
/// escapes, so the next `"` ends the value.
fn extract_field<'a>(raw: &'a str, name: &str) -> Option<&'a str> {
    let needle = format!("\"{name}\":\"");
    let start = raw.find(&needle)? + needle.len();
    let end = raw[start..].find('"')? + start;
    Some(&raw[start..end])
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn breaker_opens_after_threshold_and_half_opens_after_cooldown() {
        let mut breaker = Breaker::new(3, 2);
        assert!(breaker.admit());
        assert!(!breaker.on_failure());
        assert!(!breaker.on_failure());
        assert!(breaker.on_failure(), "third failure opens");
        assert!(breaker.is_open());
        // Two calls shed while open…
        assert!(!breaker.admit());
        assert!(!breaker.admit());
        // …then a half-open probe is admitted.
        assert!(breaker.admit());
        // A failing probe re-opens immediately.
        assert!(breaker.on_failure());
        assert!(!breaker.admit());
        assert!(!breaker.admit());
        assert!(breaker.admit());
        breaker.on_success();
        assert!(!breaker.is_open());
        assert!(breaker.admit());
    }

    #[test]
    fn backoff_schedule_is_deterministic_and_bounded() {
        let config = ClientConfig {
            seed: 99,
            ..ClientConfig::default()
        };
        let mut a = ResilientClient::new("127.0.0.1:1", config.clone());
        let mut b = ResilientClient::new("127.0.0.1:1", config.clone());
        let sa: Vec<Duration> = (1..6).map(|k| a.backoff(k)).collect();
        let sb: Vec<Duration> = (1..6).map(|k| b.backoff(k)).collect();
        assert_eq!(sa, sb, "same seed, same backoff schedule");
        for backoff in sa {
            assert!(backoff <= config.backoff_max);
            assert!(backoff >= config.backoff_base);
        }
        let mut c = ResilientClient::new(
            "127.0.0.1:1",
            ClientConfig {
                seed: 100,
                ..config
            },
        );
        let sc: Vec<Duration> = (1..6).map(|k| c.backoff(k)).collect();
        assert_ne!(sb, sc, "different seed, different jitter");
    }

    #[test]
    fn error_class_labels_are_stable() {
        assert_eq!(ErrorClass::Timeout.label(), "timeout");
        assert_eq!(ErrorClass::ConnReset.label(), "conn_reset");
        assert_eq!(ErrorClass::ServerError.label(), "server_error");
        assert_eq!(ErrorClass::BreakerOpen.label(), "breaker_open");
    }

    #[test]
    fn cluster_client_routes_by_the_same_ring_as_the_server() {
        let addrs = vec![
            "127.0.0.1:4101".to_string(),
            "127.0.0.1:4102".to_string(),
            "127.0.0.1:4103".to_string(),
        ];
        let client = ClusterClient::new(&addrs, 2, &ClientConfig::default());
        let server_ring = osarch_cluster::Ring::new(&addrs, osarch_cluster::DEFAULT_VNODES);
        for key in ["measure/R3000/trap", "table/2", "analyze/all", "lint/CVAX"] {
            assert_eq!(client.addr_for(key), server_ring.owner(key), "{key}");
        }
        assert_eq!(client.nodes(), server_ring.nodes());
    }

    #[test]
    fn cluster_client_fails_over_across_dead_replicas() {
        // Ports 1 and 2 on loopback refuse immediately: every replica is
        // dead, so the call walks the whole replica set and gives up
        // with the connection class — never a panic, never a hang.
        let addrs = vec!["127.0.0.1:1".to_string(), "127.0.0.1:2".to_string()];
        let mut client = ClusterClient::new(
            &addrs,
            2,
            &ClientConfig {
                attempts: 1,
                backoff_base: Duration::from_micros(10),
                backoff_max: Duration::from_micros(50),
                ..ClientConfig::default()
            },
        );
        let error = client
            .call("measure/R3000/trap", "{\"op\":\"ping\",\"id\":7}", "7")
            .unwrap_err();
        assert_eq!(error.class, ErrorClass::ConnReset, "{}", error.detail);
        let routes = client.route_counters();
        assert_eq!(routes.routed_primary, 1);
        assert_eq!(routes.failovers, 1, "second replica was tried");
        assert_eq!(client.counters().giveups, 2);
    }

    #[test]
    fn not_owner_fields_extract_from_the_raw_envelope() {
        let raw = "{\"schema\":\"osarch-serve/1\",\"id\":3,\"ok\":false,\
                   \"error\":\"not_owner\",\"key\":\"table/2\",\
                   \"owner\":\"127.0.0.1:4102\",\
                   \"replicas\":\"127.0.0.1:4102,127.0.0.1:4103\"}";
        assert_eq!(extract_field(raw, "owner"), Some("127.0.0.1:4102"));
        assert_eq!(extract_field(raw, "key"), Some("table/2"));
        assert_eq!(
            extract_field(raw, "replicas"),
            Some("127.0.0.1:4102,127.0.0.1:4103")
        );
        assert_eq!(extract_field(raw, "missing"), None);
    }

    #[test]
    fn unreachable_target_gives_up_with_conn_class_and_opens_breaker() {
        // Port 1 on loopback: connection refused immediately, no network.
        let mut client = ResilientClient::new(
            "127.0.0.1:1",
            ClientConfig {
                attempts: 2,
                backoff_base: Duration::from_micros(10),
                backoff_max: Duration::from_micros(50),
                breaker_threshold: 1,
                ..ClientConfig::default()
            },
        );
        let error = client.call("{\"op\":\"ping\",\"id\":1}", "1").unwrap_err();
        assert_eq!(error.class, ErrorClass::ConnReset, "{}", error.detail);
        assert!(client.breaker_open(), "threshold 1 opens on first giveup");
        let shed = client.call("{\"op\":\"ping\",\"id\":2}", "2").unwrap_err();
        assert_eq!(shed.class, ErrorClass::BreakerOpen);
        let counters = client.counters();
        assert_eq!(counters.giveups, 1);
        assert_eq!(counters.retries, 1);
        assert_eq!(counters.breaker_opens, 1);
        assert_eq!(counters.breaker_shed, 1);
        assert_eq!(counters.oks, 0);
    }
}
