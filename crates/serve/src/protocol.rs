//! The line-delimited JSON protocol (`osarch-serve/1`).
//!
//! One request per line, one response per line. A request is a **flat**
//! JSON object:
//!
//! ```text
//! {"op":"measure","arch":"R3000","primitive":"syscall","id":1}
//! ```
//!
//! with fields:
//!
//! * `op` — `ping`, `measure`, `table`, `lint`, `trace`, `counters`,
//!   `stats`, `spans`, `metrics`, `health`, `cluster`, `shutdown`,
//!   `admin`, or `spec-fetch` (required);
//! * `arch` — an architecture name (required for `measure`/`trace`,
//!   optional for `lint`/`counters`; the `mips-r2000`/`mips-r3000`
//!   aliases are accepted, exactly as on the CLI);
//! * `spec` — for `measure`, the name of a runtime-loaded registry spec
//!   in place of `arch`; for `admin spec-load`, an `osarch-spec/1`
//!   document as a JSON-escaped string;
//! * `action`/`token`/`name` — `admin` fields: the sub-action
//!   (`spec-load`, `spec-activate`, `spec-rollback`, `spec-list`), the
//!   shared-secret token (constant-time compared against
//!   `--admin-token`; every `admin` request is refused when the server
//!   has no token configured), and the spec name to activate;
//! * `primitive` — a primitive name (required for `measure`/`trace`);
//! * `table` — a report-registry name (required for `table`);
//! * `filter` — for `spans`, the export format: omitted for the span
//!   ring, `chrome` for the sampled per-request trace chains as a
//!   Chrome trace-event document;
//! * `gossip` — for `health`, an optional membership digest string; the
//!   node merges it and replies with its own digest (the cluster's
//!   anti-entropy exchange rides the liveness probe);
//! * `fwd` — set to `"1"` on a request relayed node-to-node inside the
//!   cluster; a node never re-forwards a marked request (loop guard);
//! * `id` — any JSON scalar, echoed verbatim in the response.
//!
//! A response is one line:
//!
//! ```text
//! {"schema":"osarch-serve/1","id":1,"ok":true,"cached":false,"micros":812,"result":{…}}
//! {"schema":"osarch-serve/1","id":null,"ok":false,"error":"unknown architecture …"}
//! ```
//!
//! In `--cluster` mode a node that neither owns nor proxies a key
//! answers with the `not_owner` redirect envelope instead:
//!
//! ```text
//! {"schema":"osarch-serve/1","id":1,"ok":false,"error":"not_owner","owner":"host:port","replicas":"host:port,host:port"}
//! ```
//!
//! and the `cluster` op reports the node's ring slice plus its current
//! membership table (`osarch-cluster/1`).
//!
//! Responses reuse the `core/metrics` emitters for their payloads, so a
//! served table/lint/trace/counters document is byte-identical to the one
//! the corresponding CLI subcommand prints.

use crate::registry::SpecSnapshot;
use osarch_core::{metrics, names, session};
use osarch_cpu::Arch;
use osarch_kernel::{trace_all, trace_primitive, Primitive};
use osarch_trace::CounterRegistry;

/// The largest request line the server will accept. An oversized line is
/// answered with an error envelope; the connection is then resynchronized
/// at the next newline ([`FrameBuf`] discards the oversized bytes as they
/// stream past) and keeps serving.
pub const MAX_REQUEST_BYTES: usize = 64 * 1024;

/// Smallest read window [`FrameBuf::spare`] guarantees per call; also the
/// growth quantum and the slack allowed beyond [`MAX_REQUEST_BYTES`].
const MIN_SPARE: usize = 4096;

/// One parsed query.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Query {
    /// Liveness probe; answers immediately.
    Ping,
    /// One (architecture, primitive) measurement.
    Measure {
        /// Architecture to price.
        arch: Arch,
        /// Primitive to price.
        primitive: Primitive,
    },
    /// One (registry spec, primitive) measurement: a `measure` request
    /// naming a runtime-loaded spec (`"spec":"name"`) instead of a
    /// built-in architecture. Existence is resolved against the
    /// request's captured registry snapshot.
    MeasureSpec {
        /// Registry spec name.
        name: String,
        /// Primitive to price.
        primitive: Primitive,
    },
    /// One report-registry table.
    Table {
        /// Registry name (`table1` … `ablations`).
        name: String,
    },
    /// Static handler verification for one architecture, or all.
    Lint {
        /// `None` checks every architecture.
        arch: Option<Arch>,
    },
    /// Abstract-interpretation proof run for one architecture, or all.
    Analyze {
        /// `None` verifies every architecture.
        arch: Option<Arch>,
    },
    /// Chrome-trace document for one primitive run.
    Trace {
        /// Architecture to trace.
        arch: Arch,
        /// Primitive to trace.
        primitive: Primitive,
    },
    /// Performance counters aggregated over every primitive of one
    /// architecture, or of all architectures.
    Counters {
        /// `None` aggregates every architecture.
        arch: Option<Arch>,
    },
    /// Serving counters and latency percentiles.
    Stats,
    /// Recent per-request spans.
    Spans {
        /// When set, export the sampled per-request trace chains as a
        /// Chrome trace-event document instead of the span ring.
        chrome: bool,
    },
    /// Full telemetry snapshot (`osarch-metrics/1`): windowed
    /// histograms, gauges, and lifetime totals.
    Metrics,
    /// One-line liveness probe: queue depth, worker liveness, and
    /// resilience counters (panics, degraded replies, respawns).
    Health {
        /// A peer's membership digest to merge (cluster anti-entropy);
        /// `None` for a plain liveness probe.
        gossip: Option<String>,
    },
    /// Ring slice + membership table of a cluster node
    /// (`osarch-cluster/1`; an error outside `--cluster` mode).
    Cluster,
    /// Graceful shutdown control command.
    Shutdown,
    /// Authenticated spec-registry administration (refused entirely when
    /// the server was started without `--admin-token`).
    Admin {
        /// The sub-action to perform.
        action: AdminAction,
        /// The caller's token, compared in constant time.
        token: String,
        /// Spec name (`spec-activate`).
        name: Option<String>,
        /// An `osarch-spec/1` document as a JSON-escaped string
        /// (`spec-load`).
        spec: Option<String>,
    },
    /// Unauthenticated read-only registry export: the active epoch, its
    /// digest, and every spec document — the pull side of cluster spec
    /// convergence.
    SpecFetch,
}

/// One `admin` sub-action.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum AdminAction {
    /// Stage an `osarch-spec/1` document (parse + validate only).
    SpecLoad,
    /// Run the full activation pipeline on a staged spec and swap it in.
    SpecActivate,
    /// Swap back to the last-good registry content (as a new epoch).
    SpecRollback,
    /// List the active epoch, digest, staged names, and loaded specs.
    SpecList,
}

impl AdminAction {
    /// The protocol spelling.
    #[must_use]
    pub fn tag(self) -> &'static str {
        match self {
            AdminAction::SpecLoad => "spec-load",
            AdminAction::SpecActivate => "spec-activate",
            AdminAction::SpecRollback => "spec-rollback",
            AdminAction::SpecList => "spec-list",
        }
    }

    fn parse(name: &str) -> Option<AdminAction> {
        match name {
            "spec-load" => Some(AdminAction::SpecLoad),
            "spec-activate" => Some(AdminAction::SpecActivate),
            "spec-rollback" => Some(AdminAction::SpecRollback),
            "spec-list" => Some(AdminAction::SpecList),
            _ => None,
        }
    }
}

impl Query {
    /// The canonical epoch-free key, or `None` for control/introspection
    /// queries that must never be cached. This is the key consistent-hash
    /// **routing** uses: a key's ring owner must not move when a node
    /// swaps specs, or a mid-swap cluster would split-route every key.
    #[must_use]
    pub fn routing_key(&self) -> Option<String> {
        match self {
            Query::Measure { arch, primitive } => {
                Some(format!("measure/{arch}/{}", primitive.tag()))
            }
            Query::MeasureSpec { name, primitive } => {
                Some(format!("measure/{name}/{}", primitive.tag()))
            }
            Query::Table { name } => Some(format!("table/{name}")),
            Query::Lint { arch } => Some(format!(
                "lint/{}",
                arch.map_or_else(|| "all".to_string(), |a| a.to_string())
            )),
            Query::Analyze { arch } => Some(format!(
                "analyze/{}",
                arch.map_or_else(|| "all".to_string(), |a| a.to_string())
            )),
            Query::Trace { arch, primitive } => Some(format!("trace/{arch}/{}", primitive.tag())),
            Query::Counters { arch } => Some(format!(
                "counters/{}",
                arch.map_or_else(|| "all".to_string(), |a| a.to_string())
            )),
            Query::Ping
            | Query::Stats
            | Query::Spans { .. }
            | Query::Metrics
            | Query::Health { .. }
            | Query::Cluster
            | Query::Shutdown
            | Query::Admin { .. }
            | Query::SpecFetch => None,
        }
    }

    /// The canonical cache key under one registry snapshot, or `None`
    /// for queries that must never be cached. The snapshot's
    /// `e{epoch}-{content hash}/` prefix scopes every cached payload
    /// (and its `last_good` sidecar entry) to the spec set it was
    /// computed against, so a swap can never surface a stale-spec reply
    /// — old-epoch entries are reaped lazily after each commit.
    #[must_use]
    pub fn cache_key(&self, snapshot: &SpecSnapshot) -> Option<String> {
        self.routing_key()
            .map(|key| format!("{}{key}", snapshot.key_prefix()))
    }

    /// Evaluate a cacheable query to its JSON payload. Pure: the payload
    /// is a deterministic function of the key and the captured registry
    /// snapshot, priced through the shared measurement session.
    ///
    /// # Panics
    ///
    /// Panics if called on a non-cacheable query (`ping`, `stats`,
    /// `spans`, `shutdown`, `admin`, …) — the server answers those
    /// directly. A [`Query::MeasureSpec`] naming a spec absent from the
    /// snapshot panics too: existence is checked before offload.
    #[must_use]
    pub fn compute(&self, snapshot: &SpecSnapshot) -> String {
        match self {
            Query::Measure { arch, primitive } => metrics::measure_json(*arch, *primitive),
            Query::MeasureSpec { name, primitive } => {
                let spec = snapshot
                    .spec(name)
                    .expect("spec existence checked against the snapshot before offload");
                metrics::measure_spec_json(name, spec, *primitive)
            }
            Query::Table { name } => {
                let spec = session::report_by_name(name).expect("table name validated at parse");
                metrics::table_json(&(spec.build)())
            }
            Query::Lint { arch } => {
                let analyzer = osarch_core::Analyzer::new();
                let report = match arch {
                    Some(arch) => analyzer.analyze_arch(*arch),
                    None => analyzer.analyze_all(),
                };
                metrics::lint_json(&report).trim_end().to_string()
            }
            Query::Analyze { arch } => {
                let analyzer = osarch_core::AbsintAnalyzer::new();
                let report = match arch {
                    Some(arch) => analyzer.analyze_arch(*arch),
                    None => analyzer.analyze_all(),
                };
                metrics::absint_json(&report).trim_end().to_string()
            }
            Query::Trace { arch, primitive } => {
                metrics::chrome_trace_json(&trace_primitive(*arch, *primitive))
                    .trim_end()
                    .to_string()
            }
            Query::Counters { arch } => {
                let archs: Vec<Arch> = match arch {
                    Some(arch) => vec![*arch],
                    None => Arch::all().to_vec(),
                };
                let mut merged = CounterRegistry::new();
                for arch in archs {
                    for trace in trace_all(arch) {
                        for (key, value) in trace.counters.iter() {
                            merged.add(&key.arch, &key.primitive, &key.phase, &key.name, value);
                        }
                    }
                }
                metrics::counters_json(&merged).trim_end().to_string()
            }
            Query::Ping
            | Query::Stats
            | Query::Spans { .. }
            | Query::Metrics
            | Query::Health { .. }
            | Query::Cluster
            | Query::Shutdown
            | Query::Admin { .. }
            | Query::SpecFetch => {
                unreachable!("non-cacheable query answered by the server, not computed")
            }
        }
    }
}

/// One parsed request: the query plus the raw `id` token to echo.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Request {
    /// The `id` field as a raw JSON token (`null` when absent).
    pub id: String,
    /// The query to answer.
    pub query: Query,
    /// Whether the request carried the `"fwd":"1"` relay marker: it
    /// already hopped once inside the cluster, so the receiving node
    /// must answer (or redirect) rather than forward again.
    pub forwarded: bool,
}

/// A scalar field value from the flat request object.
#[derive(Debug, Clone, PartialEq, Eq)]
enum Scalar {
    Str(String),
    /// Number / `true` / `false` / `null`, kept as the raw token.
    Token(String),
}

impl Scalar {
    fn as_raw_token(&self) -> String {
        match self {
            Scalar::Str(s) => format!("\"{}\"", metrics::json_escape(s)),
            Scalar::Token(t) => t.clone(),
        }
    }
}

/// Parse one request line. Errors are one-line human-readable messages
/// destined for the `error` field of the response envelope; the second
/// tuple element is the echoed `id` token if one could be recovered.
pub fn parse_request(line: &str) -> Result<Request, (String, String)> {
    let fields = parse_flat_object(line).map_err(|e| (e, "null".to_string()))?;
    let id = fields
        .iter()
        .find(|(k, _)| k == "id")
        .map_or_else(|| "null".to_string(), |(_, v)| v.as_raw_token());
    let get_str = |key: &str| -> Result<Option<String>, (String, String)> {
        match fields.iter().find(|(k, _)| k == key) {
            None => Ok(None),
            Some((_, Scalar::Str(s))) => Ok(Some(s.clone())),
            Some((_, Scalar::Token(t))) => Err((
                format!("field {key:?} must be a string, got {t}"),
                id.clone(),
            )),
        }
    };
    let op =
        get_str("op")?.ok_or_else(|| ("missing required field \"op\"".to_string(), id.clone()))?;
    let arch = |required: bool| -> Result<Option<Arch>, (String, String)> {
        match get_str("arch")? {
            Some(name) => names::parse_arch(&name)
                .map(Some)
                .ok_or_else(|| (names::unknown_arch(&name), id.clone())),
            None if required => Err(("missing required field \"arch\"".to_string(), id.clone())),
            None => Ok(None),
        }
    };
    let primitive = || -> Result<Primitive, (String, String)> {
        match get_str("primitive")? {
            Some(name) => names::parse_primitive(&name)
                .ok_or_else(|| (names::unknown_primitive(&name), id.clone())),
            None => Err((
                "missing required field \"primitive\"".to_string(),
                id.clone(),
            )),
        }
    };
    let query = match op.as_str() {
        "ping" => Query::Ping,
        "measure" => match get_str("spec")? {
            // A registry spec and a built-in are different namespaces; a
            // request naming both is ambiguous by construction.
            Some(name) => {
                if get_str("arch")?.is_some() {
                    return Err((
                        "measure: give either \"arch\" or \"spec\", not both".to_string(),
                        id,
                    ));
                }
                Query::MeasureSpec {
                    name,
                    primitive: primitive()?,
                }
            }
            None => Query::Measure {
                arch: arch(true)?.expect("required"),
                primitive: primitive()?,
            },
        },
        "table" => {
            let name = get_str("table")?
                .ok_or_else(|| ("missing required field \"table\"".to_string(), id.clone()))?;
            if session::report_by_name(&name).is_none() {
                return Err((names::unknown_report(&name), id));
            }
            Query::Table { name }
        }
        "lint" => Query::Lint { arch: arch(false)? },
        "analyze" => Query::Analyze { arch: arch(false)? },
        "trace" => Query::Trace {
            arch: arch(true)?.expect("required"),
            primitive: primitive()?,
        },
        "counters" => Query::Counters { arch: arch(false)? },
        "stats" => Query::Stats,
        "spans" => match get_str("filter")?.as_deref() {
            None => Query::Spans { chrome: false },
            Some("chrome") => Query::Spans { chrome: true },
            Some(other) => {
                return Err((
                    format!("unknown spans filter {other:?}; valid filters: chrome"),
                    id,
                ))
            }
        },
        "metrics" => Query::Metrics,
        "health" => Query::Health {
            gossip: get_str("gossip")?,
        },
        "cluster" => Query::Cluster,
        "shutdown" => Query::Shutdown,
        "admin" => {
            let action = get_str("action")?.ok_or_else(|| {
                (
                    "admin: missing required field \"action\"".to_string(),
                    id.clone(),
                )
            })?;
            let action = AdminAction::parse(&action).ok_or_else(|| {
                (
                    format!(
                        "admin: unknown action {action:?}; valid actions: \
                         spec-load, spec-activate, spec-rollback, spec-list"
                    ),
                    id.clone(),
                )
            })?;
            let token = get_str("token")?.ok_or_else(|| {
                (
                    "admin: missing required field \"token\"".to_string(),
                    id.clone(),
                )
            })?;
            let name = get_str("name")?;
            let spec = get_str("spec")?;
            match action {
                AdminAction::SpecLoad if spec.is_none() => {
                    return Err((
                        "admin spec-load: missing required field \"spec\"".to_string(),
                        id,
                    ))
                }
                AdminAction::SpecActivate if name.is_none() => {
                    return Err((
                        "admin spec-activate: missing required field \"name\"".to_string(),
                        id,
                    ))
                }
                _ => {}
            }
            Query::Admin {
                action,
                token,
                name,
                spec,
            }
        }
        "spec-fetch" => Query::SpecFetch,
        other => return Err((names::unknown_op(other), id)),
    };
    let forwarded = get_str("fwd")?.as_deref() == Some("1");
    Ok(Request {
        id,
        query,
        forwarded,
    })
}

/// A success envelope: the payload (already-valid JSON) under `result`.
/// `epoch` is the registry epoch the request was served under — the
/// snapshot captured at admission, which for cacheable queries is by
/// construction the spec set the payload was computed against.
#[must_use]
pub fn ok_envelope(id: &str, cached: bool, epoch: u64, micros: u64, payload: &str) -> String {
    format!(
        "{{\"schema\":\"{}\",\"id\":{id},\"ok\":true,\"cached\":{cached},\
         \"epoch\":{epoch},\"micros\":{micros},\"result\":{payload}}}",
        metrics::SERVE_SCHEMA
    )
}

/// A degraded-success envelope: the stale last-good payload under
/// `result`, explicitly flagged `"degraded":true` with the failure that
/// forced the fallback. Degraded replies are always marked `cached` —
/// the payload is by definition a previously landed value — and carry
/// the epoch the stale payload was computed at (equal to the serving
/// epoch: the `last_good` sidecar is keyed under the same epoch-scoped
/// key as the cache proper, so it can never reach across a swap).
#[must_use]
pub fn degraded_envelope(id: &str, epoch: u64, micros: u64, payload: &str, error: &str) -> String {
    format!(
        "{{\"schema\":\"{}\",\"id\":{id},\"ok\":true,\"cached\":true,\
         \"degraded\":true,\"degraded_reason\":\"{}\",\"epoch\":{epoch},\
         \"micros\":{micros},\"result\":{payload}}}",
        metrics::SERVE_SCHEMA,
        metrics::json_escape(error)
    )
}

/// An error envelope. Always well-formed regardless of the message text.
#[must_use]
pub fn err_envelope(id: &str, message: &str) -> String {
    format!(
        "{{\"schema\":\"{}\",\"id\":{id},\"ok\":false,\"error\":\"{}\"}}",
        metrics::SERVE_SCHEMA,
        metrics::json_escape(message)
    )
}

/// The `not_owner` redirect envelope a cluster node answers with when a
/// key hashes to another node and relaying is not possible: the routing
/// client re-resolves against `owner` (first) and `replicas` (fallback,
/// comma-joined in ring order).
#[must_use]
pub fn not_owner_envelope(id: &str, key: &str, owner: &str, replicas: &[&str]) -> String {
    format!(
        "{{\"schema\":\"{}\",\"id\":{id},\"ok\":false,\"error\":\"not_owner\",\
         \"key\":\"{}\",\"owner\":\"{}\",\"replicas\":\"{}\"}}",
        metrics::SERVE_SCHEMA,
        metrics::json_escape(key),
        metrics::json_escape(owner),
        metrics::json_escape(&replicas.join(","))
    )
}

// ---------------------------------------------------------------------------
// Incremental line framing
// ---------------------------------------------------------------------------

/// One framing step from [`FrameBuf::next_frame`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Frame {
    /// No complete line buffered yet; read more bytes.
    None,
    /// A complete line (newline excluded), addressed as a byte range for
    /// [`FrameBuf::bytes`]. Valid until the next `spare`/`next_frame`.
    Line {
        /// First byte of the line.
        start: usize,
        /// One past the last byte of the line.
        end: usize,
    },
    /// A line exceeded [`MAX_REQUEST_BYTES`]. The oversized bytes are
    /// consumed (streamed to the trash until the terminating newline);
    /// the caller should answer "request too large" and keep framing —
    /// the connection stays synchronized.
    Oversized,
}

/// Incremental, allocation-recycling line framer for nonblocking reads.
///
/// The event loop reads whatever the socket has into [`spare`], commits
/// the byte count, then drains complete lines with [`next_frame`] — many
/// pipelined requests per read land as many `Line` frames, no per-request
/// allocation. The buffer grows only for lines beyond its baseline and
/// releases that capacity as soon as the backlog drains (an oversized
/// request must not inflate the arena forever).
///
/// [`spare`]: FrameBuf::spare
/// [`next_frame`]: FrameBuf::next_frame
#[derive(Debug)]
pub struct FrameBuf {
    buf: Vec<u8>,
    /// First unconsumed byte.
    start: usize,
    /// One past the last committed byte.
    end: usize,
    /// Resume the newline scan here (`start <= scan <= end`), so bytes
    /// are scanned once no matter how fragmented the arrivals are.
    scan: usize,
    baseline: usize,
    /// Inside an oversized line: throw bytes away until a newline.
    discarding: bool,
}

impl FrameBuf {
    /// A framer whose buffer rests at `baseline` bytes (clamped to at
    /// least [`MIN_SPARE`]).
    #[must_use]
    pub fn new(baseline: usize) -> FrameBuf {
        let baseline = baseline.max(MIN_SPARE);
        FrameBuf {
            buf: vec![0; baseline],
            start: 0,
            end: 0,
            scan: 0,
            baseline,
            discarding: false,
        }
    }

    /// The writable tail of the buffer — always at least [`MIN_SPARE`]
    /// bytes. Read into it, then [`commit`](FrameBuf::commit) the count.
    pub fn spare(&mut self) -> &mut [u8] {
        if self.discarding {
            // Scanned bytes of a discarded line never need to be kept.
            self.start = self.scan;
        }
        if self.start == self.end {
            self.start = 0;
            self.end = 0;
            self.scan = 0;
            self.release_excess();
        } else if self.buf.len() - self.end < MIN_SPARE && self.start > 0 {
            self.buf.copy_within(self.start..self.end, 0);
            self.end -= self.start;
            self.scan -= self.start;
            self.start = 0;
        }
        if self.buf.len() - self.end < MIN_SPARE {
            let target = (self.buf.len() * 2)
                .min(MAX_REQUEST_BYTES + 2 * MIN_SPARE)
                .max(self.end + MIN_SPARE);
            self.buf.resize(target, 0);
        }
        &mut self.buf[self.end..]
    }

    /// Record that `count` bytes were read into the slice returned by
    /// the last [`spare`](FrameBuf::spare) call.
    pub fn commit(&mut self, count: usize) {
        self.end += count;
        debug_assert!(self.end <= self.buf.len());
    }

    /// Extract the next complete line, if any.
    pub fn next_frame(&mut self) -> Frame {
        loop {
            if let Some(offset) = self.buf[self.scan..self.end]
                .iter()
                .position(|&byte| byte == b'\n')
            {
                let newline = self.scan + offset;
                if self.discarding {
                    // Oversized line fully consumed: resynchronized.
                    self.start = newline + 1;
                    self.scan = newline + 1;
                    self.discarding = false;
                    self.release_excess();
                    continue;
                }
                let (line_start, line_end) = (self.start, newline);
                self.start = newline + 1;
                self.scan = newline + 1;
                if line_end - line_start > MAX_REQUEST_BYTES {
                    // The whole line arrived in one gulp, newline and
                    // all — consumed above, so no discard phase needed.
                    return Frame::Oversized;
                }
                return Frame::Line {
                    start: line_start,
                    end: line_end,
                };
            }
            self.scan = self.end;
            if !self.discarding && self.end - self.start > MAX_REQUEST_BYTES {
                // Partial line already too big: report once, then eat
                // everything until the newline shows up.
                self.discarding = true;
                self.start = self.end;
                return Frame::Oversized;
            }
            return Frame::None;
        }
    }

    /// The bytes of a [`Frame::Line`] range.
    #[must_use]
    pub fn bytes(&self, start: usize, end: usize) -> &[u8] {
        &self.buf[start..end]
    }

    /// At EOF, surface a trailing unterminated line (a client that sent
    /// its last request without the newline and half-closed). `None` if
    /// nothing is buffered, or the tail is oversized/being discarded.
    pub fn take_eof_line(&mut self) -> Option<(usize, usize)> {
        if self.discarding || self.start == self.end {
            return None;
        }
        let range = (self.start, self.end);
        self.start = self.end;
        self.scan = self.end;
        if range.1 - range.0 > MAX_REQUEST_BYTES {
            return None;
        }
        Some(range)
    }

    /// Unconsumed bytes currently buffered.
    #[must_use]
    pub fn buffered(&self) -> usize {
        self.end - self.start
    }

    /// Whether nothing is buffered (a mid-line partial counts as data).
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.start == self.end && !self.discarding
    }

    /// Current allocation size, for arena accounting.
    #[must_use]
    pub fn capacity(&self) -> usize {
        self.buf.len()
    }

    /// Forget all state and shed grown capacity: called when a framer is
    /// returned to the connection arena for reuse.
    pub fn reset(&mut self) {
        self.start = 0;
        self.end = 0;
        self.scan = 0;
        self.discarding = false;
        self.release_excess();
    }

    /// Drop capacity grown past the baseline once the backlog fits again.
    fn release_excess(&mut self) {
        if self.buf.len() <= self.baseline {
            return;
        }
        let buffered = self.end - self.start;
        if buffered > self.baseline {
            return;
        }
        self.buf.copy_within(self.start..self.end, 0);
        self.scan -= self.start;
        self.end = buffered;
        self.start = 0;
        self.buf.truncate(self.baseline);
        self.buf.shrink_to_fit();
    }
}

// ---------------------------------------------------------------------------
// Flat-object JSON reader
// ---------------------------------------------------------------------------

/// Parse `line` as one flat JSON object of scalar fields. Nested objects
/// and arrays are rejected: every request field is a scalar by design,
/// and a flat grammar keeps the reader small enough to audit.
fn parse_flat_object(line: &str) -> Result<Vec<(String, Scalar)>, String> {
    if metrics::validate_json(line).is_err() {
        return Err("request is not well-formed JSON".to_string());
    }
    let bytes = line.as_bytes();
    let mut pos = 0usize;
    skip_ws(bytes, &mut pos);
    if bytes.get(pos) != Some(&b'{') {
        return Err("request must be a JSON object".to_string());
    }
    pos += 1;
    let mut fields = Vec::new();
    skip_ws(bytes, &mut pos);
    if bytes.get(pos) == Some(&b'}') {
        return Ok(fields);
    }
    loop {
        skip_ws(bytes, &mut pos);
        let key = read_string(line, &mut pos)?;
        skip_ws(bytes, &mut pos);
        pos += 1; // ':' — guaranteed by the validator
        skip_ws(bytes, &mut pos);
        let value = match bytes.get(pos) {
            Some(b'"') => Scalar::Str(read_string(line, &mut pos)?),
            Some(b'{' | b'[') => {
                return Err(format!(
                    "field {key:?} must be a scalar, not a nested value"
                ))
            }
            Some(_) => {
                let start = pos;
                while bytes
                    .get(pos)
                    .is_some_and(|b| !matches!(b, b',' | b'}' | b' ' | b'\t' | b'\n' | b'\r'))
                {
                    pos += 1;
                }
                Scalar::Token(line[start..pos].to_string())
            }
            None => return Err("truncated request".to_string()),
        };
        fields.push((key, value));
        skip_ws(bytes, &mut pos);
        match bytes.get(pos) {
            Some(b',') => pos += 1,
            _ => return Ok(fields), // '}' — guaranteed by the validator
        }
    }
}

fn skip_ws(bytes: &[u8], pos: &mut usize) {
    while bytes
        .get(*pos)
        .is_some_and(|b| matches!(b, b' ' | b'\t' | b'\n' | b'\r'))
    {
        *pos += 1;
    }
}

/// Read a JSON string literal starting at `pos`, decoding escapes.
fn read_string(line: &str, pos: &mut usize) -> Result<String, String> {
    let bytes = line.as_bytes();
    debug_assert_eq!(bytes.get(*pos), Some(&b'"'));
    *pos += 1;
    let mut out = String::new();
    loop {
        let rest = &line[*pos..];
        let mut chars = rest.char_indices();
        match chars.next() {
            None => return Err("unterminated string".to_string()),
            Some((_, '"')) => {
                *pos += 1;
                return Ok(out);
            }
            Some((_, '\\')) => {
                *pos += 1;
                match bytes.get(*pos) {
                    Some(b'"') => out.push('"'),
                    Some(b'\\') => out.push('\\'),
                    Some(b'/') => out.push('/'),
                    Some(b'n') => out.push('\n'),
                    Some(b'r') => out.push('\r'),
                    Some(b't') => out.push('\t'),
                    Some(b'b') => out.push('\u{8}'),
                    Some(b'f') => out.push('\u{c}'),
                    Some(b'u') => {
                        let hex = line
                            .get(*pos + 1..*pos + 5)
                            .ok_or_else(|| "truncated \\u escape".to_string())?;
                        let code = u32::from_str_radix(hex, 16)
                            .map_err(|_| "invalid \\u escape".to_string())?;
                        out.push(char::from_u32(code).unwrap_or('\u{fffd}'));
                        *pos += 4;
                    }
                    _ => return Err("invalid escape".to_string()),
                }
                *pos += 1;
            }
            Some((i, c)) => {
                out.push(c);
                *pos += i + c.len_utf8();
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn every_query_kind_parses() {
        let cases: [(&str, Query); 19] = [
            ("{\"op\":\"ping\"}", Query::Ping),
            (
                "{\"op\":\"measure\",\"spec\":\"hot-1\",\"primitive\":\"trap\"}",
                Query::MeasureSpec {
                    name: "hot-1".to_string(),
                    primitive: Primitive::Trap,
                },
            ),
            (
                "{\"op\":\"admin\",\"action\":\"spec-list\",\"token\":\"t\"}",
                Query::Admin {
                    action: AdminAction::SpecList,
                    token: "t".to_string(),
                    name: None,
                    spec: None,
                },
            ),
            (
                "{\"op\":\"admin\",\"action\":\"spec-activate\",\"token\":\"t\",\"name\":\"hot-1\"}",
                Query::Admin {
                    action: AdminAction::SpecActivate,
                    token: "t".to_string(),
                    name: Some("hot-1".to_string()),
                    spec: None,
                },
            ),
            ("{\"op\":\"spec-fetch\"}", Query::SpecFetch),
            (
                "{\"op\":\"measure\",\"arch\":\"mips-r3000\",\"primitive\":\"syscall\"}",
                Query::Measure {
                    arch: Arch::R3000,
                    primitive: Primitive::NullSyscall,
                },
            ),
            (
                "{\"op\":\"table\",\"table\":\"table1\"}",
                Query::Table {
                    name: "table1".to_string(),
                },
            ),
            (
                "{\"op\":\"lint\",\"arch\":\"SPARC\"}",
                Query::Lint {
                    arch: Some(Arch::Sparc),
                },
            ),
            ("{\"op\":\"lint\"}", Query::Lint { arch: None }),
            (
                "{\"op\":\"trace\",\"arch\":\"CVAX\",\"primitive\":\"ctxsw\"}",
                Query::Trace {
                    arch: Arch::Cvax,
                    primitive: Primitive::ContextSwitch,
                },
            ),
            ("{\"op\":\"counters\"}", Query::Counters { arch: None }),
            ("{\"op\":\"stats\"}", Query::Stats),
            ("{\"op\":\"spans\"}", Query::Spans { chrome: false }),
            (
                "{\"op\":\"spans\",\"filter\":\"chrome\"}",
                Query::Spans { chrome: true },
            ),
            ("{\"op\":\"metrics\"}", Query::Metrics),
            ("{\"op\":\"health\"}", Query::Health { gossip: None }),
            (
                "{\"op\":\"health\",\"gossip\":\"a:1=3/alive\"}",
                Query::Health {
                    gossip: Some("a:1=3/alive".to_string()),
                },
            ),
            ("{\"op\":\"cluster\"}", Query::Cluster),
            ("{\"op\":\"shutdown\"}", Query::Shutdown),
        ];
        for (line, expected) in cases {
            let request = parse_request(line).unwrap_or_else(|e| panic!("{line}: {e:?}"));
            assert_eq!(request.query, expected, "{line}");
            assert_eq!(request.id, "null", "{line}");
            assert!(!request.forwarded, "{line}");
        }
    }

    #[test]
    fn fwd_marker_flags_relayed_requests() {
        let r = parse_request("{\"op\":\"ping\",\"fwd\":\"1\"}").unwrap();
        assert!(r.forwarded);
        let r = parse_request("{\"op\":\"ping\",\"fwd\":\"0\"}").unwrap();
        assert!(!r.forwarded);
        let (err, _) = parse_request("{\"op\":\"ping\",\"fwd\":1}").expect_err("non-string fwd");
        assert!(err.contains("must be a string"), "{err}");
    }

    #[test]
    fn id_tokens_echo_verbatim() {
        let r = parse_request("{\"op\":\"ping\",\"id\":42}").unwrap();
        assert_eq!(r.id, "42");
        let r = parse_request("{\"op\":\"ping\",\"id\":\"a\\\"b\"}").unwrap();
        assert_eq!(r.id, "\"a\\\"b\"");
        let r = parse_request("{\"id\":true,\"op\":\"ping\"}").unwrap();
        assert_eq!(r.id, "true");
    }

    #[test]
    fn bad_requests_fail_with_one_line_errors() {
        for (line, needle) in [
            ("not json", "not well-formed"),
            ("[1,2]", "must be a JSON object"),
            ("{\"op\":\"warp\"}", "unknown op"),
            ("{\"op\":\"measure\",\"arch\":\"R3000\"}", "\"primitive\""),
            (
                "{\"op\":\"measure\",\"arch\":\"vax\",\"primitive\":\"trap\"}",
                "mips-r3000",
            ),
            ("{\"op\":\"table\",\"table\":\"table99\"}", "table1"),
            ("{\"op\":\"spans\",\"filter\":\"perfetto\"}", "chrome"),
            ("{\"op\":1}", "must be a string"),
            ("{\"op\":{\"nested\":1}}", "scalar"),
            ("{}", "missing required field \"op\""),
            (
                "{\"op\":\"measure\",\"arch\":\"R3000\",\"spec\":\"x\",\"primitive\":\"trap\"}",
                "not both",
            ),
            ("{\"op\":\"admin\",\"action\":\"spec-list\"}", "\"token\""),
            (
                "{\"op\":\"admin\",\"action\":\"reboot\",\"token\":\"t\"}",
                "valid actions",
            ),
            (
                "{\"op\":\"admin\",\"action\":\"spec-load\",\"token\":\"t\"}",
                "\"spec\"",
            ),
            (
                "{\"op\":\"admin\",\"action\":\"spec-activate\",\"token\":\"t\"}",
                "\"name\"",
            ),
        ] {
            let (err, _) = parse_request(line).expect_err(line);
            assert!(err.contains(needle), "{line}: {err}");
            assert!(!err.contains('\n'), "{line}: {err}");
        }
    }

    #[test]
    fn bad_request_still_recovers_the_id() {
        let (_, id) = parse_request("{\"op\":\"warp\",\"id\":7}").expect_err("unknown op");
        assert_eq!(id, "7");
    }

    #[test]
    fn envelopes_are_valid_json() {
        use osarch_core::metrics::validate_json;
        let ok = ok_envelope("17", true, 2, 42, "{\"x\":1}");
        assert_eq!(validate_json(&ok), Ok(()), "{ok}");
        assert!(ok.contains("\"cached\":true"));
        assert!(ok.contains("\"epoch\":2"));
        let err = err_envelope("null", "boom \"quoted\"\nline");
        assert_eq!(validate_json(&err), Ok(()), "{err}");
        assert!(!err.contains('\n'));
        let degraded = degraded_envelope("3", 5, 17, "{\"x\":1}", "panicked: \"boom\"");
        assert_eq!(validate_json(&degraded), Ok(()), "{degraded}");
        assert!(degraded.contains("\"degraded\":true"));
        assert!(degraded.contains("\"cached\":true"));
        assert!(degraded.contains("\"epoch\":5"));
        assert!(!degraded.contains('\n'));
        let redirect = not_owner_envelope(
            "9",
            "measure/R3000/trap",
            "127.0.0.1:4001",
            &["127.0.0.1:4001", "127.0.0.1:4002"],
        );
        assert_eq!(validate_json(&redirect), Ok(()), "{redirect}");
        assert!(redirect.contains("\"error\":\"not_owner\""));
        assert!(redirect.contains("\"owner\":\"127.0.0.1:4001\""));
        assert!(redirect.contains("\"replicas\":\"127.0.0.1:4001,127.0.0.1:4002\""));
    }

    #[test]
    fn cache_keys_are_canonical_and_control_ops_uncached() {
        let builtins = SpecSnapshot::builtins();
        let q = Query::Measure {
            arch: Arch::R3000,
            primitive: Primitive::Trap,
        };
        assert_eq!(q.routing_key().as_deref(), Some("measure/R3000/trap"));
        assert_eq!(
            q.cache_key(&builtins),
            Some(format!("{}measure/R3000/trap", builtins.key_prefix()))
        );
        for q in [
            Query::Stats,
            Query::Spans { chrome: true },
            Query::Metrics,
            Query::Shutdown,
            Query::Ping,
            Query::Health { gossip: None },
            Query::Cluster,
            Query::SpecFetch,
            Query::Admin {
                action: AdminAction::SpecList,
                token: "t".to_string(),
                name: None,
                spec: None,
            },
        ] {
            assert_eq!(q.routing_key(), None, "{q:?}");
            assert_eq!(q.cache_key(&builtins), None, "{q:?}");
        }
    }

    #[test]
    fn cache_keys_are_epoch_scoped_but_routing_keys_are_not() {
        let builtins = SpecSnapshot::builtins();
        let doc = osarch_cpu::Arch::Sparc.spec().to_json("hot-sparc");
        let next = builtins
            .with_spec(&doc, builtins.epoch() + 1)
            .expect("valid doc");
        let q = Query::Measure {
            arch: Arch::R3000,
            primitive: Primitive::Trap,
        };
        assert_ne!(q.cache_key(&builtins), q.cache_key(&next));
        assert_eq!(q.routing_key(), Some("measure/R3000/trap".to_string()));
        let qs = Query::MeasureSpec {
            name: "hot-sparc".to_string(),
            primitive: Primitive::Trap,
        };
        assert_eq!(qs.routing_key(), Some("measure/hot-sparc/trap".to_string()));
        assert_eq!(
            qs.cache_key(&next),
            Some(format!("{}measure/hot-sparc/trap", next.key_prefix()))
        );
    }

    #[test]
    fn computed_payloads_are_valid_single_line_json() {
        use osarch_core::metrics::validate_json;
        for query in [
            Query::Measure {
                arch: Arch::Sparc,
                primitive: Primitive::Trap,
            },
            Query::Table {
                name: "table6".to_string(),
            },
            Query::Lint {
                arch: Some(Arch::R2000),
            },
        ] {
            let payload = query.compute(&SpecSnapshot::builtins());
            assert_eq!(validate_json(&payload), Ok(()), "{query:?}");
            assert!(
                !payload.contains('\n'),
                "{query:?} payload must be one line"
            );
        }
    }

    /// Feed a framer from a byte slice in `chunk`-sized commits,
    /// collecting every frame as an owned string (or `"<oversized>"`).
    fn frames_from(frame_buf: &mut FrameBuf, data: &[u8], chunk: usize) -> Vec<String> {
        let mut out = Vec::new();
        let mut offset = 0;
        while offset < data.len() {
            let take = chunk.min(data.len() - offset);
            let spare = frame_buf.spare();
            assert!(spare.len() >= MIN_SPARE, "spare window shrank");
            let take = take.min(spare.len());
            spare[..take].copy_from_slice(&data[offset..offset + take]);
            frame_buf.commit(take);
            offset += take;
            loop {
                match frame_buf.next_frame() {
                    Frame::None => break,
                    Frame::Oversized => out.push("<oversized>".to_string()),
                    Frame::Line { start, end } => {
                        out.push(String::from_utf8_lossy(frame_buf.bytes(start, end)).into_owned());
                    }
                }
            }
        }
        out
    }

    #[test]
    fn framer_reassembles_one_byte_arrivals() {
        let mut frame_buf = FrameBuf::new(64);
        let frames = frames_from(&mut frame_buf, b"{\"op\":\"ping\"}\n", 1);
        assert_eq!(frames, vec!["{\"op\":\"ping\"}".to_string()]);
        assert!(frame_buf.is_empty());
    }

    #[test]
    fn framer_splits_pipelined_burst_in_order() {
        let mut frame_buf = FrameBuf::new(64);
        let burst = b"{\"id\":1}\n{\"id\":2}\n{\"id\":3}\npartial";
        let frames = frames_from(&mut frame_buf, burst, burst.len());
        assert_eq!(frames, vec!["{\"id\":1}", "{\"id\":2}", "{\"id\":3}"]);
        assert_eq!(frame_buf.buffered(), "partial".len());
        let (start, end) = frame_buf.take_eof_line().expect("trailing partial");
        assert_eq!(frame_buf.bytes(start, end), b"partial");
    }

    #[test]
    fn framer_eof_line_surfaces_unterminated_tail() {
        let mut frame_buf = FrameBuf::new(64);
        let frames = frames_from(&mut frame_buf, b"{\"op\":\"ping\"}", 5);
        assert!(frames.is_empty());
        let (start, end) = frame_buf.take_eof_line().expect("tail line");
        assert_eq!(frame_buf.bytes(start, end), b"{\"op\":\"ping\"}");
        assert!(frame_buf.take_eof_line().is_none(), "tail consumed");
    }

    #[test]
    fn framer_resyncs_after_oversized_line_and_releases_capacity() {
        let baseline = MIN_SPARE;
        let mut frame_buf = FrameBuf::new(baseline);
        let mut stream = vec![b'x'; MAX_REQUEST_BYTES + 9000];
        stream.push(b'\n');
        stream.extend_from_slice(b"{\"op\":\"ping\",\"id\":7}\n");
        let frames = frames_from(&mut frame_buf, &stream, 8 * 1024);
        assert_eq!(
            frames,
            vec![
                "<oversized>".to_string(),
                "{\"op\":\"ping\",\"id\":7}".to_string()
            ],
            "exactly one error per oversized line, then resynced"
        );
        assert!(
            frame_buf.capacity() <= MAX_REQUEST_BYTES + 2 * MIN_SPARE,
            "discard mode must not grow the buffer unboundedly: {}",
            frame_buf.capacity()
        );
        frame_buf.reset();
        assert_eq!(
            frame_buf.capacity(),
            baseline,
            "reset must shed capacity grown past the baseline"
        );
    }

    #[test]
    fn framer_flags_oversized_line_that_arrives_whole() {
        let mut frame_buf = FrameBuf::new(64);
        let mut stream = vec![b'y'; MAX_REQUEST_BYTES + 1];
        stream.push(b'\n');
        stream.extend_from_slice(b"{}\n");
        // One giant commit: line + newline land together.
        let spare_needed = stream.len();
        let mut offset = 0;
        let mut frames = Vec::new();
        while offset < spare_needed {
            let spare = frame_buf.spare();
            let take = spare.len().min(spare_needed - offset);
            spare[..take].copy_from_slice(&stream[offset..offset + take]);
            frame_buf.commit(take);
            offset += take;
            loop {
                match frame_buf.next_frame() {
                    Frame::None => break,
                    Frame::Oversized => frames.push("<oversized>".to_string()),
                    Frame::Line { start, end } => frames
                        .push(String::from_utf8_lossy(frame_buf.bytes(start, end)).into_owned()),
                }
            }
        }
        assert_eq!(frames, vec!["<oversized>", "{}"]);
    }
}
