//! The event-driven query server core.
//!
//! A [`Server`] is a `std::net::TcpListener` accept thread feeding a set
//! of sharded event loops — one per configured worker — over per-loop
//! handoff queues. Each loop drives its connections with nonblocking
//! sockets and the `osarch-poll` readiness shim (epoll on Linux, a
//! portable tick fallback elsewhere): requests are line-JSON (see
//! [`crate::protocol`]), framed incrementally so a connection can keep
//! **many pipelined requests in flight** and replies are batched into a
//! single write per readiness pass. Per-connection read/write buffers
//! come from a per-loop arena and are recycled on disconnect — the hot
//! path allocates for reply strings, never for framing.
//!
//! The loops never block on anything but the poller:
//!
//! * control queries (`ping`, `stats`, `spans`, `health`, `shutdown`)
//!   and already-landed cache entries ([`ShardedCache::try_get`]) are
//!   answered inline on the loop;
//! * a data-query miss is offloaded to a small compute pool through the
//!   bounded job queue; the pool runs the blocking single-flight path
//!   (coalescing concurrent misses), then posts a completion to the
//!   owning loop's mailbox and nudges its waker. Ordered reply *tickets*
//!   per connection keep pipelined responses in request order even when
//!   computations finish out of order.
//!
//! The server is built to survive misbehaviour, injected or real:
//!
//! * request handling runs under `catch_unwind` — a panicking handler
//!   produces an error envelope, never a dead loop;
//! * a loop that *does* die respawns in place with a fresh poller; a
//!   per-loop generation counter keeps late completions from being
//!   misdelivered to a recycled connection slot;
//! * progress-based timers: any byte read resets the idle clock (only a
//!   truly silent connection is disconnected at `idle_timeout`), and a
//!   client that stops draining its socket is disconnected after
//!   `write_timeout` without write progress — so a stalled client can
//!   neither wedge a loop nor block shutdown;
//! * an oversized request line gets an error envelope and the connection
//!   is *resynchronized* at the next newline, buffer capacity released;
//! * a failed recomputation degrades to the last good cached value,
//!   explicitly flagged, rather than failing the request outright;
//! * admission control bounds open connections (`queue_depth` is the
//!   global connection budget); the surplus is answered `busy`.
//!
//! Fault injection ([`osarch_chaos::ChaosController`]) threads through
//! the accept path, the compute pool, the response writer and the loop
//! lifecycle; with no controller configured every hook is one branch.
//!
//! Shutdown is cooperative: a `shutdown` request (or
//! [`ServerHandle::shutdown`]) flips the flag, closes the job queue and
//! the handoffs, wakes every loop, and pokes the accept thread with a
//! loopback connection. Loops flush completed replies and exit.

use crate::cache::{Fetched, ShardedCache};
use crate::protocol::{self, AdminAction, Frame, FrameBuf, Query};
use crate::queue::BoundedQueue;
use crate::registry::{parse_spec_fetch, SpecRegistry, SpecSnapshot};
use crate::stats::{op_slot, HealthGauges, ServeStats, OP_NAMES};
use osarch_chaos::{ChaosController, Failpoint};
use osarch_cluster::{Membership, Ring};
use osarch_poll::{fd_of, new_poller, Event, Interest, Readiness, Token, WakeRx, Waker};
use osarch_telemetry::{
    PendingTrace, TelemetryHub, TraceIdGen, COUNTER_DEGRADED, COUNTER_ERRORS, COUNTER_HITS,
    COUNTER_MISSES, COUNTER_REQUESTS,
};
use std::collections::VecDeque;
use std::io::{Read, Write};
use std::net::{SocketAddr, TcpListener, TcpStream};
use std::panic::AssertUnwindSafe;
use std::sync::atomic::{AtomicBool, AtomicU64, AtomicUsize, Ordering};
use std::sync::{Arc, Mutex};
use std::time::{Duration, Instant};

/// Server tuning knobs.
#[derive(Debug, Clone)]
pub struct ServerConfig {
    /// Listen address (`127.0.0.1:0` picks an ephemeral port).
    pub addr: String,
    /// Event loops (one poller + connection set each).
    pub workers: usize,
    /// Cache shards.
    pub shards: usize,
    /// Global open-connection budget; connections beyond it are answered
    /// with a `busy` error envelope and dropped (backpressure). Kept
    /// under its historical name: in the thread-per-connection core this
    /// bounded the handoff queue, which was the same admission decision.
    pub queue_depth: usize,
    /// Per-request service deadline; a request that takes longer is
    /// answered with a `deadline exceeded` error envelope.
    pub deadline: Duration,
    /// Idle timeout per connection, measured from the **last byte
    /// read**: a client making byte-level progress mid-request is never
    /// idle, only a truly silent connection is disconnected.
    pub idle_timeout: Duration,
    /// Write-progress deadline per connection; a client that stops
    /// draining its socket is disconnected instead of wedging the loop
    /// (and, with it, shutdown).
    pub write_timeout: Duration,
    /// Compute-pool threads for offloaded data queries (`0` = one per
    /// event loop).
    pub compute_threads: usize,
    /// Trace-sampling rate: every Nth request per loop carries a full
    /// per-stage trace (`0` disables tracing). The decision is a counter
    /// check made *before* parse, so unsampled requests never allocate
    /// or read the clock for telemetry.
    pub sample_every: u64,
    /// Seed for the deterministic per-loop trace-id generators. Under a
    /// chaos replay with a fixed seed, trace ids replay bit-identically.
    pub telemetry_seed: u64,
    /// When set, bind a plain-HTTP scrape listener here: `GET /metrics`
    /// answers Prometheus text, any path containing `json` answers the
    /// `osarch-metrics/1` snapshot document.
    pub metrics_addr: Option<String>,
    /// Fault-injection schedule; `None` serves faithfully.
    pub chaos: Option<Arc<ChaosController>>,
    /// Multi-node cluster mode; `None` serves standalone (the default).
    pub cluster: Option<ClusterConfig>,
    /// Shared secret for the `admin` op (live spec hot-swap). `None` —
    /// the default — refuses every `admin` request outright: the control
    /// plane simply does not exist on an unconfigured server.
    pub admin_token: Option<String>,
}

/// Cluster-mode knobs: the static seed list, this node's identity on
/// it, and the replication/forwarding policy.
///
/// Every node builds the same [`Ring`] from the same seed list, so key
/// placement needs no coordination; liveness is the only gossiped
/// state. `self_addr` must be the address *peers dial* (the listen
/// address with a real port, not `:0`) and must appear verbatim in
/// every node's `peers`-plus-self set.
#[derive(Debug, Clone)]
pub struct ClusterConfig {
    /// This node's dialable address as it appears on the ring.
    pub self_addr: String,
    /// Every peer's dialable address (excluding or including self —
    /// self is always added to the ring).
    pub peers: Vec<String>,
    /// Replication factor R: each key is served by the owner plus
    /// `R - 1` distinct ring successors.
    pub replicas: usize,
    /// Virtual nodes per physical node.
    pub vnodes: usize,
    /// This node's starting incarnation; a respawned node must come
    /// back with a *higher* one so gossip revives it over stale `down`
    /// rumours.
    pub incarnation: u64,
    /// When `true` (the default), a request for a key this node does
    /// not replicate is proxied to a replica and answered in place;
    /// when `false`, the client is redirected with a `not_owner`
    /// envelope instead.
    pub proxy: bool,
    /// Anti-entropy cadence: how often the gossip thread probes the
    /// next peer with a `health` + digest exchange.
    pub gossip_interval: Duration,
}

impl Default for ClusterConfig {
    fn default() -> ClusterConfig {
        ClusterConfig {
            self_addr: String::new(),
            peers: Vec::new(),
            replicas: 2,
            vnodes: osarch_cluster::DEFAULT_VNODES,
            incarnation: 0,
            proxy: true,
            gossip_interval: Duration::from_millis(250),
        }
    }
}

impl Default for ServerConfig {
    fn default() -> ServerConfig {
        ServerConfig {
            addr: "127.0.0.1:0".to_string(),
            workers: 4,
            shards: 16,
            queue_depth: 64,
            deadline: Duration::from_secs(30),
            idle_timeout: Duration::from_secs(30),
            write_timeout: Duration::from_secs(5),
            compute_threads: 0,
            sample_every: 64,
            telemetry_seed: 0,
            metrics_addr: None,
            chaos: None,
            cluster: None,
            admin_token: None,
        }
    }
}

/// The poll tick: the longest a loop sleeps before re-checking its
/// mailbox, timers and the shutdown flag.
const TICK: Duration = Duration::from_millis(100);

/// Waker registration token; connection tokens start above it.
const WAKER_TOKEN: Token = 0;
const TOKEN_BASE: usize = 1;

/// Resting capacity of an arena read framer.
const READ_BASELINE: usize = 8 * 1024;

/// Resting capacity of an arena write buffer; buffers grown well past it
/// are shrunk back when they drain or retire.
const WRITE_BASELINE: usize = 16 * 1024;

/// Stop parsing new requests from a connection whose un-flushed reply
/// backlog exceeds this (resume when it drains): per-connection flow
/// control so a slow reader cannot balloon the server.
const WRITE_HIGH_WATER: usize = 256 * 1024;

/// Retired buffer pairs kept per loop for reuse.
const ARENA_MAX: usize = 1024;

/// Safety net for a compute job whose completion never arrives (the
/// pool posts an error completion even on panic, so this should be
/// unreachable): convert the ticket to an error after deadline + grace.
const LOST_JOB_GRACE: Duration = Duration::from_secs(60);

/// One reply slot in a connection's ordered pipeline.
enum Ticket {
    /// Rendered envelope, ready to batch into the write buffer. Replies
    /// the old core exposed to write-path chaos (successful envelopes)
    /// set `chaos`; error envelopes are always delivered faithfully.
    /// A sampled request's trace rides along and is finalized (the
    /// `write` stage) when the envelope is buffered.
    Done {
        envelope: String,
        chaos: bool,
        trace: Option<Box<PendingTrace>>,
    },
    /// Waiting on an offloaded computation.
    Waiting {
        seq: u64,
        id: String,
        queued_at: Instant,
    },
}

/// One served connection, owned by exactly one event loop.
struct Conn {
    stream: TcpStream,
    token: Token,
    /// Loop-generation stamp: completions carry it so a recycled slot
    /// can never receive a predecessor's reply.
    gen: u64,
    frames: FrameBuf,
    write_buf: Vec<u8>,
    write_pos: usize,
    pending: VecDeque<Ticket>,
    next_seq: u64,
    last_read: Instant,
    last_write: Instant,
    interest: Interest,
    read_closed: bool,
    /// Handler panicked: answer, flush, hang up.
    poisoned: bool,
    /// Chaos tore the response: flush the prefix, hang up.
    torn: bool,
    /// Hard I/O error: drop immediately.
    dead: bool,
    /// Chaos write stall: no flush attempts until this instant.
    stalled_until: Option<Instant>,
    _permit: Permit,
}

impl Conn {
    fn write_backlog(&self) -> usize {
        self.write_buf.len() - self.write_pos
    }
}

/// Releases one unit of the open-connection budget on drop, wherever the
/// connection dies — handoff, event loop, or an unwinding loop thread.
struct Permit(Arc<AtomicUsize>);

impl Drop for Permit {
    fn drop(&mut self) {
        self.0.fetch_sub(1, Ordering::SeqCst);
    }
}

/// One offloaded data-query computation.
struct Job {
    loop_index: usize,
    token: Token,
    gen: u64,
    seq: u64,
    key: String,
    query: Query,
    id: String,
    op: &'static str,
    started: Instant,
    start_us: u64,
    /// The registry snapshot captured at admission: the computation and
    /// the reply's `epoch` field both resolve against it, so in-flight
    /// work finishes on the spec version it started under even when the
    /// registry swaps mid-flight.
    snapshot: Arc<SpecSnapshot>,
    /// Sampled request's trace, marked at enqueue time — the pool closes
    /// the `queue` stage when it pops the job.
    trace: Option<Box<PendingTrace>>,
    /// Cluster relay: forward the original line (with the `fwd` marker)
    /// to this replica instead of computing locally. On any relay
    /// failure the pool records the miss against the peer and falls
    /// back to a local computation — availability over placement.
    relay: Option<Relay>,
}

/// A pending cluster relay: the target replica and the re-framed
/// request line (original flat object plus `"fwd":"1"`).
struct Relay {
    target: String,
    line: String,
}

/// What the pool produced for a job: a local cache fetch, or a raw
/// reply envelope relayed verbatim from the owning replica (the remote
/// answered under the same request id, so it passes through untouched).
enum Outcome {
    Fetched(Fetched),
    Relayed(String),
}

/// A finished computation on its way back to the owning loop.
struct Completion {
    token: Token,
    gen: u64,
    seq: u64,
    id: String,
    op: &'static str,
    started: Instant,
    start_us: u64,
    /// The epoch the job's snapshot was captured at; the reply envelope
    /// carries it.
    epoch: u64,
    outcome: Outcome,
    trace: Option<Box<PendingTrace>>,
}

/// Per-loop shared state: the accept handoff, the completion mailbox,
/// and the waker that interrupts the loop's poll wait.
struct LoopShared {
    handoff: BoundedQueue<(TcpStream, Permit)>,
    completions: Mutex<Vec<Completion>>,
    waker: Waker,
    /// Monotonic across respawns, so stale completions can't misroute.
    gen: AtomicU64,
    /// Age of this loop's oldest unflushed reply, in ms; refreshed each
    /// housekeeping sweep so `health` can report write-backlog age
    /// without touching loop-owned connection state.
    backlog_ms: AtomicU64,
}

/// Per-loop trace state, owned by the loop thread (and surviving loop
/// respawns, so a reincarnated loop never reissues trace ids): the
/// deterministic id generator plus the sampling counter.
struct LoopTrace {
    ids: TraceIdGen,
    counter: u64,
}

impl LoopTrace {
    /// Count one request; true when this one is sampled. Pure counter
    /// arithmetic — the unsampled path costs one branch, no clock.
    fn tick(&mut self, sample_every: u64) -> bool {
        if sample_every == 0 {
            return false;
        }
        self.counter = self.counter.wrapping_add(1);
        self.counter.is_multiple_of(sample_every)
    }
}

/// State shared by the accept thread, the loops, the pool and the handle.
struct Shared {
    cache: ShardedCache,
    stats: Arc<ServeStats>,
    hub: Arc<TelemetryHub>,
    shutdown: AtomicBool,
    deadline: Duration,
    idle_timeout: Duration,
    write_timeout: Duration,
    workers: usize,
    started: Instant,
    chaos: Option<Arc<ChaosController>>,
    /// The bound address, for the shutdown poke that wakes the accept loop.
    addr: SocketAddr,
    /// The scrape listener's bound address, for its own shutdown poke.
    metrics_addr: Option<SocketAddr>,
    conn_budget: usize,
    open_conns: Arc<AtomicUsize>,
    jobs: BoundedQueue<Job>,
    loops: Vec<LoopShared>,
    cluster: Option<ClusterState>,
    /// The versioned spec registry. Lives here — not in any loop — so a
    /// committed epoch survives loop deaths and respawns.
    registry: SpecRegistry,
    admin_token: Option<String>,
}

/// Live cluster-mode state: the (immutable) ring, the (gossiped)
/// membership table, and the routing counters.
struct ClusterState {
    ring: Ring,
    membership: Mutex<Membership>,
    self_addr: String,
    replicas: usize,
    proxy: bool,
    gossip_interval: Duration,
    /// Requests this node relayed to a replica on the client's behalf.
    forwarded: AtomicU64,
    /// Forwarded requests this node answered for a peer.
    proxied: AtomicU64,
    /// Requests answered with a `not_owner` redirect.
    redirected: AtomicU64,
    /// Completed gossip probe rounds (successful or not).
    gossip_rounds: AtomicU64,
}

impl ClusterState {
    fn from_config(config: &ClusterConfig) -> ClusterState {
        let mut nodes = config.peers.clone();
        nodes.push(config.self_addr.clone());
        ClusterState {
            ring: Ring::new(&nodes, config.vnodes.max(1)),
            membership: Mutex::new(Membership::new(
                &config.self_addr,
                config.incarnation,
                &config.peers,
            )),
            self_addr: config.self_addr.clone(),
            replicas: config.replicas.max(1),
            proxy: config.proxy,
            gossip_interval: config.gossip_interval,
            forwarded: AtomicU64::new(0),
            proxied: AtomicU64::new(0),
            redirected: AtomicU64::new(0),
            gossip_rounds: AtomicU64::new(0),
        }
    }

    /// The telemetry view: ring ownership, membership liveness, and the
    /// routing counters, sampled now.
    fn gauges(&self) -> osarch_telemetry::ClusterGauges {
        let membership = lock(&self.membership);
        osarch_telemetry::ClusterGauges {
            ownership_ppm: (self.ring.ownership(&self.self_addr) * 1_000_000.0).round() as u64,
            peers_alive: membership.alive_count(),
            peers_total: self.ring.len() as u64,
            incarnation: membership.self_incarnation(),
            forwarded: self.forwarded.load(Ordering::Relaxed),
            proxied: self.proxied.load(Ordering::Relaxed),
            redirected: self.redirected.load(Ordering::Relaxed),
            gossip_rounds: self.gossip_rounds.load(Ordering::Relaxed),
        }
    }

    /// The `cluster` op's payload: an `osarch-cluster/1` document with
    /// this node's ring view and the full membership table.
    fn status_payload(&self) -> String {
        let gauges = self.gauges();
        let membership = lock(&self.membership);
        let nodes: Vec<String> = membership
            .entries()
            .iter()
            .map(|(addr, state)| {
                format!(
                    "{{\"addr\":\"{}\",\"incarnation\":{},\"status\":\"{}\"}}",
                    osarch_core::metrics::json_escape(addr),
                    state.incarnation,
                    state.status.label()
                )
            })
            .collect();
        format!(
            concat!(
                "{{\"schema\":\"{}\",\"self\":\"{}\",\"incarnation\":{},",
                "\"replicas\":{},\"vnodes\":{},\"proxy\":{},",
                "\"ownership_ppm\":{},\"peers_alive\":{},\"peers_total\":{},",
                "\"forwarded\":{},\"proxied\":{},\"redirected\":{},",
                "\"gossip_rounds\":{},\"nodes\":[{}]}}"
            ),
            osarch_core::metrics::CLUSTER_SCHEMA,
            osarch_core::metrics::json_escape(&self.self_addr),
            gauges.incarnation,
            self.replicas,
            self.ring.vnodes(),
            self.proxy,
            gauges.ownership_ppm,
            gauges.peers_alive,
            gauges.peers_total,
            gauges.forwarded,
            gauges.proxied,
            gauges.redirected,
            gauges.gossip_rounds,
            nodes.join(","),
        )
    }
}

impl Shared {
    /// Take a chaos decision at `fp`; `false` whenever no controller is
    /// configured. Injections are counted in the serve stats so `health`
    /// can report them without reaching into the controller.
    fn inject(&self, fp: Failpoint) -> bool {
        let hit = self
            .chaos
            .as_ref()
            .is_some_and(|chaos| chaos.should_inject(fp));
        if hit {
            self.stats.record_fault_injected();
        }
        hit
    }

    /// Take a chaos delay decision at `fp` with a deterministic duration.
    fn inject_delay(&self, fp: Failpoint, min: Duration, max: Duration) -> Option<Duration> {
        let delay = self
            .chaos
            .as_ref()
            .and_then(|chaos| chaos.inject_delay(fp, min, max));
        if delay.is_some() {
            self.stats.record_fault_injected();
        }
        delay
    }

    fn open_conns(&self) -> usize {
        self.open_conns.load(Ordering::SeqCst)
    }

    /// Microseconds since the server started — every telemetry timestamp
    /// is relative to this origin, never to the wall clock.
    fn uptime_us(&self) -> u64 {
        self.started.elapsed().as_micros() as u64
    }

    /// Age of the oldest unflushed reply across every loop, in ms.
    fn oldest_backlog_ms(&self) -> u64 {
        self.loops
            .iter()
            .map(|l| l.backlog_ms.load(Ordering::Relaxed))
            .max()
            .unwrap_or(0)
    }

    /// One consistent-enough telemetry snapshot: windowed histograms
    /// merged across shards, plus gauges and totals sampled now.
    fn telemetry_snapshot(&self) -> osarch_telemetry::MetricsSnapshot {
        let gauges = osarch_telemetry::Gauges {
            conns_open: self.open_conns() as u64,
            conn_budget: self.conn_budget as u64,
            workers: self.workers as u64,
            workers_live: self.stats.workers_live(),
            compute_backlog: self.jobs.len() as u64,
            oldest_write_backlog_ms: self.oldest_backlog_ms(),
            registry_epoch: self.registry.snapshot().epoch(),
            shutting_down: self.shutdown.load(Ordering::SeqCst),
        };
        let totals = osarch_telemetry::Totals {
            requests: self.stats.requests(),
            errors: self.stats.errors(),
            rejected: self.stats.rejected(),
            deadline_exceeded: self.stats.deadline_exceeded(),
            panics: self.stats.panics(),
            degraded: self.stats.degraded(),
            worker_respawns: self.stats.worker_respawns(),
            faults_injected: self.stats.faults_injected(),
            conns_opened: self.stats.conns_opened(),
            cache_hits: self.cache.hits(),
            cache_misses: self.cache.misses(),
            cache_coalesced: self.cache.coalesced(),
            cache_failed: self.cache.failed(),
            cache_degraded: self.cache.degraded(),
            swaps: self.registry.swaps(),
            rollbacks: self.registry.rollbacks(),
        };
        let mut snap = self.hub.snapshot(self.uptime_us(), gauges, totals);
        snap.swap_latency_us = self.registry.swap_latency();
        if let Some(cluster) = &self.cluster {
            snap.cluster = Some(cluster.gauges());
        }
        snap
    }
}

fn lock<T>(mutex: &Mutex<T>) -> std::sync::MutexGuard<'_, T> {
    mutex
        .lock()
        .unwrap_or_else(std::sync::PoisonError::into_inner)
}

/// The server factory. See [`Server::start`].
pub struct Server;

impl Server {
    /// Bind `config.addr`, spawn the accept thread, the event loops and
    /// the compute pool, and return a handle. Serving begins immediately.
    pub fn start(config: &ServerConfig) -> std::io::Result<ServerHandle> {
        let listener = TcpListener::bind(&config.addr)?;
        let addr = listener.local_addr()?;
        let workers = config.workers.max(1);
        let conn_budget = config.queue_depth.max(1);
        let open_conns = Arc::new(AtomicUsize::new(0));
        let mut wake_rxs = Vec::with_capacity(workers);
        let mut loops = Vec::with_capacity(workers);
        for _ in 0..workers {
            let (waker, wake_rx) = osarch_poll::waker()?;
            wake_rxs.push(wake_rx);
            loops.push(LoopShared {
                handoff: BoundedQueue::new(conn_budget.max(64)),
                completions: Mutex::new(Vec::new()),
                waker,
                gen: AtomicU64::new(0),
                backlog_ms: AtomicU64::new(0),
            });
        }
        let compute_threads = if config.compute_threads == 0 {
            workers
        } else {
            config.compute_threads
        };
        let metrics_listener = match &config.metrics_addr {
            Some(scrape_addr) => Some(TcpListener::bind(scrape_addr)?),
            None => None,
        };
        let metrics_addr = match &metrics_listener {
            Some(listener) => Some(listener.local_addr()?),
            None => None,
        };
        let shared = Arc::new(Shared {
            cache: ShardedCache::new(config.shards),
            stats: Arc::new(ServeStats::new()),
            hub: Arc::new(TelemetryHub::new(
                workers,
                &OP_NAMES,
                config.sample_every,
                config.telemetry_seed,
            )),
            shutdown: AtomicBool::new(false),
            deadline: config.deadline,
            idle_timeout: config.idle_timeout,
            write_timeout: config.write_timeout,
            workers,
            started: Instant::now(),
            chaos: config.chaos.clone(),
            addr,
            metrics_addr,
            conn_budget,
            open_conns,
            jobs: BoundedQueue::new((conn_budget * 4).max(1024)),
            loops,
            cluster: config.cluster.as_ref().map(ClusterState::from_config),
            registry: SpecRegistry::new(),
            admin_token: config.admin_token.clone(),
        });
        let mut threads = Vec::with_capacity(workers + compute_threads + 2);
        for (index, wake_rx) in wake_rxs.into_iter().enumerate() {
            let shared = Arc::clone(&shared);
            threads.push(
                std::thread::Builder::new()
                    .name(format!("serve-loop-{index}"))
                    .spawn(move || loop_main(&shared, index, &wake_rx))?,
            );
        }
        for index in 0..compute_threads {
            let shared = Arc::clone(&shared);
            threads.push(
                std::thread::Builder::new()
                    .name(format!("serve-compute-{index}"))
                    .spawn(move || pool_main(&shared))?,
            );
        }
        {
            let shared = Arc::clone(&shared);
            threads.push(
                std::thread::Builder::new()
                    .name("serve-accept".to_string())
                    .spawn(move || accept_loop(&listener, &shared))?,
            );
        }
        if let Some(listener) = metrics_listener {
            let shared = Arc::clone(&shared);
            threads.push(
                std::thread::Builder::new()
                    .name("serve-metrics".to_string())
                    .spawn(move || metrics_loop(&listener, &shared))?,
            );
        }
        if shared.cluster.as_ref().is_some_and(|c| c.ring.len() > 1) {
            let shared = Arc::clone(&shared);
            threads.push(
                std::thread::Builder::new()
                    .name("serve-gossip".to_string())
                    .spawn(move || gossip_loop(&shared))?,
            );
        }
        Ok(ServerHandle {
            addr,
            shared,
            threads,
        })
    }
}

/// A running server: its bound address plus shutdown/join control.
pub struct ServerHandle {
    addr: SocketAddr,
    shared: Arc<Shared>,
    threads: Vec<std::thread::JoinHandle<()>>,
}

impl ServerHandle {
    /// The bound address (with the real port when `:0` was requested).
    #[must_use]
    pub fn addr(&self) -> SocketAddr {
        self.addr
    }

    /// (hits, misses, coalesced) of the response cache.
    #[must_use]
    pub fn cache_stats(&self) -> (u64, u64, u64) {
        (
            self.shared.cache.hits(),
            self.shared.cache.misses(),
            self.shared.cache.coalesced(),
        )
    }

    /// (failed computations, degraded replies) of the response cache.
    #[must_use]
    pub fn cache_failure_stats(&self) -> (u64, u64) {
        (self.shared.cache.failed(), self.shared.cache.degraded())
    }

    /// Total cache lookups. The single-flight accounting invariant is
    /// `lookups == hits + misses + coalesced`, exactly.
    #[must_use]
    pub fn cache_lookups(&self) -> u64 {
        self.shared.cache.lookups()
    }

    /// (ok requests, error requests, rejected connections).
    #[must_use]
    pub fn request_stats(&self) -> (u64, u64, u64) {
        (
            self.shared.stats.requests(),
            self.shared.stats.errors(),
            self.shared.stats.rejected(),
        )
    }

    /// Connections currently admitted against the budget.
    #[must_use]
    pub fn open_connections(&self) -> usize {
        self.shared.open_conns()
    }

    /// A shareable view of the serving counters that outlives the handle
    /// — the chaos soak reads worker liveness *after* [`ServerHandle::stop`].
    #[must_use]
    pub fn stats(&self) -> Arc<ServeStats> {
        Arc::clone(&self.shared.stats)
    }

    /// The telemetry hub: windowed histograms, sampled span chains, and
    /// the deterministic trace-id generators. Outlives the handle.
    #[must_use]
    pub fn telemetry(&self) -> Arc<TelemetryHub> {
        Arc::clone(&self.shared.hub)
    }

    /// The scrape listener's bound address, when `metrics_addr` was
    /// configured (with the real port when `:0` was requested).
    #[must_use]
    pub fn metrics_addr(&self) -> Option<SocketAddr> {
        self.shared.metrics_addr
    }

    /// One full `osarch-metrics/1` snapshot document — exactly what the
    /// `metrics` op and the scrape listener's JSON path emit.
    #[must_use]
    pub fn metrics_snapshot_json(&self) -> String {
        osarch_core::metrics::metrics_snapshot_json(&self.shared.telemetry_snapshot())
    }

    /// The `osarch-cluster/1` status document, when running in cluster
    /// mode — exactly what the `cluster` op answers.
    #[must_use]
    pub fn cluster_status_json(&self) -> Option<String> {
        self.shared
            .cluster
            .as_ref()
            .map(ClusterState::status_payload)
    }

    /// `(forwarded, proxied, redirected, gossip_rounds)` routing
    /// counters, when running in cluster mode.
    #[must_use]
    pub fn cluster_counters(&self) -> Option<(u64, u64, u64, u64)> {
        self.shared.cluster.as_ref().map(|c| {
            (
                c.forwarded.load(Ordering::Relaxed),
                c.proxied.load(Ordering::Relaxed),
                c.redirected.load(Ordering::Relaxed),
                c.gossip_rounds.load(Ordering::Relaxed),
            )
        })
    }

    /// This node's current membership digest, when running in cluster
    /// mode — the soak compares digests across nodes to assert
    /// convergence.
    #[must_use]
    pub fn membership_digest(&self) -> Option<String> {
        self.shared
            .cluster
            .as_ref()
            .map(|c| lock(&c.membership).digest())
    }

    /// The spec registry's current `{epoch}:{hash}` digest — soaks
    /// compare these across nodes to assert spec convergence.
    #[must_use]
    pub fn registry_digest(&self) -> String {
        self.shared.registry.snapshot().digest()
    }

    /// The spec registry's current epoch (1 = the built-ins).
    #[must_use]
    pub fn registry_epoch(&self) -> u64 {
        self.shared.registry.snapshot().epoch()
    }

    /// `(swaps, rollbacks)` committed by the spec registry so far.
    #[must_use]
    pub fn registry_swap_stats(&self) -> (u64, u64) {
        (
            self.shared.registry.swaps(),
            self.shared.registry.rollbacks(),
        )
    }

    /// Begin a graceful shutdown (idempotent): stop accepting, wake and
    /// drain every loop, let the compute pool run dry.
    pub fn shutdown(&self) {
        initiate_shutdown(&self.shared);
    }

    /// Block until every server thread has exited. Call
    /// [`ServerHandle::shutdown`] first (or send a `shutdown` request).
    pub fn wait(self) {
        for thread in self.threads {
            let _ = thread.join();
        }
    }

    /// Shut down and join, in one call.
    pub fn stop(self) {
        self.shutdown();
        self.wait();
    }
}

fn initiate_shutdown(shared: &Shared) {
    if shared.shutdown.swap(true, Ordering::SeqCst) {
        return; // already shutting down
    }
    shared.jobs.close();
    for loop_shared in &shared.loops {
        loop_shared.handoff.close();
        loop_shared.waker.wake();
    }
    // Poke the accept loop awake; it re-checks the flag after accept.
    let _ = TcpStream::connect_timeout(&shared.addr, Duration::from_millis(200));
    // Same poke for the scrape listener, when one is running.
    if let Some(scrape_addr) = shared.metrics_addr {
        let _ = TcpStream::connect_timeout(&scrape_addr, Duration::from_millis(200));
    }
}

// ---------------------------------------------------------------------------
// Accept thread: admission control + round-robin handoff
// ---------------------------------------------------------------------------

fn accept_loop(listener: &TcpListener, shared: &Shared) {
    let mut next_loop = 0usize;
    loop {
        let stream = match listener.accept() {
            Ok((stream, _)) => stream,
            Err(_) => {
                if shared.shutdown.load(Ordering::SeqCst) {
                    return;
                }
                continue;
            }
        };
        if shared.shutdown.load(Ordering::SeqCst) {
            return; // the poke connection (or a straggler) — drop it
        }
        if shared.inject(Failpoint::AcceptDrop) {
            // Chaos: the listener sheds this connection without a word;
            // the peer sees an immediate close.
            drop(stream);
            continue;
        }
        // Admission: reserve a budget slot optimistically, back out on
        // overflow. The Permit returns the slot wherever the connection
        // ends up dying.
        let open = shared.open_conns.fetch_add(1, Ordering::SeqCst);
        if open >= shared.conn_budget {
            shared.open_conns.fetch_sub(1, Ordering::SeqCst);
            reject_busy(shared, stream);
            continue;
        }
        shared.stats.record_conn_opened();
        let item = (stream, Permit(Arc::clone(&shared.open_conns)));
        if let Some((stream, permit)) = place_round_robin(&shared.loops, &mut next_loop, item) {
            // Every handoff is full (or closed): shed the connection.
            drop(permit);
            reject_busy(shared, stream);
        }
    }
}

/// Hand an accepted connection to the next event loop with capacity,
/// round-robin. Ownership threads through `try_push` and back out of its
/// `Err` — the item is moved, never parked in an `Option` — so "we still
/// hold the connection" is a fact of the types: placement returns `None`,
/// and the unplaced connection comes back as `Some` for shedding.
fn place_round_robin(
    loops: &[LoopShared],
    next_loop: &mut usize,
    mut item: (TcpStream, Permit),
) -> Option<(TcpStream, Permit)> {
    for _ in 0..loops.len() {
        let index = *next_loop % loops.len();
        *next_loop = next_loop.wrapping_add(1);
        match loops[index].handoff.try_push(item) {
            Ok(()) => {
                loops[index].waker.wake();
                return None;
            }
            Err(returned) => item = returned,
        }
    }
    Some(item)
}

/// Backpressure: answer busy and hang up rather than queueing unbounded
/// work. The message keeps its historical wording — the budget *is* the
/// connection queue of the old core.
fn reject_busy(shared: &Shared, mut stream: TcpStream) {
    shared.stats.record_rejected();
    let _ = stream.set_write_timeout(Some(Duration::from_millis(200)));
    let _ = writeln!(
        stream,
        "{}",
        protocol::err_envelope("null", "server busy: connection queue full")
    );
}

// ---------------------------------------------------------------------------
// Metrics scrape listener: plain HTTP/1.0, one snapshot per connection
// ---------------------------------------------------------------------------

/// Serve `--metrics-addr` scrapes: a request whose path contains `json`
/// gets the `osarch-metrics/1` snapshot document, everything else gets
/// Prometheus text exposition. One short-lived connection per scrape —
/// scrapes are ~1 Hz, so no event loop is warranted, and a stuck scraper
/// can at worst wedge this one thread, never the serve path.
fn metrics_loop(listener: &TcpListener, shared: &Shared) {
    loop {
        let stream = match listener.accept() {
            Ok((stream, _)) => stream,
            Err(_) => {
                if shared.shutdown.load(Ordering::SeqCst) {
                    return;
                }
                continue;
            }
        };
        if shared.shutdown.load(Ordering::SeqCst) {
            return; // the shutdown poke (or a straggler)
        }
        serve_scrape(shared, stream);
    }
}

fn serve_scrape(shared: &Shared, mut stream: TcpStream) {
    let _ = stream.set_read_timeout(Some(Duration::from_millis(500)));
    let _ = stream.set_write_timeout(Some(Duration::from_secs(2)));
    // Read until the header terminator arrives. A client may deliver the
    // request line in several small writes; responding and closing after a
    // partial read would discard unread bytes, which turns the close into a
    // TCP reset and breaks the scraper mid-request. Bounded by the buffer
    // size and the read timeout, so a misbehaving scraper cannot wedge us.
    let mut buf = [0u8; 1024];
    let mut count = 0;
    loop {
        match stream.read(&mut buf[count..]) {
            Ok(0) | Err(_) => break,
            Ok(n) => {
                count += n;
                if buf[..count].windows(4).any(|w| w == b"\r\n\r\n") || count == buf.len() {
                    break;
                }
            }
        }
    }
    let request = String::from_utf8_lossy(&buf[..count]);
    let path = request
        .lines()
        .next()
        .and_then(|line| line.split_whitespace().nth(1))
        .unwrap_or("/metrics");
    let snap = shared.telemetry_snapshot();
    let (content_type, body) = if path.contains("json") {
        (
            "application/json",
            osarch_core::metrics::metrics_snapshot_json(&snap),
        )
    } else {
        (
            "text/plain; version=0.0.4",
            osarch_telemetry::expose::prometheus_text(&snap),
        )
    };
    let _ = write!(
        stream,
        "HTTP/1.0 200 OK\r\nContent-Type: {content_type}\r\nContent-Length: {}\r\nConnection: close\r\n\r\n{body}",
        body.len(),
    );
    let _ = stream.flush();
}

// ---------------------------------------------------------------------------
// Compute pool: the only place the blocking cache path runs
// ---------------------------------------------------------------------------

fn pool_main(shared: &Shared) {
    while let Some(mut job) = shared.jobs.pop() {
        // Queue stage: enqueue (marked by the loop) to pool pickup.
        if let Some(trace) = job.trace.as_mut() {
            trace.stage_from_mark("queue", shared.uptime_us());
        }
        // A cluster relay tries the owning replica first; any failure
        // records the miss against the peer and degrades to the local
        // compute path below — availability over placement.
        let mut relayed: Option<String> = None;
        if let Some(relay) = job.relay.take() {
            let read_timeout = shared.deadline.min(RELAY_READ_TIMEOUT_CAP);
            match exchange_line(
                &relay.target,
                &relay.line,
                RELAY_CONNECT_TIMEOUT,
                read_timeout,
            ) {
                Ok(reply) => {
                    if let Some(cluster) = &shared.cluster {
                        lock(&cluster.membership).record_success(&relay.target);
                    }
                    relayed = Some(reply);
                }
                Err(_) => {
                    if let Some(cluster) = &shared.cluster {
                        lock(&cluster.membership).record_failure(&relay.target);
                    }
                }
            }
        }
        let outcome = match relayed {
            Some(reply) => {
                if let Some(trace) = job.trace.as_mut() {
                    // The relay round trip stands in for the cache stage.
                    trace.stage_from_mark("cache", shared.uptime_us());
                }
                Outcome::Relayed(reply)
            }
            None => {
                // The cache contains computation panics itself; this
                // outer guard is for everything unexpected, so a
                // completion is *always* posted and no ticket waits
                // forever.
                let mut compute_span: Option<(u64, u64)> = None;
                let fetched = std::panic::catch_unwind(AssertUnwindSafe(|| {
                    compute_job(
                        shared,
                        &job.key,
                        &job.query,
                        &job.snapshot,
                        &mut compute_span,
                    )
                }))
                .unwrap_or_else(|_| {
                    Fetched::Failed("internal error: compute worker panicked".to_string())
                });
                if let Some(trace) = job.trace.as_mut() {
                    // Cache stage: the whole single-flight path (including
                    // any wait coalesced onto another flight's
                    // computation)…
                    trace.stage_from_mark("cache", shared.uptime_us());
                    // …with the leader's own computation as a nested span.
                    if let Some((start_us, dur_us)) = compute_span {
                        trace.stage("compute", start_us, dur_us);
                    }
                }
                Outcome::Fetched(fetched)
            }
        };
        let target = &shared.loops[job.loop_index];
        lock(&target.completions).push(Completion {
            token: job.token,
            gen: job.gen,
            seq: job.seq,
            id: job.id,
            op: job.op,
            started: job.started,
            start_us: job.start_us,
            epoch: job.snapshot.epoch(),
            outcome,
            trace: job.trace,
        });
        target.waker.wake();
    }
}

/// Run one offloaded computation through the single-flight cache. When
/// this thread ends up the flight leader, `compute_span` receives the
/// inner computation's `(start_us, dur_us)` — coalesced followers leave
/// it `None`.
fn compute_job(
    shared: &Shared,
    key: &str,
    query: &Query,
    snapshot: &SpecSnapshot,
    compute_span: &mut Option<(u64, u64)>,
) -> Fetched {
    shared.cache.get_or_compute_resilient(key, || {
        let compute_start = shared.uptime_us();
        if let Some(delay) = shared.inject_delay(
            Failpoint::ComputeDelay,
            COMPUTE_DELAY_MIN,
            COMPUTE_DELAY_MAX,
        ) {
            // Chaos: stall the computation (typically past the service
            // deadline).
            std::thread::sleep(delay);
        }
        if shared.inject(Failpoint::ComputePanic) {
            // Chaos: the single-flight leader dies mid-compute.
            panic!("chaos: injected computation panic");
        }
        let payload = query.compute(snapshot);
        *compute_span = Some((
            compute_start,
            shared.uptime_us().saturating_sub(compute_start),
        ));
        payload
    })
}

// ---------------------------------------------------------------------------
// Cluster: relay exchange + gossip probes
// ---------------------------------------------------------------------------

/// Connect budget for one relay/gossip exchange: short, because the
/// target is a LAN peer and a dead one should fail fast into the local
/// fallback (relay) or a recorded miss (gossip).
const RELAY_CONNECT_TIMEOUT: Duration = Duration::from_millis(500);

/// Relay reads never wait longer than this even under a huge service
/// deadline — past it the local fallback is strictly better.
const RELAY_READ_TIMEOUT_CAP: Duration = Duration::from_secs(10);

/// Gossip probes are cheap liveness checks; they time out well inside
/// one gossip interval's order of magnitude.
const GOSSIP_TIMEOUT: Duration = Duration::from_millis(300);

/// One blocking request/reply exchange with a peer: dial, send the
/// line, read exactly one newline-terminated reply. Used by the relay
/// path (on pool threads) and the gossip prober (on its own thread) —
/// never by an event loop.
fn exchange_line(
    target: &str,
    line: &str,
    connect_timeout: Duration,
    read_timeout: Duration,
) -> std::io::Result<String> {
    use std::net::ToSocketAddrs;
    let addr = target
        .to_socket_addrs()?
        .next()
        .ok_or_else(|| std::io::Error::new(std::io::ErrorKind::InvalidInput, "unresolvable"))?;
    let mut stream = TcpStream::connect_timeout(&addr, connect_timeout)?;
    let _ = stream.set_nodelay(true);
    stream.set_write_timeout(Some(read_timeout))?;
    stream.set_read_timeout(Some(read_timeout))?;
    stream.write_all(line.as_bytes())?;
    stream.write_all(b"\n")?;
    let mut reply = Vec::with_capacity(1024);
    let mut chunk = [0u8; 4096];
    loop {
        let count = stream.read(&mut chunk)?;
        if count == 0 {
            return Err(std::io::Error::new(
                std::io::ErrorKind::UnexpectedEof,
                "peer closed before a full reply",
            ));
        }
        reply.extend_from_slice(&chunk[..count]);
        if let Some(at) = reply.iter().position(|&b| b == b'\n') {
            reply.truncate(at);
            break;
        }
        if reply.len() > protocol::MAX_REQUEST_BYTES * 8 {
            return Err(std::io::Error::new(
                std::io::ErrorKind::InvalidData,
                "peer reply exceeds frame budget",
            ));
        }
    }
    String::from_utf8(reply)
        .map_err(|_| std::io::Error::new(std::io::ErrorKind::InvalidData, "non-UTF-8 reply"))
}

/// Pull the `gossip` digest out of a peer's `health` reply without a
/// JSON parser: digest strings contain no quotes or escapes by
/// construction (`addr=inc/status;…`), so the next `"` ends it.
fn extract_gossip(reply: &str) -> Option<&str> {
    let start = reply.find("\"gossip\":\"")? + "\"gossip\":\"".len();
    let end = reply[start..].find('"')? + start;
    Some(&reply[start..end])
}

/// Pull the spec-registry digest (`{epoch}:{hash}`) out of a peer's
/// `health` reply; same quote-scan, same no-escapes construction.
fn extract_spec_digest(reply: &str) -> Option<&str> {
    let start = reply.find("\"spec\":\"")? + "\"spec\":\"".len();
    let end = reply[start..].find('"')? + start;
    Some(&reply[start..end])
}

/// Cluster spec convergence, pull side: when a probed peer advertises a
/// strictly newer registry epoch, fetch its spec set (`spec-fetch`) and
/// adopt it at the *remote* epoch, so converged nodes share one digest.
/// Every failure path is a silent no-op — the next gossip round retries.
fn maybe_pull_specs(shared: &Shared, target: &str, remote_digest: &str) {
    let Some(remote_epoch) = remote_digest
        .split(':')
        .next()
        .and_then(|epoch| epoch.parse::<u64>().ok())
    else {
        return;
    };
    let local = shared.registry.snapshot();
    if remote_epoch <= local.epoch() {
        return;
    }
    let Ok(reply) = exchange_line(
        target,
        "{\"op\":\"spec-fetch\",\"id\":\"spec-pull\"}",
        RELAY_CONNECT_TIMEOUT,
        RELAY_READ_TIMEOUT_CAP,
    ) else {
        return;
    };
    // Parse from the result payload onward: the envelope carries its own
    // top-level `epoch` field, which must not shadow the payload's.
    let Some(at) = reply.find("\"result\":") else {
        return;
    };
    let Ok((epoch, docs)) = parse_spec_fetch(&reply[at..]) else {
        return;
    };
    let Ok(snapshot) = SpecSnapshot::from_docs(&docs, epoch) else {
        return;
    };
    if shared.registry.adopt(snapshot) {
        let active = shared.registry.snapshot();
        shared.cache.retain_prefix(active.key_prefix());
    }
}

/// The anti-entropy thread: round-robin the peer list, exchange
/// membership digests over the ordinary `health` op, and fold direct
/// probe evidence (success/failure) into the table. Every probe is a
/// full digest swap, so rumours spread O(log N) rounds and a respawned
/// node's higher incarnation revives it everywhere.
fn gossip_loop(shared: &Shared) {
    let Some(cluster) = &shared.cluster else {
        return;
    };
    let peers: Vec<String> = cluster
        .ring
        .nodes()
        .iter()
        .filter(|addr| **addr != cluster.self_addr)
        .cloned()
        .collect();
    if peers.is_empty() {
        return;
    }
    let mut next = 0usize;
    while !shared.shutdown.load(Ordering::SeqCst) {
        let target = &peers[next % peers.len()];
        next = next.wrapping_add(1);
        let digest = lock(&cluster.membership).digest();
        let line = format!(
            "{{\"op\":\"health\",\"id\":\"gossip\",\"gossip\":\"{}\"}}",
            osarch_core::metrics::json_escape(&digest)
        );
        match exchange_line(target, &line, GOSSIP_TIMEOUT, GOSSIP_TIMEOUT) {
            Ok(reply) => {
                {
                    let mut membership = lock(&cluster.membership);
                    membership.record_success(target);
                    if let Some(incoming) = extract_gossip(&reply) {
                        membership.merge_digest(incoming);
                    }
                }
                // Membership lock released: the spec pull dials the peer
                // again and must not hold it across the exchange.
                if let Some(remote_digest) = extract_spec_digest(&reply) {
                    maybe_pull_specs(shared, target, remote_digest);
                }
            }
            Err(_) => {
                lock(&cluster.membership).record_failure(target);
            }
        }
        cluster.gossip_rounds.fetch_add(1, Ordering::Relaxed);
        // Interruptible inter-probe sleep: shutdown never waits a full
        // gossip interval behind this thread.
        let mut slept = Duration::ZERO;
        while slept < cluster.gossip_interval && !shared.shutdown.load(Ordering::SeqCst) {
            let step = Duration::from_millis(20).min(cluster.gossip_interval - slept);
            std::thread::sleep(step);
            slept += step;
        }
    }
}

// ---------------------------------------------------------------------------
// Event loops
// ---------------------------------------------------------------------------

/// One event-loop thread: serve until shutdown, reincarnating after any
/// escape of the per-request panic isolation (including injected worker
/// deaths). The liveness gauge brackets the whole tenure, so `health`
/// sees a respawning loop as continuously live.
fn loop_main(shared: &Shared, index: usize, wake_rx: &WakeRx) {
    shared.stats.worker_started();
    // Trace state lives outside the respawn loop: a reincarnated loop
    // continues its id stream instead of reissuing ids from the start.
    let mut ltrace = LoopTrace {
        ids: shared.hub.ids_for(index),
        counter: 0,
    };
    loop {
        let exit = std::panic::catch_unwind(AssertUnwindSafe(|| {
            event_loop(shared, index, wake_rx, &mut ltrace);
        }));
        match exit {
            Ok(()) => break, // shutdown — clean exit
            Err(_) => {
                // The loop died mid-tenure (its connections die with it;
                // their permits release on unwind). Respawn in place
                // with a fresh poller rather than shrinking the pool.
                shared.stats.record_worker_respawn();
            }
        }
    }
    shared.stats.worker_stopped();
}

fn event_loop(shared: &Shared, index: usize, wake_rx: &WakeRx, ltrace: &mut LoopTrace) {
    let me = &shared.loops[index];
    let mut poller = new_poller();
    let _ = poller.register(wake_rx.fd(), WAKER_TOKEN, Interest::READ);
    let mut conns: Vec<Option<Conn>> = Vec::new();
    let mut free_slots: Vec<usize> = Vec::new();
    let mut arena: Vec<(FrameBuf, Vec<u8>)> = Vec::new();
    let mut events: Vec<Event> = Vec::new();
    let mut last_sweep = Instant::now();

    loop {
        let _ = poller.wait(&mut events, Some(TICK));
        wake_rx.drain();
        let wake_us = shared.uptime_us();

        // Adopt handed-off connections.
        while let Some((stream, permit)) = me.handoff.try_pop() {
            adopt(
                shared,
                me,
                poller.as_mut(),
                &mut conns,
                &mut free_slots,
                &mut arena,
                stream,
                permit,
            );
        }

        // Deliver compute completions into their tickets.
        let completions = std::mem::take(&mut *lock(&me.completions));
        for completion in completions {
            let Some(slot) = completion.token.checked_sub(TOKEN_BASE) else {
                continue;
            };
            let Some(mut conn) = conns.get_mut(slot).and_then(Option::take) else {
                continue;
            };
            if conn.gen == completion.gen {
                settle_ticket(shared, index, &mut conn, completion);
            }
            service_conn(shared, poller.as_mut(), &mut conn);
            park_or_retire(
                shared,
                poller.as_mut(),
                &mut conns,
                &mut free_slots,
                &mut arena,
                slot,
                conn,
            );
        }

        // Readiness events.
        for event in events.iter().copied() {
            if event.token == WAKER_TOKEN {
                continue;
            }
            let slot = event.token - TOKEN_BASE;
            let Some(mut conn) = conns.get_mut(slot).and_then(Option::take) else {
                continue;
            };
            if event.readable {
                on_readable(shared, index, &mut conn, ltrace);
                if shared
                    .registry
                    .swap_loop_death
                    .swap(false, Ordering::SeqCst)
                {
                    // Chaos: this loop just committed a spec swap; die
                    // before the admin reply reaches the write buffer.
                    // Deliberately *outside* dispatch's catch_unwind — a
                    // real loop death, caught only by loop_main's respawn.
                    // The committed epoch lives in Shared and survives.
                    panic!("chaos: injected mid-swap loop death");
                }
            }
            service_conn(shared, poller.as_mut(), &mut conn);
            park_or_retire(
                shared,
                poller.as_mut(),
                &mut conns,
                &mut free_slots,
                &mut arena,
                slot,
                conn,
            );
        }

        if shared.shutdown.load(Ordering::SeqCst) {
            // Courtesy pass: flush whatever is already complete (the
            // in-band shutdown acknowledgement most importantly), then
            // drop everything. Permits release as connections drop.
            for parked in &mut conns {
                if let Some(mut conn) = parked.take() {
                    conn.stalled_until = None;
                    service_conn(shared, poller.as_mut(), &mut conn);
                }
            }
            return;
        }

        // Housekeeping sweep: expired write stalls, progress-based idle
        // and write timeouts, lost-completion safety net. Also the slow
        // telemetry gauges: offload-queue depth, arena occupancy, and
        // this loop's oldest write-backlog age.
        let now = Instant::now();
        if now.duration_since(last_sweep) >= TICK {
            last_sweep = now;
            let now_s = wake_us / 1_000_000;
            shared
                .hub
                .record_queue_depth(index, shared.jobs.len() as u64, now_s);
            shared.hub.record_arena(index, arena.len() as u64, now_s);
            let mut oldest_backlog = Duration::ZERO;
            for slot in 0..conns.len() {
                let Some(mut conn) = conns.get_mut(slot).and_then(Option::take) else {
                    continue;
                };
                sweep_conn(shared, &mut conn, now);
                service_conn(shared, poller.as_mut(), &mut conn);
                if conn.write_backlog() > 0 && !conn.dead {
                    oldest_backlog = oldest_backlog.max(now.duration_since(conn.last_write));
                }
                park_or_retire(
                    shared,
                    poller.as_mut(),
                    &mut conns,
                    &mut free_slots,
                    &mut arena,
                    slot,
                    conn,
                );
            }
            me.backlog_ms
                .store(oldest_backlog.as_millis() as u64, Ordering::Relaxed);
        }

        // Loop lag: how long this wake kept the loop busy before it
        // could sleep again — the "is the event loop keeping up" signal.
        let busy_us = shared.uptime_us().saturating_sub(wake_us);
        shared
            .hub
            .record_loop_lag(index, busy_us, wake_us / 1_000_000);
    }
}

/// Per-tick connection timers. Idle accounting is progress-based: the
/// clock runs from the last byte *read*, so a client trickling a request
/// one byte at a time is never "idle" — only true silence disconnects.
fn sweep_conn(shared: &Shared, conn: &mut Conn, now: Instant) {
    // A connection with nothing owed to it and no bytes for the idle
    // window is disconnected (a mid-request partial counts as silence —
    // the *clock* still only runs from the last byte received).
    let awaiting_input =
        conn.pending.is_empty() && conn.write_backlog() == 0 && !conn.read_closed && !conn.torn;
    if awaiting_input && now.duration_since(conn.last_read) >= shared.idle_timeout {
        conn.dead = true;
        return;
    }
    // Write-progress deadline: a stalled client stops draining, the
    // backlog freezes, and the connection is cut — shutdown never waits
    // behind it. An injected write stall suspends the clock.
    if conn.write_backlog() > 0
        && conn.stalled_until.is_none()
        && now.duration_since(conn.last_write) >= shared.write_timeout
    {
        conn.dead = true;
        return;
    }
    // Lost-completion safety net (normally unreachable: the pool always
    // posts a completion, even for panics).
    if let Some(Ticket::Waiting { queued_at, id, .. }) = conn.pending.front() {
        if now.duration_since(*queued_at) >= shared.deadline + LOST_JOB_GRACE {
            shared.stats.record_error();
            let envelope = protocol::err_envelope(id, "internal error: compute result lost");
            conn.pending[0] = Ticket::Done {
                envelope,
                chaos: false,
                trace: None,
            };
        }
    }
}

/// Put the connection back in its slot, or retire it if finished.
#[allow(clippy::too_many_arguments)]
fn park_or_retire(
    shared: &Shared,
    poller: &mut dyn Readiness,
    conns: &mut [Option<Conn>],
    free_slots: &mut Vec<usize>,
    arena: &mut Vec<(FrameBuf, Vec<u8>)>,
    slot: usize,
    conn: Conn,
) {
    let flushed = conn.write_backlog() == 0;
    let finished = conn.dead
        || ((conn.torn || conn.poisoned) && flushed)
        || (conn.read_closed && conn.pending.is_empty() && flushed);
    if finished {
        retire_conn(shared, poller, free_slots, arena, slot, conn);
    } else {
        conns[slot] = Some(conn);
    }
}

#[allow(clippy::too_many_arguments)]
fn adopt(
    shared: &Shared,
    me: &LoopShared,
    poller: &mut dyn Readiness,
    conns: &mut Vec<Option<Conn>>,
    free_slots: &mut Vec<usize>,
    arena: &mut Vec<(FrameBuf, Vec<u8>)>,
    stream: TcpStream,
    permit: Permit,
) {
    if stream.set_nonblocking(true).is_err() {
        return; // permit drops, budget released
    }
    // Replies are batched already; never let Nagle delay the batch.
    let _ = stream.set_nodelay(true);
    let slot = free_slots.pop().unwrap_or_else(|| {
        conns.push(None);
        conns.len() - 1
    });
    let token = slot + TOKEN_BASE;
    let gen = me.gen.fetch_add(1, Ordering::Relaxed) + 1;
    let (frames, write_buf) = arena.pop().unwrap_or_else(|| {
        (
            FrameBuf::new(READ_BASELINE),
            Vec::with_capacity(WRITE_BASELINE),
        )
    });
    let now = Instant::now();
    let conn = Conn {
        stream,
        token,
        gen,
        frames,
        write_buf,
        write_pos: 0,
        pending: VecDeque::new(),
        next_seq: 0,
        last_read: now,
        last_write: now,
        interest: Interest::READ,
        read_closed: false,
        poisoned: false,
        torn: false,
        dead: false,
        stalled_until: None,
        _permit: permit,
    };
    if poller
        .register(fd_of(&conn.stream), token, Interest::READ)
        .is_err()
    {
        free_slots.push(slot);
        shared.stats.record_rejected();
        return; // conn drops, permit releases
    }
    conns[slot] = Some(conn);
}

fn retire_conn(
    shared: &Shared,
    poller: &mut dyn Readiness,
    free_slots: &mut Vec<usize>,
    arena: &mut Vec<(FrameBuf, Vec<u8>)>,
    slot: usize,
    conn: Conn,
) {
    let Conn {
        stream,
        mut frames,
        mut write_buf,
        _permit,
        ..
    } = conn;
    let _ = poller.deregister(fd_of(&stream));
    drop(stream);
    drop(_permit);
    // Recycle the buffers: framing state cleared, grown capacity shed.
    frames.reset();
    write_buf.clear();
    if write_buf.capacity() > WRITE_BASELINE * 4 {
        write_buf.shrink_to(WRITE_BASELINE);
    }
    if arena.len() < ARENA_MAX {
        arena.push((frames, write_buf));
    }
    free_slots.push(slot);
    if shared.inject(Failpoint::WorkerDeath) {
        // Chaos: kill the loop on connection retirement. loop_main
        // catches the unwind and respawns it with a fresh poller.
        panic!("chaos: injected worker death");
    }
}

// ---------------------------------------------------------------------------
// The read path: nonblocking reads → incremental frames → tickets
// ---------------------------------------------------------------------------

fn on_readable(shared: &Shared, loop_index: usize, conn: &mut Conn, ltrace: &mut LoopTrace) {
    if conn.read_closed || conn.poisoned || conn.torn || conn.dead {
        return;
    }
    loop {
        if conn.write_backlog() > WRITE_HIGH_WATER {
            return; // flow control: resume when the backlog drains
        }
        let spare = conn.frames.spare();
        let window = spare.len();
        match conn.stream.read(spare) {
            Ok(0) => {
                conn.read_closed = true;
                // A final request sent without its newline still gets
                // answered (the write half may outlive the read half).
                if let Some((start, end)) = conn.frames.take_eof_line() {
                    dispatch_line(shared, loop_index, conn, ltrace, start, end);
                }
                return;
            }
            Ok(count) => {
                conn.frames.commit(count);
                conn.last_read = Instant::now();
                process_frames(shared, loop_index, conn, ltrace);
                if conn.poisoned || conn.dead {
                    return;
                }
                if count < window {
                    return; // likely drained; level-triggering re-reports
                }
            }
            Err(error) if error.kind() == std::io::ErrorKind::WouldBlock => return,
            Err(error) if error.kind() == std::io::ErrorKind::Interrupted => {}
            Err(_) => {
                conn.dead = true;
                return;
            }
        }
    }
}

fn process_frames(shared: &Shared, loop_index: usize, conn: &mut Conn, ltrace: &mut LoopTrace) {
    loop {
        match conn.frames.next_frame() {
            Frame::None => return,
            Frame::Oversized => {
                shared.stats.record_error();
                let now_us = shared.uptime_us();
                shared
                    .hub
                    .bump(loop_index, COUNTER_ERRORS, 1, now_us / 1_000_000);
                let envelope = protocol::err_envelope(
                    "null",
                    &format!(
                        "request too large (limit {} bytes)",
                        protocol::MAX_REQUEST_BYTES
                    ),
                );
                conn.pending.push_back(Ticket::Done {
                    envelope,
                    chaos: false,
                    trace: None,
                });
            }
            Frame::Line { start, end } => {
                dispatch_line(shared, loop_index, conn, ltrace, start, end);
                if conn.poisoned {
                    return;
                }
            }
        }
    }
}

/// Parse and answer one framed line, under per-request panic isolation:
/// whatever the request path does, this loop answers (or hangs up after
/// flushing) and lives to serve its other connections.
fn dispatch_line(
    shared: &Shared,
    loop_index: usize,
    conn: &mut Conn,
    ltrace: &mut LoopTrace,
    start: usize,
    end: usize,
) {
    let token = conn.token;
    let gen = conn.gen;
    let text = String::from_utf8_lossy(conn.frames.bytes(start, end));
    let line = text.trim();
    if line.is_empty() {
        return;
    }
    let outcome = std::panic::catch_unwind(AssertUnwindSafe(|| {
        handle_request(
            shared,
            loop_index,
            token,
            gen,
            ltrace,
            &mut conn.next_seq,
            &mut conn.pending,
            line,
        );
    }));
    if outcome.is_err() {
        shared.stats.record_panic();
        shared.stats.record_error();
        shared.hub.bump(
            loop_index,
            COUNTER_ERRORS,
            1,
            shared.uptime_us() / 1_000_000,
        );
        conn.pending.push_back(Ticket::Done {
            envelope: protocol::err_envelope("null", "internal error: request handler panicked"),
            chaos: false,
            trace: None,
        });
        // The connection state is unknown after a panic — answer, flush,
        // hang up.
        conn.poisoned = true;
    }
}

fn op_name(query: &Query) -> &'static str {
    match query {
        Query::Ping => "ping",
        Query::Measure { .. } => "measure",
        Query::Table { .. } => "table",
        Query::Lint { .. } => "lint",
        Query::Analyze { .. } => "analyze",
        Query::Trace { .. } => "trace",
        Query::Counters { .. } => "counters",
        Query::Stats => "stats",
        Query::Spans { .. } => "spans",
        Query::Metrics => "metrics",
        Query::Health { .. } => "health",
        Query::Cluster => "cluster",
        Query::Shutdown => "shutdown",
        Query::MeasureSpec { .. } => "measure",
        Query::Admin { .. } => "admin",
        Query::SpecFetch => "spec-fetch",
    }
}

/// Answer one request line: control queries and landed cache entries
/// resolve inline on the loop; data-query misses become compute-pool
/// jobs behind an ordered `Waiting` ticket.
///
/// Telemetry rides the same path. The sampling decision is made before
/// parse from the per-loop counter — an unsampled request takes one
/// branch and never allocates or reads the clock for tracing; a sampled
/// one gets a [`PendingTrace`] that follows the request through queue,
/// pool, cache and write batch.
#[allow(clippy::too_many_arguments)]
fn handle_request(
    shared: &Shared,
    loop_index: usize,
    token: Token,
    gen: u64,
    ltrace: &mut LoopTrace,
    next_seq: &mut u64,
    pending: &mut VecDeque<Ticket>,
    line: &str,
) {
    let started = Instant::now();
    let start_us = shared.uptime_us();
    let now_s = start_us / 1_000_000;
    let sampled = ltrace.tick(shared.hub.sample_every());
    let mut trace = if sampled {
        Some(PendingTrace::start(
            &mut ltrace.ids,
            "unknown",
            loop_index,
            start_us,
        ))
    } else {
        None
    };
    let request = match protocol::parse_request(line) {
        Ok(request) => request,
        Err((message, id)) => {
            // A line that fails to parse has no op to trace: the sampled
            // slot is spent (ids stay deterministic), the trace dropped.
            shared.stats.record_error();
            shared.hub.bump(loop_index, COUNTER_ERRORS, 1, now_s);
            pending.push_back(Ticket::Done {
                envelope: protocol::err_envelope(&id, &message),
                chaos: false,
                trace: None,
            });
            return;
        }
    };
    let id = request.id;
    let op = op_name(&request.query);
    if let Some(trace) = trace.as_mut() {
        trace.op = op;
        trace.stage_from_mark("decode", shared.uptime_us());
    }
    // Capture the registry snapshot for this request's whole lifetime:
    // the cache key, the computation, and the reply's `epoch` all
    // resolve against it, so a swap mid-request changes nothing for
    // work already admitted.
    let snapshot = shared.registry.snapshot();
    let mut reply_epoch = snapshot.epoch();
    let (payload, cached) = match &request.query {
        Query::Ping => ("{\"pong\":true}".to_string(), false),
        Query::Stats => {
            let (hits, misses, coalesced) = (
                shared.cache.hits(),
                shared.cache.misses(),
                shared.cache.coalesced(),
            );
            (
                shared.stats.stats_payload(
                    hits,
                    misses,
                    coalesced,
                    shared.workers,
                    shared.cache.shard_count(),
                    shared.open_conns(),
                ),
                false,
            )
        }
        Query::Spans { chrome: false } => (shared.stats.spans_payload(), false),
        Query::Spans { chrome: true } => (
            osarch_core::metrics::serve_chains_chrome_json(&shared.hub.chains())
                .trim_end()
                .to_string(),
            false,
        ),
        Query::Metrics => (
            osarch_core::metrics::metrics_snapshot_json(&shared.telemetry_snapshot())
                .trim_end()
                .to_string(),
            false,
        ),
        Query::Health { gossip } => {
            let mut payload = shared.stats.health_payload(&HealthGauges {
                queue_depth: shared.jobs.len(),
                conns_open: shared.open_conns(),
                conn_budget: shared.conn_budget,
                workers: shared.workers,
                cache_hits: shared.cache.hits() + shared.cache.coalesced(),
                cache_misses: shared.cache.misses(),
                oldest_write_backlog_ms: shared.oldest_backlog_ms(),
                shutting_down: shared.shutdown.load(Ordering::SeqCst),
            });
            if let Some(cluster) = &shared.cluster {
                // Anti-entropy piggybacks on the liveness probe: merge
                // the caller's digest (if any), answer with ours.
                let digest = {
                    let mut membership = lock(&cluster.membership);
                    if let Some(incoming) = gossip {
                        membership.merge_digest(incoming);
                    }
                    membership.digest()
                };
                payload.truncate(payload.len() - 1);
                // The spec digest rides the same probe: a peer that sees
                // a newer epoch here pulls the spec set via `spec-fetch`.
                payload.push_str(&format!(
                    ",\"gossip\":\"{}\",\"spec\":\"{}\"}}",
                    osarch_core::metrics::json_escape(&digest),
                    snapshot.digest()
                ));
            }
            (payload, false)
        }
        Query::Cluster => match &shared.cluster {
            Some(cluster) => (cluster.status_payload(), false),
            None => {
                shared.stats.record_error();
                shared.hub.bump(loop_index, COUNTER_ERRORS, 1, now_s);
                pending.push_back(Ticket::Done {
                    envelope: protocol::err_envelope(&id, "cluster: not running in cluster mode"),
                    chaos: false,
                    trace: None,
                });
                return;
            }
        },
        Query::Shutdown => {
            // Initiate before replying: shutdown must happen even when
            // the client hangs up without reading the acknowledgement.
            initiate_shutdown(shared);
            ("{\"shutting_down\":true}".to_string(), false)
        }
        Query::SpecFetch => (snapshot.fetch_payload(), false),
        Query::Admin {
            action,
            token,
            name,
            spec,
        } => match handle_admin(shared, *action, token, name.as_deref(), spec.as_deref()) {
            Ok(payload) => {
                // Admin replies report the post-action epoch: an
                // activation's envelope carries the epoch it created.
                reply_epoch = shared.registry.snapshot().epoch();
                (payload, false)
            }
            Err(message) => {
                shared.stats.record_error();
                shared.hub.bump(loop_index, COUNTER_ERRORS, 1, now_s);
                pending.push_back(Ticket::Done {
                    envelope: protocol::err_envelope(&id, &message),
                    chaos: false,
                    trace: None,
                });
                return;
            }
        },
        query => {
            // Data query. A query kind with no cache key would once have
            // panicked the worker here; now it is a clean error envelope.
            let Some(routing_key) = query.routing_key() else {
                shared.stats.record_error();
                shared.hub.bump(loop_index, COUNTER_ERRORS, 1, now_s);
                pending.push_back(Ticket::Done {
                    envelope: protocol::err_envelope(
                        &id,
                        &format!("internal error: {op} query has no cache key"),
                    ),
                    chaos: false,
                    trace: None,
                });
                return;
            };
            // A spec measurement must name a spec the captured snapshot
            // actually holds — resolved here, before any offload, so the
            // compute path can rely on existence.
            if let Query::MeasureSpec { name, .. } = query {
                if snapshot.spec(name).is_none() {
                    shared.stats.record_error();
                    shared.hub.bump(loop_index, COUNTER_ERRORS, 1, now_s);
                    let loaded: Vec<&str> =
                        snapshot.entries().iter().map(|e| e.name.as_str()).collect();
                    pending.push_back(Ticket::Done {
                        envelope: protocol::err_envelope(
                            &id,
                            &format!(
                                "unknown spec {name:?} at epoch {}; loaded specs: [{}]",
                                snapshot.epoch(),
                                loaded.join(", ")
                            ),
                        ),
                        chaos: false,
                        trace: None,
                    });
                    return;
                }
            }
            // The epoch-free routing key places the request on the ring
            // (ownership must not move on a swap); the snapshot-scoped
            // cache key isolates cached replies per epoch.
            let key = format!("{}{routing_key}", snapshot.key_prefix());
            // Cluster routing: a key this node does not replicate is
            // relayed to a replica (proxy mode) or answered with a
            // `not_owner` redirect. A forwarded request is never
            // re-forwarded (loop guard on the `fwd` marker), and with
            // every replica written off the key is computed locally —
            // availability over placement, since any node can compute
            // any key.
            let mut relay: Option<Relay> = None;
            if let Some(cluster) = &shared.cluster {
                let replicas = cluster.ring.replicas(&routing_key, cluster.replicas);
                let mine = replicas.iter().any(|addr| *addr == cluster.self_addr);
                if mine {
                    if request.forwarded {
                        cluster.proxied.fetch_add(1, Ordering::Relaxed);
                    }
                } else if request.forwarded || !cluster.proxy {
                    cluster.redirected.fetch_add(1, Ordering::Relaxed);
                    shared.stats.record_error();
                    shared.hub.bump(loop_index, COUNTER_ERRORS, 1, now_s);
                    let owner = replicas.first().copied().unwrap_or("");
                    pending.push_back(Ticket::Done {
                        envelope: protocol::not_owner_envelope(&id, &routing_key, owner, &replicas),
                        chaos: false,
                        trace: None,
                    });
                    return;
                } else {
                    let target = {
                        let membership = lock(&cluster.membership);
                        replicas
                            .iter()
                            .find(|addr| !membership.is_down(addr))
                            .map(|addr| (*addr).to_string())
                    };
                    if let Some(target) = target {
                        cluster.forwarded.fetch_add(1, Ordering::Relaxed);
                        // Re-frame the original flat line with the relay
                        // marker; the peer answers under the same id, so
                        // its envelope passes through verbatim.
                        let mut fwd_line = line.to_string();
                        fwd_line.truncate(fwd_line.len() - 1);
                        fwd_line.push_str(",\"fwd\":\"1\"}");
                        relay = Some(Relay {
                            target,
                            line: fwd_line,
                        });
                    }
                }
            }
            let hit = if relay.is_none() {
                shared.cache.try_get(&key)
            } else {
                None
            };
            match hit {
                Some(hit) => {
                    if let Some(trace) = trace.as_mut() {
                        // Inline hit: the whole cache stage is the lookup.
                        trace.stage_from_mark("cache", shared.uptime_us());
                    }
                    (hit.to_string(), true)
                }
                None => {
                    // Miss (or in flight, or a relay): offload. The
                    // bounded job queue is the compute-side backpressure
                    // valve.
                    let seq = *next_seq;
                    *next_seq += 1;
                    if let Some(trace) = trace.as_mut() {
                        // The pool closes this as the `queue` stage.
                        trace.mark(shared.uptime_us());
                    }
                    let job = Job {
                        loop_index,
                        token,
                        gen,
                        seq,
                        key,
                        query: query.clone(),
                        id: id.clone(),
                        op,
                        started,
                        start_us,
                        snapshot: Arc::clone(&snapshot),
                        trace,
                        relay,
                    };
                    if shared.jobs.try_push(job).is_err() {
                        shared.stats.record_error();
                        shared.hub.bump(loop_index, COUNTER_ERRORS, 1, now_s);
                        pending.push_back(Ticket::Done {
                            envelope: protocol::err_envelope(
                                &id,
                                "server busy: compute queue full",
                            ),
                            chaos: false,
                            trace: None,
                        });
                    } else {
                        pending.push_back(Ticket::Waiting {
                            seq,
                            id,
                            queued_at: started,
                        });
                    }
                    return;
                }
            }
        }
    };
    pending.push_back(finish_now(
        shared,
        loop_index,
        &id,
        op,
        &payload,
        cached,
        reply_epoch,
        started,
        start_us,
        trace,
    ));
}

/// Constant-time token comparison: the byte-fold visits every byte of
/// both strings regardless of where they first differ, so response
/// timing leaks neither the match prefix length nor (beyond the
/// unavoidable length class) the expected token.
fn token_matches(expected: &str, got: &str) -> bool {
    let mut diff = expected.len() ^ got.len();
    for (a, b) in expected.bytes().zip(got.bytes()) {
        diff |= usize::from(a ^ b);
    }
    diff == 0
}

/// Execute one authenticated `admin` action. Runs inline on the event
/// loop — admin traffic is rare and must serialize naturally against
/// the loop's own dispatch. Returns the reply payload or a one-line
/// error (rendered as an error envelope by the caller).
fn handle_admin(
    shared: &Shared,
    action: AdminAction,
    token: &str,
    name: Option<&str>,
    spec: Option<&str>,
) -> Result<String, String> {
    let Some(expected) = &shared.admin_token else {
        return Err("admin: disabled (server started without --admin-token)".to_string());
    };
    if !token_matches(expected, token) {
        return Err("admin: invalid token".to_string());
    }
    let registry = &shared.registry;
    match action {
        AdminAction::SpecLoad => {
            let doc = spec.unwrap_or_default();
            let staged = registry.stage(doc).map_err(|e| format!("spec-load: {e}"))?;
            Ok(format!(
                "{{\"action\":\"spec-load\",\"staged\":\"{}\",\"epoch\":{}}}",
                osarch_core::metrics::json_escape(&staged),
                registry.snapshot().epoch()
            ))
        }
        AdminAction::SpecActivate => activate_spec(shared, name.unwrap_or_default()),
        AdminAction::SpecRollback => {
            let swap_started = Instant::now();
            let restored = registry.rollback(None);
            shared.cache.retain_prefix(restored.key_prefix());
            registry.record_swap_latency(swap_started.elapsed().as_micros() as u64);
            Ok(format!(
                "{{\"action\":\"spec-rollback\",\"epoch\":{},\"digest\":\"{}\"}}",
                restored.epoch(),
                restored.digest()
            ))
        }
        AdminAction::SpecList => {
            let snapshot = registry.snapshot();
            let active: Vec<String> = snapshot
                .entries()
                .iter()
                .map(|e| format!("\"{}\"", osarch_core::metrics::json_escape(&e.name)))
                .collect();
            let staged: Vec<String> = registry
                .staged_names()
                .iter()
                .map(|n| format!("\"{}\"", osarch_core::metrics::json_escape(n)))
                .collect();
            Ok(format!(
                concat!(
                    "{{\"action\":\"spec-list\",\"epoch\":{},\"digest\":\"{}\",",
                    "\"swaps\":{},\"rollbacks\":{},\"active\":[{}],\"staged\":[{}]}}"
                ),
                snapshot.epoch(),
                snapshot.digest(),
                registry.swaps(),
                registry.rollbacks(),
                active.join(","),
                staged.join(",")
            ))
        }
    }
}

/// The activation pipeline: staged doc → parse → lint gate → absint
/// proof gate → epoch commit → measurement probe under panic
/// containment. A probe failure (including an injected `CorruptSpec`
/// fault) rolls the registry back to last-good automatically; the reply
/// reports which way it went.
fn activate_spec(shared: &Shared, name: &str) -> Result<String, String> {
    let registry = &shared.registry;
    let swap_started = Instant::now();
    let doc = registry
        .staged_doc(name)
        .ok_or_else(|| format!("spec-activate: {name:?} is not staged (spec-load it first)"))?;
    let (_, spec) =
        osarch_cpu::ArchSpec::from_json(&doc).map_err(|e| format!("spec-activate: {e}"))?;
    // Gate 1: the lint rules that run over every builtin must pass for
    // the candidate too (warnings allowed, errors fatal).
    let lint = osarch_core::Analyzer::new().analyze_spec(&spec);
    if !lint.passes(false) {
        return Err(format!(
            "spec-activate: {name:?} fails lint ({} diagnostics)",
            lint.diagnostics().len()
        ));
    }
    // Gate 2: the abstract-interpretation verifier must produce a proof
    // artifact with zero refuted obligations.
    let absint = osarch_core::AbsintAnalyzer::new().analyze_spec(&spec);
    let (_, refuted, _) = absint.verdict_counts();
    if refuted > 0 {
        return Err(format!(
            "spec-activate: {name:?} refuted by the dataflow verifier ({refuted} obligations)"
        ));
    }
    // Commit: the prior active becomes last-good; a lost race against a
    // concurrent activation leaves the registry untouched.
    let base = registry.snapshot();
    let candidate = base
        .with_spec(&doc, base.epoch() + 1)
        .map_err(|e| format!("spec-activate: {e}"))?;
    let committed = registry.commit(candidate).map_err(|active| {
        format!("spec-activate: lost a concurrent activation race (active epoch {active}); retry")
    })?;
    shared.cache.retain_prefix(committed.key_prefix());
    // Probe: measure every primitive of the candidate under panic
    // containment. This is where a corrupt spec blows up — and where
    // chaos pretends one did.
    let probe = std::panic::catch_unwind(AssertUnwindSafe(|| {
        if shared.inject(Failpoint::CorruptSpec) {
            panic!("chaos: injected spec corruption during the activation probe");
        }
        let spec = committed
            .spec(name)
            .expect("the spec was committed under this name one line ago");
        for primitive in osarch_kernel::Primitive::all() {
            let _ = osarch_core::metrics::measure_spec_json(name, spec, primitive);
        }
    }));
    let swap_us = swap_started.elapsed().as_micros() as u64;
    registry.record_swap_latency(swap_us);
    match probe {
        Ok(()) => {
            if shared.inject(Failpoint::SwapLoopDeath) {
                // Chaos: arm the loop-death flag; the event loop checks
                // it outside dispatch's catch_unwind and dies for real
                // before this reply is written.
                registry.swap_loop_death.store(true, Ordering::SeqCst);
            }
            Ok(format!(
                concat!(
                    "{{\"action\":\"spec-activate\",\"name\":\"{}\",\"activated\":true,",
                    "\"rolled_back\":false,\"epoch\":{},\"digest\":\"{}\",\"swap_us\":{}}}"
                ),
                osarch_core::metrics::json_escape(name),
                committed.epoch(),
                committed.digest(),
                swap_us
            ))
        }
        Err(_) => {
            // The candidate died mid-probe: automatic rollback to the
            // last-good content at a fresh epoch, candidate unstaged.
            shared.stats.record_panic();
            let restored = registry.rollback(Some(name));
            shared.cache.retain_prefix(restored.key_prefix());
            Ok(format!(
                concat!(
                    "{{\"action\":\"spec-activate\",\"name\":\"{}\",\"activated\":false,",
                    "\"rolled_back\":true,\"epoch\":{},\"digest\":\"{}\",\"swap_us\":{}}}"
                ),
                osarch_core::metrics::json_escape(name),
                restored.epoch(),
                restored.digest(),
                swap_us
            ))
        }
    }
}

/// Render an inline (non-offloaded) reply, deadline-checked and counted
/// exactly as the old blocking core did. A sampled trace gets its ready
/// mark set here; the write stage closes when the envelope is batched.
#[allow(clippy::too_many_arguments)]
fn finish_now(
    shared: &Shared,
    loop_index: usize,
    id: &str,
    op: &'static str,
    payload: &str,
    cached: bool,
    epoch: u64,
    started: Instant,
    start_us: u64,
    mut trace: Option<Box<PendingTrace>>,
) -> Ticket {
    let service = started.elapsed();
    let service_us = service.as_micros() as u64;
    let now_s = start_us / 1_000_000;
    if service > shared.deadline {
        shared.stats.record_deadline_exceeded();
        shared.stats.record_error();
        shared.hub.bump(loop_index, COUNTER_ERRORS, 1, now_s);
        return Ticket::Done {
            envelope: protocol::err_envelope(
                id,
                &format!(
                    "deadline exceeded: served in {service_us} us, deadline {} us",
                    shared.deadline.as_micros()
                ),
            ),
            chaos: false,
            trace: None,
        };
    }
    shared
        .stats
        .record_request(op, start_us, service_us, cached);
    shared
        .hub
        .record_op(loop_index, op_slot(op), service_us, now_s);
    shared.hub.bump(loop_index, COUNTER_REQUESTS, 1, now_s);
    if cached {
        shared.hub.bump(loop_index, COUNTER_HITS, 1, now_s);
    }
    if let Some(trace) = trace.as_mut() {
        // Response ready: everything from here to batching is `write`.
        trace.mark(shared.uptime_us());
    }
    Ticket::Done {
        envelope: protocol::ok_envelope(id, cached, epoch, service_us, payload),
        chaos: true,
        trace,
    }
}

// ---------------------------------------------------------------------------
// Completions and the write path
// ---------------------------------------------------------------------------

/// Resolve the `Waiting` ticket a completion belongs to. Tickets settle
/// in any order; replies still leave in request order.
fn settle_ticket(shared: &Shared, loop_index: usize, conn: &mut Conn, completion: Completion) {
    let Some(position) = conn
        .pending
        .iter()
        .position(|ticket| matches!(ticket, Ticket::Waiting { seq, .. } if *seq == completion.seq))
    else {
        return;
    };
    conn.pending[position] = render_completion(shared, loop_index, completion);
}

fn render_completion(shared: &Shared, loop_index: usize, completion: Completion) -> Ticket {
    let now_s = completion.start_us / 1_000_000;
    let mut trace = completion.trace;
    let fetched = match completion.outcome {
        Outcome::Fetched(fetched) => fetched,
        Outcome::Relayed(envelope) => {
            // A replica answered on our behalf: its envelope carries the
            // request's own id, so it passes through verbatim. Counted
            // as a served request but not as a local cache event.
            let service = completion.started.elapsed();
            let service_us = service.as_micros() as u64;
            if service > shared.deadline {
                shared.stats.record_deadline_exceeded();
                shared.stats.record_error();
                shared.hub.bump(loop_index, COUNTER_ERRORS, 1, now_s);
                return Ticket::Done {
                    envelope: protocol::err_envelope(
                        &completion.id,
                        &format!(
                            "deadline exceeded: served in {service_us} us, deadline {} us",
                            shared.deadline.as_micros()
                        ),
                    ),
                    chaos: false,
                    trace: None,
                };
            }
            shared
                .stats
                .record_request(completion.op, completion.start_us, service_us, false);
            shared
                .hub
                .record_op(loop_index, op_slot(completion.op), service_us, now_s);
            shared.hub.bump(loop_index, COUNTER_REQUESTS, 1, now_s);
            if let Some(trace) = trace.as_mut() {
                trace.mark(shared.uptime_us());
            }
            return Ticket::Done {
                envelope,
                chaos: true,
                trace,
            };
        }
    };
    let (payload, cached, degraded) = match &fetched {
        Fetched::Computed(payload) => (payload, false, None),
        Fetched::Cached(payload) => (payload, true, None),
        Fetched::Degraded(payload, error) => {
            shared.stats.record_panic();
            shared.stats.record_degraded();
            shared.hub.bump(loop_index, COUNTER_DEGRADED, 1, now_s);
            (payload, true, Some(error.clone()))
        }
        Fetched::Failed(error) => {
            shared.stats.record_panic();
            shared.stats.record_error();
            shared.hub.bump(loop_index, COUNTER_ERRORS, 1, now_s);
            return Ticket::Done {
                envelope: protocol::err_envelope(
                    &completion.id,
                    &format!("{} failed: {error}", completion.op),
                ),
                chaos: false,
                trace: None,
            };
        }
    };
    let service = completion.started.elapsed();
    let service_us = service.as_micros() as u64;
    if service > shared.deadline {
        shared.stats.record_deadline_exceeded();
        shared.stats.record_error();
        shared.hub.bump(loop_index, COUNTER_ERRORS, 1, now_s);
        return Ticket::Done {
            envelope: protocol::err_envelope(
                &completion.id,
                &format!(
                    "deadline exceeded: served in {service_us} us, deadline {} us",
                    shared.deadline.as_micros()
                ),
            ),
            chaos: false,
            trace: None,
        };
    }
    shared
        .stats
        .record_request(completion.op, completion.start_us, service_us, cached);
    shared
        .hub
        .record_op(loop_index, op_slot(completion.op), service_us, now_s);
    shared.hub.bump(loop_index, COUNTER_REQUESTS, 1, now_s);
    shared.hub.bump(
        loop_index,
        if cached { COUNTER_HITS } else { COUNTER_MISSES },
        1,
        now_s,
    );
    let envelope = match degraded {
        Some(error) => protocol::degraded_envelope(
            &completion.id,
            completion.epoch,
            service_us,
            payload,
            &error,
        ),
        None => protocol::ok_envelope(
            &completion.id,
            cached,
            completion.epoch,
            service_us,
            payload,
        ),
    };
    if let Some(trace) = trace.as_mut() {
        // Response ready: everything from here to batching is `write`.
        trace.mark(shared.uptime_us());
    }
    Ticket::Done {
        envelope,
        chaos: true,
        trace,
    }
}

/// Move the completed reply prefix into the write buffer (one batched
/// write per pass), attempt the flush, and reconcile poller interest.
fn service_conn(shared: &Shared, poller: &mut dyn Readiness, conn: &mut Conn) {
    while !conn.torn && matches!(conn.pending.front(), Some(Ticket::Done { .. })) {
        let Some(Ticket::Done {
            envelope,
            chaos,
            trace,
        }) = conn.pending.pop_front()
        else {
            unreachable!("front checked above");
        };
        if chaos {
            if let Some(delay) =
                shared.inject_delay(Failpoint::WriteStall, WRITE_STALL_MIN, WRITE_STALL_MAX)
            {
                // Chaos: sit on the finished response (drives client
                // timeouts) — emulated by a flush embargo, never by
                // blocking the loop.
                let until = Instant::now() + delay;
                conn.stalled_until = Some(conn.stalled_until.map_or(until, |t| t.max(until)));
            }
            if shared.inject(Failpoint::WritePartial) {
                // Chaos: emit a torn response — a prefix with no newline
                // — then fail the connection. Clients must never parse
                // this as a reply.
                let bytes = envelope.as_bytes();
                if conn.write_buf.is_empty() {
                    conn.last_write = Instant::now();
                }
                conn.write_buf.extend_from_slice(&bytes[..bytes.len() / 2]);
                conn.torn = true;
                break;
            }
        }
        if conn.write_buf.is_empty() {
            conn.last_write = Instant::now();
        }
        conn.write_buf.extend_from_slice(envelope.as_bytes());
        conn.write_buf.push(b'\n');
        if let Some(mut trace) = trace {
            // The chain closes when the reply lands in the write batch:
            // past this point delivery is the kernel's problem, and the
            // flush cost is visible as loop lag rather than per-request.
            let now_us = shared.uptime_us();
            trace.stage_from_mark("write", now_us);
            shared.hub.push_chain(trace.finish(now_us));
        }
    }
    flush_writes(conn);
    update_interest(poller, conn);
}

fn flush_writes(conn: &mut Conn) {
    if conn.dead {
        return;
    }
    if let Some(until) = conn.stalled_until {
        if Instant::now() < until {
            return; // chaos embargo still running
        }
        conn.stalled_until = None;
    }
    while conn.write_pos < conn.write_buf.len() {
        match conn.stream.write(&conn.write_buf[conn.write_pos..]) {
            Ok(0) => {
                conn.dead = true;
                return;
            }
            Ok(count) => {
                conn.write_pos += count;
                conn.last_write = Instant::now();
            }
            Err(error) if error.kind() == std::io::ErrorKind::WouldBlock => break,
            Err(error) if error.kind() == std::io::ErrorKind::Interrupted => {}
            Err(_) => {
                conn.dead = true;
                return;
            }
        }
    }
    if conn.write_pos >= conn.write_buf.len() {
        conn.write_buf.clear();
        conn.write_pos = 0;
        if conn.write_buf.capacity() > WRITE_BASELINE * 4 {
            // An oversized burst must not pin its high-water allocation.
            conn.write_buf.shrink_to(WRITE_BASELINE);
        }
    }
}

/// Reconcile poller interest with connection state: write interest only
/// while a backlog is draining (and not chaos-stalled), read interest
/// until the connection stops reading or flow control engages.
fn update_interest(poller: &mut dyn Readiness, conn: &mut Conn) {
    if conn.dead {
        return;
    }
    let desired = Interest {
        readable: !conn.read_closed
            && !conn.poisoned
            && !conn.torn
            && conn.write_backlog() <= WRITE_HIGH_WATER,
        writable: conn.write_backlog() > 0 && conn.stalled_until.is_none(),
    };
    if desired != conn.interest
        && poller
            .reregister(fd_of(&conn.stream), conn.token, desired)
            .is_ok()
    {
        conn.interest = desired;
    }
}

/// Injected computation stalls: long enough to blow tight deadlines,
/// short enough to keep soak throughput alive.
const COMPUTE_DELAY_MIN: Duration = Duration::from_millis(20);
const COMPUTE_DELAY_MAX: Duration = Duration::from_millis(120);

/// Injected response stalls: sized to straddle typical client
/// per-attempt timeouts.
const WRITE_STALL_MIN: Duration = Duration::from_millis(50);
const WRITE_STALL_MAX: Duration = Duration::from_millis(400);
