//! The concurrent query server.
//!
//! A [`Server`] is a `std::net::TcpListener` accept loop feeding a
//! bounded connection queue drained by a fixed pool of worker threads.
//! Workers answer line-JSON requests (see [`crate::protocol`]) from the
//! sharded single-flight cache, time every request against a service
//! deadline, and record counters/latencies/spans in [`ServeStats`].
//!
//! Shutdown is cooperative: a `shutdown` request (or
//! [`ServerHandle::shutdown`]) flips the shutdown flag, closes the queue
//! so idle workers exit, and pokes the accept loop awake with a loopback
//! connection. In-flight connections finish their current request.

use crate::cache::ShardedCache;
use crate::protocol::{self, Query, MAX_REQUEST_BYTES};
use crate::stats::ServeStats;
use std::io::{BufRead, BufReader, BufWriter, Read, Write};
use std::net::{SocketAddr, TcpListener, TcpStream};
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;
use std::time::{Duration, Instant};

/// Server tuning knobs.
#[derive(Debug, Clone)]
pub struct ServerConfig {
    /// Listen address (`127.0.0.1:0` picks an ephemeral port).
    pub addr: String,
    /// Worker threads draining the connection queue.
    pub workers: usize,
    /// Cache shards.
    pub shards: usize,
    /// Bounded connection-queue depth; connections beyond it are answered
    /// with a `busy` error envelope and dropped (backpressure).
    pub queue_depth: usize,
    /// Per-request service deadline; a request that takes longer is
    /// answered with a `deadline exceeded` error envelope.
    pub deadline: Duration,
    /// Idle read timeout per connection; a silent client is disconnected.
    pub idle_timeout: Duration,
}

impl Default for ServerConfig {
    fn default() -> ServerConfig {
        ServerConfig {
            addr: "127.0.0.1:0".to_string(),
            workers: 4,
            shards: 16,
            queue_depth: 64,
            deadline: Duration::from_secs(30),
            idle_timeout: Duration::from_secs(30),
        }
    }
}

/// State shared by the accept loop, the workers and the handle.
struct Shared {
    cache: ShardedCache,
    stats: ServeStats,
    queue: crate::queue::BoundedQueue<TcpStream>,
    shutdown: AtomicBool,
    deadline: Duration,
    idle_timeout: Duration,
    workers: usize,
    started: Instant,
    /// The bound address, for the shutdown poke that wakes the accept loop.
    addr: SocketAddr,
}

/// The server factory. See [`Server::start`].
pub struct Server;

impl Server {
    /// Bind `config.addr`, spawn the accept loop and worker pool, and
    /// return a handle. Serving begins immediately.
    pub fn start(config: &ServerConfig) -> std::io::Result<ServerHandle> {
        let listener = TcpListener::bind(&config.addr)?;
        let addr = listener.local_addr()?;
        let shared = Arc::new(Shared {
            cache: ShardedCache::new(config.shards),
            stats: ServeStats::new(),
            queue: crate::queue::BoundedQueue::new(config.queue_depth),
            shutdown: AtomicBool::new(false),
            deadline: config.deadline,
            idle_timeout: config.idle_timeout,
            workers: config.workers.max(1),
            started: Instant::now(),
            addr,
        });
        let mut threads = Vec::with_capacity(shared.workers + 1);
        for worker in 0..shared.workers {
            let shared = Arc::clone(&shared);
            threads.push(
                std::thread::Builder::new()
                    .name(format!("serve-worker-{worker}"))
                    .spawn(move || worker_loop(&shared))?,
            );
        }
        {
            let shared = Arc::clone(&shared);
            threads.push(
                std::thread::Builder::new()
                    .name("serve-accept".to_string())
                    .spawn(move || accept_loop(&listener, &shared))?,
            );
        }
        Ok(ServerHandle {
            addr,
            shared,
            threads,
        })
    }
}

/// A running server: its bound address plus shutdown/join control.
pub struct ServerHandle {
    addr: SocketAddr,
    shared: Arc<Shared>,
    threads: Vec<std::thread::JoinHandle<()>>,
}

impl ServerHandle {
    /// The bound address (with the real port when `:0` was requested).
    #[must_use]
    pub fn addr(&self) -> SocketAddr {
        self.addr
    }

    /// (hits, misses, coalesced) of the response cache.
    #[must_use]
    pub fn cache_stats(&self) -> (u64, u64, u64) {
        (
            self.shared.cache.hits(),
            self.shared.cache.misses(),
            self.shared.cache.coalesced(),
        )
    }

    /// (ok requests, error requests, rejected connections).
    #[must_use]
    pub fn request_stats(&self) -> (u64, u64, u64) {
        (
            self.shared.stats.requests(),
            self.shared.stats.errors(),
            self.shared.stats.rejected(),
        )
    }

    /// Begin a graceful shutdown (idempotent): stop accepting, let
    /// drained workers exit, finish in-flight connections.
    pub fn shutdown(&self) {
        initiate_shutdown(&self.shared);
    }

    /// Block until every server thread has exited. Call
    /// [`ServerHandle::shutdown`] first (or send a `shutdown` request).
    pub fn wait(self) {
        for thread in self.threads {
            let _ = thread.join();
        }
    }

    /// Shut down and join, in one call.
    pub fn stop(self) {
        self.shutdown();
        self.wait();
    }
}

fn initiate_shutdown(shared: &Shared) {
    if shared.shutdown.swap(true, Ordering::SeqCst) {
        return; // already shutting down
    }
    shared.queue.close();
    // Poke the accept loop awake; it re-checks the flag after accept.
    let _ = TcpStream::connect_timeout(&shared.addr, Duration::from_millis(200));
}

fn accept_loop(listener: &TcpListener, shared: &Shared) {
    loop {
        let stream = match listener.accept() {
            Ok((stream, _)) => stream,
            Err(_) => {
                if shared.shutdown.load(Ordering::SeqCst) {
                    return;
                }
                continue;
            }
        };
        if shared.shutdown.load(Ordering::SeqCst) {
            return; // the poke connection (or a straggler) — drop it
        }
        if let Err(stream) = shared.queue.try_push(stream) {
            // Backpressure: answer busy and hang up rather than queueing
            // unbounded work.
            shared.stats.record_rejected();
            let mut stream = stream;
            let _ = stream.set_write_timeout(Some(Duration::from_millis(200)));
            let _ = writeln!(
                stream,
                "{}",
                protocol::err_envelope("null", "server busy: connection queue full")
            );
        }
    }
}

fn worker_loop(shared: &Shared) {
    // A client that goes away mid-exchange surfaces as an io::Error here;
    // the worker just moves on to the next queued connection. The loop
    // ends when the queue is closed and drained.
    while let Some(stream) = shared.queue.pop() {
        let _ = serve_connection(shared, stream);
    }
}

/// Answer requests on one connection until EOF, error or shutdown.
fn serve_connection(shared: &Shared, stream: TcpStream) -> std::io::Result<()> {
    stream.set_read_timeout(Some(shared.idle_timeout))?;
    let mut reader = BufReader::new(stream.try_clone()?);
    let mut writer = BufWriter::new(stream);
    loop {
        let mut line = Vec::new();
        let n = (&mut reader)
            .take(MAX_REQUEST_BYTES as u64 + 1)
            .read_until(b'\n', &mut line)?;
        if n == 0 {
            return Ok(()); // clean EOF
        }
        if line.len() > MAX_REQUEST_BYTES {
            shared.stats.record_error();
            writeln!(
                writer,
                "{}",
                protocol::err_envelope(
                    "null",
                    &format!("request too large (limit {MAX_REQUEST_BYTES} bytes)")
                )
            )?;
            writer.flush()?;
            return Ok(()); // the rest of the oversized line is unframed — hang up
        }
        let text = String::from_utf8_lossy(&line);
        let text = text.trim();
        if text.is_empty() {
            continue;
        }
        let shutting_down = answer(shared, text, &mut writer)?;
        writer.flush()?;
        if shutting_down || shared.shutdown.load(Ordering::SeqCst) {
            return Ok(());
        }
    }
}

/// Answer one request line. Returns `true` when the request asked for
/// shutdown.
fn answer(shared: &Shared, line: &str, writer: &mut impl Write) -> std::io::Result<bool> {
    let start = Instant::now();
    let start_us = shared.started.elapsed().as_micros() as u64;
    let request = match protocol::parse_request(line) {
        Ok(request) => request,
        Err((message, id)) => {
            shared.stats.record_error();
            writeln!(writer, "{}", protocol::err_envelope(&id, &message))?;
            return Ok(false);
        }
    };
    let id = request.id;
    let (op, payload, cached) = match &request.query {
        Query::Ping => ("ping", "{\"pong\":true}".to_string(), false),
        Query::Stats => {
            let (hits, misses, coalesced) = (
                shared.cache.hits(),
                shared.cache.misses(),
                shared.cache.coalesced(),
            );
            (
                "stats",
                shared.stats.stats_payload(
                    hits,
                    misses,
                    coalesced,
                    shared.workers,
                    shared.cache.shard_count(),
                ),
                false,
            )
        }
        Query::Spans => ("spans", shared.stats.spans_payload(), false),
        Query::Shutdown => {
            // Initiate before replying: shutdown must happen even when the
            // client hangs up without reading the acknowledgement.
            initiate_shutdown(shared);
            ("shutdown", "{\"shutting_down\":true}".to_string(), false)
        }
        query => {
            let key = query.cache_key().expect("data queries are cacheable");
            let (payload, cached) = shared.cache.get_or_compute(&key, || query.compute());
            let op: &'static str = match query {
                Query::Measure { .. } => "measure",
                Query::Table { .. } => "table",
                Query::Lint { .. } => "lint",
                Query::Trace { .. } => "trace",
                Query::Counters { .. } => "counters",
                _ => unreachable!("control queries handled above"),
            };
            (op, payload.to_string(), cached)
        }
    };
    let service = start.elapsed();
    let service_us = service.as_micros() as u64;
    if service > shared.deadline {
        shared.stats.record_deadline_exceeded();
        shared.stats.record_error();
        writeln!(
            writer,
            "{}",
            protocol::err_envelope(
                &id,
                &format!(
                    "deadline exceeded: served in {service_us} us, deadline {} us",
                    shared.deadline.as_micros()
                )
            )
        )?;
        return Ok(false);
    }
    shared
        .stats
        .record_request(op, start_us, service_us, cached);
    writeln!(
        writer,
        "{}",
        protocol::ok_envelope(&id, cached, service_us, &payload)
    )?;
    Ok(matches!(request.query, Query::Shutdown))
}
