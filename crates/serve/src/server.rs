//! The concurrent query server.
//!
//! A [`Server`] is a `std::net::TcpListener` accept loop feeding a
//! bounded connection queue drained by a fixed pool of worker threads.
//! Workers answer line-JSON requests (see [`crate::protocol`]) from the
//! sharded single-flight cache, time every request against a service
//! deadline, and record counters/latencies/spans in [`ServeStats`].
//!
//! The server is built to survive misbehaviour, injected or real:
//!
//! * every request is answered under `catch_unwind` — a panicking
//!   computation produces an error envelope (or a degraded stale reply),
//!   never a dead worker;
//! * a worker that *does* die (a panic outside the per-request guard)
//!   respawns in place, keeping the pool at full strength;
//! * writes carry a deadline (`SO_SNDTIMEO`), so a stalled client cannot
//!   wedge a worker — or block shutdown — by never draining its socket;
//! * a failed recomputation degrades to the last good cached value,
//!   explicitly flagged, rather than failing the request outright;
//! * the `health` op reports queue depth, worker liveness and the
//!   panic/degraded/respawn counters in one line.
//!
//! Fault injection ([`osarch_chaos::ChaosController`]) threads through
//! the accept loop, the compute path, the response writer and the worker
//! pool; with no controller configured every hook is a single branch.
//!
//! Shutdown is cooperative: a `shutdown` request (or
//! [`ServerHandle::shutdown`]) flips the shutdown flag, closes the queue
//! so idle workers exit, and pokes the accept loop awake with a loopback
//! connection. In-flight connections finish their current request.

use crate::cache::{Fetched, ShardedCache};
use crate::protocol::{self, Query, MAX_REQUEST_BYTES};
use crate::stats::ServeStats;
use osarch_chaos::{ChaosController, Failpoint};
use std::io::{BufRead, BufReader, BufWriter, Read, Write};
use std::net::{SocketAddr, TcpListener, TcpStream};
use std::panic::AssertUnwindSafe;
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;
use std::time::{Duration, Instant};

/// Server tuning knobs.
#[derive(Debug, Clone)]
pub struct ServerConfig {
    /// Listen address (`127.0.0.1:0` picks an ephemeral port).
    pub addr: String,
    /// Worker threads draining the connection queue.
    pub workers: usize,
    /// Cache shards.
    pub shards: usize,
    /// Bounded connection-queue depth; connections beyond it are answered
    /// with a `busy` error envelope and dropped (backpressure).
    pub queue_depth: usize,
    /// Per-request service deadline; a request that takes longer is
    /// answered with a `deadline exceeded` error envelope.
    pub deadline: Duration,
    /// Idle read timeout per connection; a silent client is disconnected.
    pub idle_timeout: Duration,
    /// Write deadline per connection; a client that stops draining its
    /// socket is disconnected instead of wedging the worker (and, with
    /// it, shutdown).
    pub write_timeout: Duration,
    /// Fault-injection schedule; `None` serves faithfully.
    pub chaos: Option<Arc<ChaosController>>,
}

impl Default for ServerConfig {
    fn default() -> ServerConfig {
        ServerConfig {
            addr: "127.0.0.1:0".to_string(),
            workers: 4,
            shards: 16,
            queue_depth: 64,
            deadline: Duration::from_secs(30),
            idle_timeout: Duration::from_secs(30),
            write_timeout: Duration::from_secs(5),
            chaos: None,
        }
    }
}

/// State shared by the accept loop, the workers and the handle.
struct Shared {
    cache: ShardedCache,
    stats: Arc<ServeStats>,
    queue: crate::queue::BoundedQueue<TcpStream>,
    shutdown: AtomicBool,
    deadline: Duration,
    idle_timeout: Duration,
    write_timeout: Duration,
    workers: usize,
    started: Instant,
    chaos: Option<Arc<ChaosController>>,
    /// The bound address, for the shutdown poke that wakes the accept loop.
    addr: SocketAddr,
}

impl Shared {
    /// Take a chaos decision at `fp`; `false` whenever no controller is
    /// configured. Injections are counted in the serve stats so `health`
    /// can report them without reaching into the controller.
    fn inject(&self, fp: Failpoint) -> bool {
        let hit = self
            .chaos
            .as_ref()
            .is_some_and(|chaos| chaos.should_inject(fp));
        if hit {
            self.stats.record_fault_injected();
        }
        hit
    }

    /// Take a chaos delay decision at `fp` with a deterministic duration.
    fn inject_delay(&self, fp: Failpoint, min: Duration, max: Duration) -> Option<Duration> {
        let delay = self
            .chaos
            .as_ref()
            .and_then(|chaos| chaos.inject_delay(fp, min, max));
        if delay.is_some() {
            self.stats.record_fault_injected();
        }
        delay
    }
}

/// The server factory. See [`Server::start`].
pub struct Server;

impl Server {
    /// Bind `config.addr`, spawn the accept loop and worker pool, and
    /// return a handle. Serving begins immediately.
    pub fn start(config: &ServerConfig) -> std::io::Result<ServerHandle> {
        let listener = TcpListener::bind(&config.addr)?;
        let addr = listener.local_addr()?;
        let shared = Arc::new(Shared {
            cache: ShardedCache::new(config.shards),
            stats: Arc::new(ServeStats::new()),
            queue: crate::queue::BoundedQueue::new(config.queue_depth),
            shutdown: AtomicBool::new(false),
            deadline: config.deadline,
            idle_timeout: config.idle_timeout,
            write_timeout: config.write_timeout,
            workers: config.workers.max(1),
            started: Instant::now(),
            chaos: config.chaos.clone(),
            addr,
        });
        let mut threads = Vec::with_capacity(shared.workers + 1);
        for worker in 0..shared.workers {
            let shared = Arc::clone(&shared);
            threads.push(
                std::thread::Builder::new()
                    .name(format!("serve-worker-{worker}"))
                    .spawn(move || worker_main(&shared))?,
            );
        }
        {
            let shared = Arc::clone(&shared);
            threads.push(
                std::thread::Builder::new()
                    .name("serve-accept".to_string())
                    .spawn(move || accept_loop(&listener, &shared))?,
            );
        }
        Ok(ServerHandle {
            addr,
            shared,
            threads,
        })
    }
}

/// A running server: its bound address plus shutdown/join control.
pub struct ServerHandle {
    addr: SocketAddr,
    shared: Arc<Shared>,
    threads: Vec<std::thread::JoinHandle<()>>,
}

impl ServerHandle {
    /// The bound address (with the real port when `:0` was requested).
    #[must_use]
    pub fn addr(&self) -> SocketAddr {
        self.addr
    }

    /// (hits, misses, coalesced) of the response cache.
    #[must_use]
    pub fn cache_stats(&self) -> (u64, u64, u64) {
        (
            self.shared.cache.hits(),
            self.shared.cache.misses(),
            self.shared.cache.coalesced(),
        )
    }

    /// (failed computations, degraded replies) of the response cache.
    #[must_use]
    pub fn cache_failure_stats(&self) -> (u64, u64) {
        (self.shared.cache.failed(), self.shared.cache.degraded())
    }

    /// Total cache lookups. The single-flight accounting invariant is
    /// `lookups == hits + misses + coalesced`, exactly.
    #[must_use]
    pub fn cache_lookups(&self) -> u64 {
        self.shared.cache.lookups()
    }

    /// (ok requests, error requests, rejected connections).
    #[must_use]
    pub fn request_stats(&self) -> (u64, u64, u64) {
        (
            self.shared.stats.requests(),
            self.shared.stats.errors(),
            self.shared.stats.rejected(),
        )
    }

    /// A shareable view of the serving counters that outlives the handle
    /// — the chaos soak reads worker liveness *after* [`ServerHandle::stop`].
    #[must_use]
    pub fn stats(&self) -> Arc<ServeStats> {
        Arc::clone(&self.shared.stats)
    }

    /// Begin a graceful shutdown (idempotent): stop accepting, let
    /// drained workers exit, finish in-flight connections.
    pub fn shutdown(&self) {
        initiate_shutdown(&self.shared);
    }

    /// Block until every server thread has exited. Call
    /// [`ServerHandle::shutdown`] first (or send a `shutdown` request).
    pub fn wait(self) {
        for thread in self.threads {
            let _ = thread.join();
        }
    }

    /// Shut down and join, in one call.
    pub fn stop(self) {
        self.shutdown();
        self.wait();
    }
}

fn initiate_shutdown(shared: &Shared) {
    if shared.shutdown.swap(true, Ordering::SeqCst) {
        return; // already shutting down
    }
    shared.queue.close();
    // Poke the accept loop awake; it re-checks the flag after accept.
    let _ = TcpStream::connect_timeout(&shared.addr, Duration::from_millis(200));
}

fn accept_loop(listener: &TcpListener, shared: &Shared) {
    loop {
        let stream = match listener.accept() {
            Ok((stream, _)) => stream,
            Err(_) => {
                if shared.shutdown.load(Ordering::SeqCst) {
                    return;
                }
                continue;
            }
        };
        if shared.shutdown.load(Ordering::SeqCst) {
            return; // the poke connection (or a straggler) — drop it
        }
        if shared.inject(Failpoint::AcceptDrop) {
            // Chaos: the listener sheds this connection without a word;
            // the peer sees an immediate close.
            drop(stream);
            continue;
        }
        if let Err(stream) = shared.queue.try_push(stream) {
            // Backpressure: answer busy and hang up rather than queueing
            // unbounded work.
            shared.stats.record_rejected();
            let mut stream = stream;
            let _ = stream.set_write_timeout(Some(Duration::from_millis(200)));
            let _ = writeln!(
                stream,
                "{}",
                protocol::err_envelope("null", "server busy: connection queue full")
            );
        }
    }
}

/// One worker thread: serve until the queue closes, reincarnating after
/// any escape of the per-request panic isolation (including injected
/// worker deaths). The liveness gauge brackets the whole tenure, so
/// `health` sees a respawning worker as continuously live.
fn worker_main(shared: &Shared) {
    shared.stats.worker_started();
    loop {
        let exit = std::panic::catch_unwind(AssertUnwindSafe(|| worker_loop(shared)));
        match exit {
            Ok(()) => break, // queue closed and drained — clean exit
            Err(_) => {
                // The worker died mid-tenure; respawn in place rather
                // than shrinking the pool.
                shared.stats.record_worker_respawn();
            }
        }
    }
    shared.stats.worker_stopped();
}

fn worker_loop(shared: &Shared) {
    // A client that goes away mid-exchange surfaces as an io::Error here;
    // the worker just moves on to the next queued connection. The loop
    // ends when the queue is closed and drained.
    while let Some(stream) = shared.queue.pop() {
        let _ = serve_connection(shared, stream);
        if shared.inject(Failpoint::WorkerDeath) {
            // Chaos: kill the worker between connections. worker_main
            // catches the unwind and respawns.
            panic!("chaos: injected worker death");
        }
    }
}

/// How often a worker blocked on an idle connection wakes to re-check
/// the shutdown flag. Reads poll at this grain (accumulating toward the
/// idle timeout), so shutdown never waits behind a silent client.
const READ_POLL: Duration = Duration::from_millis(100);

/// Answer requests on one connection until EOF, error or shutdown.
fn serve_connection(shared: &Shared, stream: TcpStream) -> std::io::Result<()> {
    // Reads wake every `READ_POLL` so shutdown is never held hostage by
    // an idle connection; `read_request_line` accumulates the polls into
    // the real idle timeout.
    stream.set_read_timeout(Some(READ_POLL.min(shared.idle_timeout)))?;
    // The write deadline is what keeps a stalled client from wedging this
    // worker: a blocked send errors out instead of blocking forever, so
    // the worker returns to the queue — and shutdown can complete.
    stream.set_write_timeout(Some(shared.write_timeout))?;
    let mut reader = BufReader::new(stream.try_clone()?);
    let mut writer = BufWriter::new(stream);
    loop {
        let mut line = Vec::new();
        let n = match read_request_line(shared, &mut reader, &mut line)? {
            Some(n) => n,
            None => return Ok(()), // shutdown while the connection was idle
        };
        if n == 0 {
            return Ok(()); // clean EOF
        }
        if line.len() > MAX_REQUEST_BYTES {
            shared.stats.record_error();
            writeln!(
                writer,
                "{}",
                protocol::err_envelope(
                    "null",
                    &format!("request too large (limit {MAX_REQUEST_BYTES} bytes)")
                )
            )?;
            writer.flush()?;
            return Ok(()); // the rest of the oversized line is unframed — hang up
        }
        let text = String::from_utf8_lossy(&line);
        let text = text.trim();
        if text.is_empty() {
            continue;
        }
        // Per-request panic isolation: whatever the request path does,
        // this worker answers (or hangs up) and lives to serve the next
        // connection. Computation panics are already contained inside the
        // cache; this guard catches everything else.
        let answered =
            std::panic::catch_unwind(AssertUnwindSafe(|| answer(shared, text, &mut writer)));
        let shutting_down = match answered {
            Ok(result) => result?,
            Err(_) => {
                shared.stats.record_panic();
                shared.stats.record_error();
                let _ = writeln!(
                    writer,
                    "{}",
                    protocol::err_envelope("null", "internal error: request handler panicked")
                );
                let _ = writer.flush();
                // The connection state is unknown after a panic — hang up.
                return Ok(());
            }
        };
        writer.flush()?;
        if shutting_down || shared.shutdown.load(Ordering::SeqCst) {
            return Ok(());
        }
    }
}

/// Read one newline-terminated request (up to the framing limit),
/// tolerating arbitrary segmentation: the line may arrive one byte per
/// segment, or glued to the next request in one segment (`BufReader`
/// holds the surplus for the next call). Returns `Ok(None)` when
/// shutdown was flagged while waiting, `Ok(Some(0))` on clean EOF, and
/// `Ok(Some(n))` with the (possibly oversized) line otherwise. A client
/// silent for the full idle timeout yields the underlying timeout error.
fn read_request_line(
    shared: &Shared,
    reader: &mut BufReader<TcpStream>,
    line: &mut Vec<u8>,
) -> std::io::Result<Option<usize>> {
    let waiting_since = Instant::now();
    loop {
        let remaining = (MAX_REQUEST_BYTES as u64 + 1).saturating_sub(line.len() as u64);
        match (&mut *reader).take(remaining).read_until(b'\n', line) {
            // EOF — with a partial unterminated line when `line` is
            // non-empty; the caller parses whatever arrived.
            Ok(0) => return Ok(Some(line.len())),
            Ok(_) => {
                if line.ends_with(b"\n") || line.len() > MAX_REQUEST_BYTES {
                    return Ok(Some(line.len()));
                }
                // The take-limit boundary landed mid-line: keep reading.
            }
            Err(error)
                if matches!(
                    error.kind(),
                    std::io::ErrorKind::WouldBlock | std::io::ErrorKind::TimedOut
                ) =>
            {
                // A poll expired with no data. Partial bytes read before
                // the stall stay in `line` (a mid-request pause is not a
                // framing error). Check shutdown, then the idle budget.
                if shared.shutdown.load(Ordering::SeqCst) {
                    return Ok(None);
                }
                if waiting_since.elapsed() >= shared.idle_timeout {
                    return Err(error);
                }
            }
            Err(error) if error.kind() == std::io::ErrorKind::Interrupted => {}
            Err(error) => return Err(error),
        }
    }
}

/// Answer one request line. Returns `true` when the request asked for
/// shutdown.
fn answer(shared: &Shared, line: &str, writer: &mut impl Write) -> std::io::Result<bool> {
    let start = Instant::now();
    let start_us = shared.started.elapsed().as_micros() as u64;
    let request = match protocol::parse_request(line) {
        Ok(request) => request,
        Err((message, id)) => {
            shared.stats.record_error();
            writeln!(writer, "{}", protocol::err_envelope(&id, &message))?;
            return Ok(false);
        }
    };
    let id = request.id;
    let (op, payload, cached, degraded) = match &request.query {
        Query::Ping => ("ping", "{\"pong\":true}".to_string(), false, None),
        Query::Stats => {
            let (hits, misses, coalesced) = (
                shared.cache.hits(),
                shared.cache.misses(),
                shared.cache.coalesced(),
            );
            (
                "stats",
                shared.stats.stats_payload(
                    hits,
                    misses,
                    coalesced,
                    shared.workers,
                    shared.cache.shard_count(),
                ),
                false,
                None,
            )
        }
        Query::Spans => ("spans", shared.stats.spans_payload(), false, None),
        Query::Health => (
            "health",
            shared.stats.health_payload(
                shared.queue.len(),
                shared.workers,
                shared.shutdown.load(Ordering::SeqCst),
            ),
            false,
            None,
        ),
        Query::Shutdown => {
            // Initiate before replying: shutdown must happen even when the
            // client hangs up without reading the acknowledgement.
            initiate_shutdown(shared);
            (
                "shutdown",
                "{\"shutting_down\":true}".to_string(),
                false,
                None,
            )
        }
        query => {
            let key = query.cache_key().expect("data queries are cacheable");
            let fetched = shared.cache.get_or_compute_resilient(&key, || {
                if let Some(delay) = shared.inject_delay(
                    Failpoint::ComputeDelay,
                    COMPUTE_DELAY_MIN,
                    COMPUTE_DELAY_MAX,
                ) {
                    // Chaos: stall the computation (typically past the
                    // service deadline).
                    std::thread::sleep(delay);
                }
                if shared.inject(Failpoint::ComputePanic) {
                    // Chaos: the single-flight leader dies mid-compute.
                    panic!("chaos: injected computation panic");
                }
                query.compute()
            });
            let op: &'static str = match query {
                Query::Measure { .. } => "measure",
                Query::Table { .. } => "table",
                Query::Lint { .. } => "lint",
                Query::Trace { .. } => "trace",
                Query::Counters { .. } => "counters",
                _ => unreachable!("control queries handled above"),
            };
            match fetched {
                Fetched::Computed(payload) => (op, payload.to_string(), false, None),
                Fetched::Cached(payload) => (op, payload.to_string(), true, None),
                Fetched::Degraded(payload, error) => {
                    shared.stats.record_panic();
                    shared.stats.record_degraded();
                    (op, payload.to_string(), true, Some(error))
                }
                Fetched::Failed(error) => {
                    shared.stats.record_panic();
                    shared.stats.record_error();
                    writeln!(
                        writer,
                        "{}",
                        protocol::err_envelope(&id, &format!("{op} failed: {error}"))
                    )?;
                    return Ok(false);
                }
            }
        }
    };
    let service = start.elapsed();
    let service_us = service.as_micros() as u64;
    if service > shared.deadline {
        shared.stats.record_deadline_exceeded();
        shared.stats.record_error();
        writeln!(
            writer,
            "{}",
            protocol::err_envelope(
                &id,
                &format!(
                    "deadline exceeded: served in {service_us} us, deadline {} us",
                    shared.deadline.as_micros()
                )
            )
        )?;
        return Ok(false);
    }
    shared
        .stats
        .record_request(op, start_us, service_us, cached);
    let envelope = match &degraded {
        Some(error) => protocol::degraded_envelope(&id, service_us, &payload, error),
        None => protocol::ok_envelope(&id, cached, service_us, &payload),
    };
    if let Some(delay) =
        shared.inject_delay(Failpoint::WriteStall, WRITE_STALL_MIN, WRITE_STALL_MAX)
    {
        // Chaos: sit on the finished response (drives client timeouts).
        std::thread::sleep(delay);
    }
    if shared.inject(Failpoint::WritePartial) {
        // Chaos: emit a torn response — a prefix with no newline — then
        // fail the connection. Clients must never parse this as a reply.
        let bytes = envelope.as_bytes();
        writer.write_all(&bytes[..bytes.len() / 2])?;
        writer.flush()?;
        return Err(std::io::Error::new(
            std::io::ErrorKind::ConnectionAborted,
            "chaos: injected partial write",
        ));
    }
    writeln!(writer, "{envelope}")?;
    Ok(matches!(request.query, Query::Shutdown))
}

/// Injected computation stalls: long enough to blow tight deadlines,
/// short enough to keep soak throughput alive.
const COMPUTE_DELAY_MIN: Duration = Duration::from_millis(20);
const COMPUTE_DELAY_MAX: Duration = Duration::from_millis(120);

/// Injected response stalls: sized to straddle typical client
/// per-attempt timeouts.
const WRITE_STALL_MIN: Duration = Duration::from_millis(50);
const WRITE_STALL_MAX: Duration = Duration::from_millis(400);
