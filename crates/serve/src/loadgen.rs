//! The load-generator harness (`osarch-loadgen`).
//!
//! Drives a running `osarch-serve` instance (or self-hosts one) with
//! concurrent closed- or open-loop connections over the full 7 × 4
//! architecture × primitive key space, under a uniform or hot-key-skewed
//! draw, and reports throughput plus client-observed latency percentiles
//! as an `osarch-serve-bench/2` document (`BENCH_serve.json`). Latency is
//! tallied into a log-linear [`Histogram`] per connection and merged
//! exactly, so the tail percentiles (through p99.9) survive any request
//! count, and the merged sparse buckets ship in the report's
//! `latency_hist` field for offline re-aggregation.
//!
//! * **closed loop** — each connection keeps exactly one request in
//!   flight: send, wait, repeat. Throughput is bounded by service latency.
//! * **open loop** — each connection fires on a fixed arrival schedule
//!   (`rate` requests/second); when a reply is late the next request goes
//!   out immediately afterwards, so sustained overload shows up as rising
//!   latency rather than reduced offered load.
//! * **pipelined** — selected automatically at connection scale (or with
//!   `--pipeline N > 1`): a small pool of driver threads multiplexes
//!   *all* the connections, batching `pipeline` requests per write and
//!   verifying the replies echo their ids back **in order**. This is the
//!   only way one client machine holds 10 000 connections against the
//!   event-driven server without 10 000 client threads.
//!
//! Every connection drives a [`ResilientClient`], so the report also
//! carries the resilience columns: retries, giveups, breaker transitions,
//! and per-error-class counts (timeout / conn_reset / server_error /
//! breaker_open). With `--faults P` the run self-hosts a fault-injected
//! server *and* injects client-side faults from the same deterministic
//! schedule — the harness half of the chaos soak.
//!
//! The skewed draw makes the single-flight cache's case: most requests
//! pile onto a few hot keys, so hit/coalesce counters dominate and
//! serving cost is the fixed per-request envelope, not the simulation.

use crate::client::{ClientConfig, ErrorClass, ResilientClient};
use crate::server::{ClusterConfig, Server, ServerConfig, ServerHandle};
use osarch_chaos::{ChaosConfig, ChaosController};
use osarch_core::metrics::{ClusterBenchReport, ResilienceCounters, ServeBenchReport};
use osarch_core::stats::LatencySummary;
use osarch_cpu::Arch;
use osarch_kernel::Primitive;
use osarch_telemetry::Histogram;
use rand::distributions::{Distribution, WeightedIndex};
use rand::rngs::StdRng;
use rand::SeedableRng;
use std::io::{BufRead, BufReader, BufWriter, Write};
use std::net::TcpStream;
use std::sync::Arc;
use std::time::{Duration, Instant};

/// Load-generator knobs.
#[derive(Debug, Clone)]
pub struct LoadgenConfig {
    /// Target server; `None` self-hosts one for the run.
    pub addr: Option<String>,
    /// Concurrent connections.
    pub conns: u32,
    /// Requests kept in flight per connection. `1` is strict
    /// request/reply; `>1` selects the multiplexed pipelined driver
    /// (as does a large `conns`), which batches this many requests per
    /// write and verifies the replies come back in order.
    pub pipeline: u32,
    /// Run duration in seconds.
    pub secs: f64,
    /// Hot-key-skewed draw instead of uniform.
    pub skew: bool,
    /// Open-loop arrival rate per connection (requests/second);
    /// `None` runs closed-loop.
    pub rate: Option<f64>,
    /// Worker threads for the self-hosted server.
    pub workers: usize,
    /// Cache shards for the self-hosted server.
    pub shards: usize,
    /// RNG seed; every connection derives its own deterministic stream,
    /// and the fault schedule (when `faults > 0`) derives from it too.
    pub seed: u64,
    /// Fault-injection probability per failpoint draw (0 disables).
    /// Requires self-hosting (`addr: None`) for the server-side half;
    /// client-side faults apply either way.
    pub faults: f64,
    /// Trace-sampling divisor for the self-hosted server (sample one
    /// request in `sample`; 0 disables tracing). Only meaningful with
    /// `addr: None`; used to measure telemetry overhead on vs off.
    pub sample: u64,
}

impl Default for LoadgenConfig {
    fn default() -> LoadgenConfig {
        LoadgenConfig {
            addr: None,
            conns: 4,
            pipeline: 1,
            secs: 3.0,
            skew: false,
            rate: None,
            workers: 4,
            shards: 16,
            seed: 0x05a1c,
            faults: 0.0,
            sample: 0,
        }
    }
}

/// The full measure key space: every architecture × primitive pair.
#[must_use]
pub fn key_space() -> Vec<(Arch, Primitive)> {
    let mut keys = Vec::with_capacity(Arch::COUNT * 4);
    for arch in Arch::all() {
        for primitive in Primitive::all() {
            keys.push((arch, primitive));
        }
    }
    keys
}

/// Per-connection tallies, merged after the run. Latencies go straight
/// into a log-linear histogram — bucket merge across connections is
/// exact, so the report's percentiles cover every reply, not a sample.
#[derive(Debug, Default)]
struct ConnResult {
    oks: u64,
    errors: u64,
    latency: Histogram,
    resilience: ResilienceCounters,
}

/// Counter values scraped from a `stats` reply.
#[derive(Debug, Default, Clone, Copy)]
struct CacheCounters {
    hits: u64,
    misses: u64,
    coalesced: u64,
}

/// Run the workload and report. Self-hosts a server when `config.addr`
/// is `None` (and shuts it down afterwards); with `config.faults > 0`
/// the self-hosted server runs under a deterministic fault schedule.
pub fn run(config: &LoadgenConfig) -> std::io::Result<ServeBenchReport> {
    let chaos = (config.faults > 0.0).then(|| {
        Arc::new(ChaosController::new(ChaosConfig {
            seed: config.seed,
            rate: config.faults,
            ..ChaosConfig::default()
        }))
    });
    // Injected panics are the faults working as intended — keep their
    // backtraces off stderr for the duration of a faulted run.
    let _quiet = chaos
        .as_ref()
        .map(|_| osarch_chaos::QuietChaosPanics::install());
    let mut hosted: Option<ServerHandle> = None;
    let addr = match &config.addr {
        Some(addr) => addr.clone(),
        None => {
            let handle = Server::start(&ServerConfig {
                workers: config.workers,
                shards: config.shards,
                // The queue must absorb every loadgen connection at once.
                queue_depth: (config.conns as usize * 2).max(64),
                chaos: chaos.clone(),
                sample_every: config.sample,
                telemetry_seed: config.seed,
                ..ServerConfig::default()
            })?;
            let addr = handle.addr().to_string();
            hosted = Some(handle);
            addr
        }
    };
    let result = drive(&addr, config, chaos.as_ref());
    if let Some(handle) = hosted {
        handle.stop();
    }
    result
}

fn drive(
    addr: &str,
    config: &LoadgenConfig,
    chaos: Option<&Arc<ChaosController>>,
) -> std::io::Result<ServeBenchReport> {
    let before = query_stats(addr)?;
    let duration = Duration::from_secs_f64(config.secs.max(0.1));
    let keys = key_space();
    let weights: Vec<u64> = if config.skew {
        // Harmonic (Zipf-like) weights: the hottest key draws ~25% of the
        // traffic, the tail thins as 1/rank.
        (0..keys.len())
            .map(|rank| 720 / (rank as u64 + 1))
            .collect()
    } else {
        vec![1; keys.len()]
    };
    let dist =
        WeightedIndex::new(weights.iter().copied()).expect("weights are positive by construction");

    let mux = config.pipeline > 1 || config.conns > MUX_THRESHOLD_CONNS;
    let started = Instant::now();
    let results: Vec<ConnResult>;
    let driver_threads: u32;
    if mux {
        let pipeline = config.pipeline.max(1) as usize;
        // Driver threads are I/O-bound — each one multiplexes hundreds
        // of blocking sockets — so the count follows the connection
        // load, not the core count. Sizing by `available_parallelism`
        // collapses to one thread on a single-core host, and one thread
        // dialing 10 000 sockets sequentially burns the whole window on
        // the ramp before a single round runs.
        let threads = (config.conns as usize)
            .div_ceil(MUX_CONNS_PER_THREAD)
            .clamp(1, MUX_MAX_THREADS);
        driver_threads = threads as u32;
        // Deal connections out across the driver threads; the remainder
        // lands on the first few.
        let base = config.conns as usize / threads;
        let extra = config.conns as usize % threads;
        results = std::thread::scope(|scope| {
            let handles: Vec<_> = (0..threads)
                .map(|thread| {
                    let dist = &dist;
                    let keys = &keys;
                    let conns = base + usize::from(thread < extra);
                    let seed =
                        config.seed ^ (thread as u64 + 1).wrapping_mul(0x9e37_79b9_7f4a_7c15);
                    scope.spawn(move || {
                        drive_mux_chunk(addr, seed, dist, keys, conns, pipeline, started + duration)
                    })
                })
                .collect();
            handles
                .into_iter()
                .map(|h| h.join().expect("loadgen driver thread panicked"))
                .collect()
        });
    } else {
        driver_threads = config.conns;
        results = std::thread::scope(|scope| {
            let handles: Vec<_> = (0..config.conns)
                .map(|conn| {
                    let dist = &dist;
                    let keys = &keys;
                    let chaos = chaos.cloned();
                    scope.spawn(move || {
                        drive_connection(
                            addr,
                            config.seed ^ (u64::from(conn) + 1).wrapping_mul(0x9e37_79b9_7f4a_7c15),
                            dist,
                            keys,
                            started + duration,
                            config.rate,
                            chaos,
                        )
                    })
                })
                .collect();
            handles
                .into_iter()
                .map(|h| h.join().expect("loadgen connection thread panicked"))
                .collect()
        });
    }
    let secs = started.elapsed().as_secs_f64();
    let after = query_stats(addr)?;

    let mut oks = 0u64;
    let mut errors = 0u64;
    let mut resilience = ResilienceCounters::default();
    let mut latency = Histogram::new();
    for conn in results {
        oks += conn.oks;
        errors += conn.errors;
        merge_resilience(&mut resilience, conn.resilience);
        latency.merge(&conn.latency);
    }
    Ok(ServeBenchReport {
        workload: if config.skew { "skewed" } else { "uniform" }.to_string(),
        mode: if mux {
            "pipelined"
        } else if config.rate.is_some() {
            "open"
        } else {
            "closed"
        }
        .to_string(),
        conns: config.conns,
        pipeline_depth: config.pipeline.max(1),
        driver_threads,
        workers: config.workers as u32,
        shards: config.shards as u32,
        secs,
        requests: oks,
        errors,
        throughput_rps: if secs > 0.0 { oks as f64 / secs } else { 0.0 },
        latency: LatencySummary::from_histogram(&latency),
        latency_hist: latency.sparse(),
        hits: after.hits.saturating_sub(before.hits),
        misses: after.misses.saturating_sub(before.misses),
        coalesced: after.coalesced.saturating_sub(before.coalesced),
        resilience,
    })
}

fn merge_resilience(total: &mut ResilienceCounters, conn: ResilienceCounters) {
    total.retries += conn.retries;
    total.giveups += conn.giveups;
    total.breaker_opens += conn.breaker_opens;
    total.degraded += conn.degraded;
    total.timeouts += conn.timeouts;
    total.conn_resets += conn.conn_resets;
    total.server_errors += conn.server_errors;
    total.breaker_open += conn.breaker_open;
    total.corrupt += conn.corrupt;
}

/// Above this many connections the thread-per-connection driver would
/// need an absurd thread count; the multiplexed driver takes over.
const MUX_THRESHOLD_CONNS: u32 = 256;

/// Driver-thread ceiling for the multiplexed driver.
const MUX_MAX_THREADS: usize = 32;

/// Connections one multiplexed driver thread is asked to carry before
/// another thread is added (up to [`MUX_MAX_THREADS`]).
const MUX_CONNS_PER_THREAD: usize = 512;

/// One multiplexed connection: a buffered reader over the socket (writes
/// go straight through `get_mut`) plus its id counter.
struct MuxConn {
    reader: BufReader<TcpStream>,
    next_id: u64,
}

/// Connect with retries until `deadline`: a connection storm overflows
/// the listener backlog, and the kernel answers some SYNs late or with a
/// reset — retrying is part of holding N connections open, not cheating.
fn connect_with_retry(addr: &str, deadline: Instant) -> Option<MuxConn> {
    loop {
        match TcpStream::connect(addr) {
            Ok(stream) => {
                let _ = stream.set_nodelay(true);
                let _ = stream.set_read_timeout(Some(Duration::from_secs(10)));
                return Some(MuxConn {
                    reader: BufReader::new(stream),
                    next_id: 0,
                });
            }
            Err(_) if Instant::now() < deadline => {
                std::thread::sleep(Duration::from_millis(2));
            }
            Err(_) => return None,
        }
    }
}

/// One driver thread's multiplexed loop over `conns` sockets: each round
/// writes a batch of `pipeline` requests to *every* socket (so the whole
/// chunk is in flight at once), then reads each socket's replies back
/// and checks the ids echo **in order** — a reply out of order or
/// unparseable counts as client-visible corruption. Latency is recorded
/// per reply at batch granularity: the round-trip of the batch it rode
/// in, which is the figure a pipelining client actually experiences.
fn drive_mux_chunk(
    addr: &str,
    seed: u64,
    dist: &WeightedIndex<u64>,
    keys: &[(Arch, Primitive)],
    conns: usize,
    pipeline: usize,
    stop_at: Instant,
) -> ConnResult {
    drive_mux_paced(addr, seed, dist, keys, conns, pipeline, stop_at, None)
}

/// [`drive_mux_chunk`] with an optional open-loop round schedule: with
/// `pace = Some(interval)` each round of `conns × pipeline` requests
/// fires on a fixed arrival clock (late rounds fire immediately, no
/// schedule reset), so the offered load is a property of the config
/// rather than of how fast the host happens to be. The cluster bench
/// uses this for its weak-scaling measurement.
#[allow(clippy::too_many_arguments)]
fn drive_mux_paced(
    addr: &str,
    seed: u64,
    dist: &WeightedIndex<u64>,
    keys: &[(Arch, Primitive)],
    conns: usize,
    pipeline: usize,
    stop_at: Instant,
    pace: Option<Duration>,
) -> ConnResult {
    let mut rng = StdRng::seed_from_u64(seed);
    let mut result = ConnResult::default();
    let connect_deadline = Instant::now() + Duration::from_secs(30);
    let mut socks: Vec<Option<MuxConn>> = (0..conns)
        .map(|_| connect_with_retry(addr, connect_deadline.min(stop_at)))
        .collect();
    let mut line = String::new();
    let mut batch = String::new();
    let mut sent: Vec<(u64, Instant)> = Vec::with_capacity(conns);
    let mut next_round = Instant::now();
    while Instant::now() < stop_at {
        if let Some(interval) = pace {
            let now = Instant::now();
            if next_round > now {
                std::thread::sleep(next_round - now);
            }
            next_round += interval;
            if Instant::now() >= stop_at {
                break;
            }
        }
        // Write phase: put a batch in flight on every live socket.
        sent.clear();
        for sock in &mut socks {
            let Some(conn) = sock else {
                sent.push((0, Instant::now()));
                continue;
            };
            batch.clear();
            let first_id = conn.next_id + 1;
            for _ in 0..pipeline {
                conn.next_id += 1;
                let (arch, primitive) = keys[dist.sample(&mut rng)];
                batch.push_str(&format!(
                    "{{\"op\":\"measure\",\"arch\":\"{arch}\",\"primitive\":\"{}\",\"id\":{}}}\n",
                    primitive.tag(),
                    conn.next_id
                ));
            }
            let when = Instant::now();
            if conn.reader.get_mut().write_all(batch.as_bytes()).is_err() {
                result.errors += 1;
                *sock = None;
            }
            sent.push((first_id, when));
        }
        // Read phase: collect every batch, verifying order as we go.
        for (index, sock) in socks.iter_mut().enumerate() {
            let Some(conn) = sock.as_mut() else { continue };
            let (first_id, when) = sent[index];
            for offset in 0..pipeline {
                line.clear();
                match conn.reader.read_line(&mut line) {
                    Ok(0) | Err(_) => {
                        result.errors += 1;
                        *sock = None;
                        break;
                    }
                    Ok(_) => {
                        let id_token = format!("\"id\":{},", first_id + offset as u64);
                        if !line.contains(&id_token) {
                            result.resilience.corrupt += 1;
                            result.errors += 1;
                            *sock = None;
                            break;
                        }
                        if line.contains("\"ok\":true") {
                            result.oks += 1;
                            result.latency.record(when.elapsed().as_micros() as u64);
                        } else {
                            result.errors += 1;
                            result.resilience.server_errors += 1;
                        }
                    }
                }
            }
        }
        // A socket lost mid-run is re-dialed once per round, so a
        // transient reset does not silently thin the connection count.
        if Instant::now() < stop_at {
            for sock in &mut socks {
                if sock.is_none() {
                    *sock = connect_with_retry(addr, Instant::now());
                }
            }
        }
    }
    result
}

/// One connection's request loop, through the resilient client.
fn drive_connection(
    addr: &str,
    seed: u64,
    dist: &WeightedIndex<u64>,
    keys: &[(Arch, Primitive)],
    stop_at: Instant,
    rate: Option<f64>,
    chaos: Option<Arc<ChaosController>>,
) -> ConnResult {
    let faulty = chaos.is_some();
    let mut client = ResilientClient::new(
        addr,
        ClientConfig {
            seed,
            // Full JSON validation per reply only under fault injection;
            // the clean benchmark path stays cheap.
            validate_replies: faulty,
            attempt_timeout: if faulty {
                Duration::from_millis(500)
            } else {
                Duration::from_secs(30)
            },
            ..ClientConfig::default()
        },
    );
    if let Some(chaos) = chaos {
        client = client.with_chaos(chaos);
    }
    let mut rng = StdRng::seed_from_u64(seed);
    let mut result = ConnResult::default();
    let interval = rate.map(|r| Duration::from_secs_f64(1.0 / r.max(0.001)));
    let mut next_arrival = Instant::now();
    let mut request_id = 0u64;
    while Instant::now() < stop_at {
        if let Some(interval) = interval {
            // Open loop: hold to the arrival schedule; a late reply means
            // the next request fires immediately (no schedule reset).
            let now = Instant::now();
            if next_arrival > now {
                std::thread::sleep(next_arrival - now);
            }
            next_arrival += interval;
            if Instant::now() >= stop_at {
                break;
            }
        }
        let (arch, primitive) = keys[dist.sample(&mut rng)];
        request_id += 1;
        let id_token = request_id.to_string();
        let line = format!(
            "{{\"op\":\"measure\",\"arch\":\"{arch}\",\"primitive\":\"{}\",\"id\":{id_token}}}",
            primitive.tag()
        );
        let sent = Instant::now();
        match client.call(&line, &id_token) {
            Ok(_) => {
                result.oks += 1;
                result.latency.record(sent.elapsed().as_micros() as u64);
            }
            Err(error) => {
                result.errors += 1;
                // Without faults, a clean shutdown or backpressure close
                // reads as conn_reset: stop instead of hammering retries.
                if !faulty && error.class != ErrorClass::ServerError {
                    break;
                }
            }
        }
    }
    let c = client.counters();
    result.resilience = ResilienceCounters {
        retries: c.retries,
        giveups: c.giveups,
        breaker_opens: c.breaker_opens,
        degraded: c.degraded,
        timeouts: c.timeouts,
        conn_resets: c.conn_resets,
        server_errors: c.server_errors,
        breaker_open: c.breaker_shed,
        corrupt: c.corrupt,
    };
    result
}

/// Issue one out-of-band `stats` query on a fresh connection.
fn query_stats(addr: &str) -> std::io::Result<CacheCounters> {
    let stream = TcpStream::connect(addr)?;
    stream.set_read_timeout(Some(Duration::from_secs(10)))?;
    let mut reader = BufReader::new(stream.try_clone()?);
    let mut writer = BufWriter::new(stream);
    writeln!(writer, "{{\"op\":\"stats\"}}")?;
    writer.flush()?;
    let mut reply = String::new();
    reader.read_line(&mut reply)?;
    Ok(CacheCounters {
        hits: extract_counter(&reply, "cache_hits"),
        misses: extract_counter(&reply, "cache_misses"),
        coalesced: extract_counter(&reply, "cache_coalesced"),
    })
}

/// Scrape one named counter value out of a `stats` reply. The counters
/// array is the deterministic `counters_json` format, so a plain
/// substring scan is reliable without a JSON parser.
fn extract_counter(reply: &str, name: &str) -> u64 {
    let needle = format!("\"name\":\"{name}\",\"value\":");
    reply
        .find(&needle)
        .and_then(|at| {
            let digits: String = reply[at + needle.len()..]
                .chars()
                .take_while(char::is_ascii_digit)
                .collect();
            digits.parse().ok()
        })
        .unwrap_or(0)
}

// ---------------------------------------------------------------------------
// Cluster bench: 3-node aggregate vs single-node baseline
// ---------------------------------------------------------------------------

/// Cluster bench knobs (`osarch loadgen --cluster`).
#[derive(Debug, Clone)]
pub struct ClusterLoadConfig {
    /// Nodes in the ring.
    pub nodes: usize,
    /// Replication factor R.
    pub replicas: usize,
    /// Pipelined connections per node (the baseline node gets the same
    /// per-node count from every driver thread, so the client side is
    /// identical across the two runs).
    pub conns_per_node: u32,
    /// Requests batched per write on each connection.
    pub pipeline: u32,
    /// Seconds per run (baseline and clustered each).
    pub secs: f64,
    /// Hot-key-skewed draw instead of uniform.
    pub skew: bool,
    /// RNG seed for every driver thread's deterministic stream.
    pub seed: u64,
    /// Event-loop workers per node — the baseline node gets the same
    /// count, so the comparison is N nodes vs one node of equal size.
    pub workers_per_node: usize,
    /// Cache shards per node.
    pub shards: usize,
    /// Offered load per node in requests/second (weak scaling: the
    /// baseline single node is offered this rate, the N-node ring is
    /// offered N× it). `0` drops the pacing and lets every driver run
    /// closed-loop flat out — only meaningful when the host has enough
    /// cores for N nodes to actually run in parallel.
    pub node_rate: f64,
}

impl Default for ClusterLoadConfig {
    fn default() -> ClusterLoadConfig {
        ClusterLoadConfig {
            nodes: 3,
            replicas: 2,
            conns_per_node: 16,
            pipeline: 8,
            secs: 2.0,
            skew: false,
            seed: 0x05a1c,
            workers_per_node: 1,
            shards: 16,
            node_rate: 30_000.0,
        }
    }
}

/// One driver thread's workload: the keys it may draw plus the skew
/// distribution over them (weights follow each key's *global* rank).
type KeySlice = (Vec<(Arch, Primitive)>, WeightedIndex<u64>);

/// Harmonic (Zipf-like) weight by *global* key rank, so the hot keys
/// stay hot whether a driver sees the full key space or one node's
/// replica slice.
fn rank_weights(ranks: &[usize], skew: bool) -> Vec<u64> {
    if skew {
        ranks.iter().map(|rank| 720 / (*rank as u64 + 1)).collect()
    } else {
        vec![1; ranks.len()]
    }
}

/// One measurement: `threads` driver threads, each multiplexing
/// `conns` pipelined sockets against `addr` over its own key slice.
/// Returns the merged tallies and the measured wall-clock seconds.
fn mux_fanout(
    addr: &str,
    seed: u64,
    slices: &[KeySlice],
    conns: usize,
    pipeline: usize,
    duration: Duration,
    pace: Option<Duration>,
) -> (ConnResult, f64) {
    let started = Instant::now();
    let stop_at = started + duration;
    let results: Vec<ConnResult> = std::thread::scope(|scope| {
        let handles: Vec<_> = slices
            .iter()
            .enumerate()
            .map(|(thread, (keys, dist))| {
                let seed = seed ^ (thread as u64 + 1).wrapping_mul(0x9e37_79b9_7f4a_7c15);
                scope.spawn(move || {
                    drive_mux_paced(addr, seed, dist, keys, conns, pipeline, stop_at, pace)
                })
            })
            .collect();
        handles
            .into_iter()
            .map(|h| h.join().expect("cluster bench driver thread panicked"))
            .collect()
    });
    let secs = started.elapsed().as_secs_f64();
    let mut merged = ConnResult::default();
    for conn in results {
        merged.oks += conn.oks;
        merged.errors += conn.errors;
        merged.latency.merge(&conn.latency);
        merge_resilience(&mut merged.resilience, conn.resilience);
    }
    (merged, secs)
}

/// Run the cluster benchmark: first a single-node baseline, then an
/// N-node ring on the same workload, both self-hosted. The clustered
/// run is shard-routed — each node's drivers draw only keys that node
/// replicates, the batched equivalent of [`crate::ClusterClient`]
/// routing — so the aggregate measures N nodes serving locally, which
/// is what the ring buys over one node of the same size.
///
/// The measurement is **weak scaling**: with `node_rate > 0` (the
/// default) every node is offered a fixed per-node load, so the
/// baseline single node is offered `node_rate` and the ring is offered
/// `nodes × node_rate`. `speedup` then reports how much of the N×
/// offered load the ring actually sustains relative to the single node
/// — the scale-out claim — and stays meaningful on hosts (CI runners)
/// without a core per node, where raw closed-loop saturation would
/// only measure the shared CPU. `node_rate = 0` reverts to closed-loop
/// saturation on both sides.
pub fn run_cluster_bench(config: &ClusterLoadConfig) -> std::io::Result<ClusterBenchReport> {
    let nodes = config.nodes.max(2);
    let keys = key_space();
    let duration = Duration::from_secs_f64(config.secs.max(0.5));
    // One driver thread per node in both runs; a thread's round pace is
    // its share of the offered load, in rounds of conns × pipeline.
    let round_requests = config.conns_per_node as f64 * f64::from(config.pipeline.max(1));
    let pace_per_thread = |threads: f64, offered: f64| -> Option<Duration> {
        (offered > 0.0).then(|| Duration::from_secs_f64(round_requests * threads / offered))
    };
    // Baseline: `nodes` driver threads share one node offered
    // `node_rate`; clustered: each node's single thread offers
    // `node_rate` to its own node.
    let baseline_pace = pace_per_thread(nodes as f64, config.node_rate);
    let cluster_pace = pace_per_thread(1.0, config.node_rate);
    let node_config = |addr: Option<(&[String], usize)>| ServerConfig {
        addr: addr.map_or_else(|| "127.0.0.1:0".to_string(), |(addrs, i)| addrs[i].clone()),
        workers: config.workers_per_node,
        shards: config.shards,
        queue_depth: (config.conns_per_node as usize * 2 * nodes).max(64),
        cluster: addr.map(|(addrs, i)| ClusterConfig {
            self_addr: addrs[i].clone(),
            peers: addrs.to_vec(),
            replicas: config.replicas,
            ..ClusterConfig::default()
        }),
        ..ServerConfig::default()
    };

    // Baseline: one node of the same size takes the whole key space
    // from the same number of driver threads and connections.
    let baseline_handle = Server::start(&node_config(None))?;
    let baseline_addr = baseline_handle.addr().to_string();
    let full_ranks: Vec<usize> = (0..keys.len()).collect();
    let full_dist = WeightedIndex::new(rank_weights(&full_ranks, config.skew))
        .expect("weights are positive by construction");
    let baseline_slices: Vec<KeySlice> = (0..nodes)
        .map(|_| (keys.clone(), full_dist.clone()))
        .collect();
    let (baseline, baseline_secs) = mux_fanout(
        &baseline_addr,
        config.seed,
        &baseline_slices,
        config.conns_per_node as usize,
        config.pipeline.max(1) as usize,
        duration,
        baseline_pace,
    );
    baseline_handle.stop();
    let baseline_rps = if baseline_secs > 0.0 {
        baseline.oks as f64 / baseline_secs
    } else {
        0.0
    };

    // Clustered run: reserve every address first (nodes need the full
    // peer list up front), start the ring, then give each node's driver
    // thread the slice of keys that node replicates.
    let addrs = {
        let listeners: Vec<std::net::TcpListener> = (0..nodes)
            .map(|_| std::net::TcpListener::bind("127.0.0.1:0"))
            .collect::<std::io::Result<_>>()?;
        listeners
            .iter()
            .map(|l| Ok(format!("127.0.0.1:{}", l.local_addr()?.port())))
            .collect::<std::io::Result<Vec<String>>>()?
    };
    let handles: Vec<ServerHandle> = (0..nodes)
        .map(|index| Server::start(&node_config(Some((&addrs, index)))))
        .collect::<std::io::Result<_>>()?;
    let ring = osarch_cluster::Ring::new(&addrs, osarch_cluster::DEFAULT_VNODES);
    let slices: Vec<KeySlice> = addrs
        .iter()
        .map(|addr| {
            let mut ranks = Vec::new();
            let slice: Vec<(Arch, Primitive)> = keys
                .iter()
                .enumerate()
                .filter(|(rank, (arch, primitive))| {
                    let key = format!("measure/{arch}/{}", primitive.tag());
                    let mine = ring
                        .replicas(&key, config.replicas)
                        .iter()
                        .any(|replica| replica == addr);
                    if mine {
                        ranks.push(*rank);
                    }
                    mine
                })
                .map(|(_, pair)| *pair)
                .collect();
            let dist = WeightedIndex::new(rank_weights(&ranks, config.skew))
                .expect("every node replicates at least one key");
            (slice, dist)
        })
        .collect();

    // One driver thread per node; per-node tallies come from the
    // thread that drove that node.
    let started = Instant::now();
    let stop_at = started + duration;
    let per_thread: Vec<ConnResult> = std::thread::scope(|scope| {
        let handles: Vec<_> = addrs
            .iter()
            .zip(&slices)
            .enumerate()
            .map(|(thread, (addr, (slice, dist)))| {
                let seed = config.seed ^ (thread as u64 + 1).wrapping_mul(0x9e37_79b9_7f4a_7c15);
                let conns = config.conns_per_node as usize;
                let pipeline = config.pipeline.max(1) as usize;
                scope.spawn(move || {
                    drive_mux_paced(
                        addr,
                        seed,
                        dist,
                        slice,
                        conns,
                        pipeline,
                        stop_at,
                        cluster_pace,
                    )
                })
            })
            .collect();
        handles
            .into_iter()
            .map(|h| h.join().expect("cluster bench driver thread panicked"))
            .collect()
    });
    let secs = started.elapsed().as_secs_f64();
    for handle in handles {
        handle.stop();
    }

    let mut requests = 0u64;
    let mut errors = 0u64;
    let mut corrupt = 0u64;
    let mut latency = Histogram::new();
    let mut per_node = Vec::with_capacity(nodes);
    for (addr, result) in addrs.iter().zip(&per_thread) {
        requests += result.oks;
        errors += result.errors;
        corrupt += result.resilience.corrupt;
        latency.merge(&result.latency);
        per_node.push((addr.clone(), result.oks));
    }
    let throughput_rps = if secs > 0.0 {
        requests as f64 / secs
    } else {
        0.0
    };
    Ok(ClusterBenchReport {
        workload: if config.skew { "skewed" } else { "uniform" }.to_string(),
        nodes: nodes as u32,
        replicas: config.replicas as u32,
        conns_per_node: config.conns_per_node,
        pipeline_depth: config.pipeline.max(1),
        secs,
        requests,
        errors,
        corrupt,
        throughput_rps,
        baseline_rps,
        speedup: if baseline_rps > 0.0 {
            throughput_rps / baseline_rps
        } else {
            0.0
        },
        latency: LatencySummary::from_histogram(&latency),
        per_node,
    })
}

/// Refuse to clobber a bench artifact whose schema version predates the
/// current one unless forced: a stale document is evidence of the old
/// format until someone explicitly chooses to regenerate it.
fn schema_overwrite_guard(path: &str, schema: &str, force: bool) -> Result<(), String> {
    if force || path == "-" {
        return Ok(());
    }
    let Some((family, current)) = schema.rsplit_once('/') else {
        return Ok(());
    };
    let Ok(current) = current.parse::<u32>() else {
        return Ok(());
    };
    let Ok(existing) = std::fs::read_to_string(path) else {
        return Ok(()); // absent or unreadable: nothing to protect
    };
    let needle = format!("\"schema\":\"{family}/");
    let Some(at) = existing.find(&needle) else {
        return Ok(());
    };
    let digits: String = existing[at + needle.len()..]
        .chars()
        .take_while(char::is_ascii_digit)
        .collect();
    match digits.parse::<u32>() {
        Ok(version) if version < current => Err(format!(
            "{path} holds an older {family}/{version} document (current is /{current}); \
             pass --force to overwrite it"
        )),
        _ => Ok(()),
    }
}

/// The shared `osarch loadgen` / `osarch-loadgen` front end: parse
/// `args`, run the workload, write the `BENCH_serve.json` report.
/// `Err` carries a one-line usage error (exit 2 at the caller).
pub fn cli(args: &[String], prog: &str) -> Result<std::process::ExitCode, String> {
    use std::process::ExitCode;
    let mut config = LoadgenConfig::default();
    let mut out: Option<String> = None;
    let mut force = false;
    let mut cluster = false;
    let mut conns_flag: Option<u32> = None;
    let mut pipeline_flag: Option<u32> = None;
    let mut cluster_config = ClusterLoadConfig::default();
    let mut rest = args.iter();
    let parse = |flag: &str, value: Option<&String>| -> Result<String, String> {
        value
            .cloned()
            .ok_or_else(|| format!("{flag} requires a value"))
    };
    while let Some(arg) = rest.next() {
        match arg.as_str() {
            "--addr" => config.addr = Some(parse("--addr", rest.next())?),
            "--conns" => {
                config.conns = parse("--conns", rest.next())?
                    .parse()
                    .map_err(|_| "--conns expects a positive integer".to_string())?;
                conns_flag = Some(config.conns);
            }
            "--pipeline" => {
                config.pipeline = parse("--pipeline", rest.next())?
                    .parse()
                    .map_err(|_| "--pipeline expects a positive integer".to_string())?;
                if config.pipeline == 0 {
                    return Err("--pipeline must be at least 1".to_string());
                }
                pipeline_flag = Some(config.pipeline);
            }
            "--secs" => {
                config.secs = parse("--secs", rest.next())?
                    .parse()
                    .map_err(|_| "--secs expects a number of seconds".to_string())?;
            }
            "--skew" => config.skew = true,
            "--rate" => {
                config.rate = Some(
                    parse("--rate", rest.next())?
                        .parse()
                        .map_err(|_| "--rate expects requests/second".to_string())?,
                );
            }
            "--workers" => {
                config.workers = parse("--workers", rest.next())?
                    .parse()
                    .map_err(|_| "--workers expects a positive integer".to_string())?;
            }
            "--shards" => {
                config.shards = parse("--shards", rest.next())?
                    .parse()
                    .map_err(|_| "--shards expects a positive integer".to_string())?;
            }
            "--seed" => {
                config.seed = parse("--seed", rest.next())?
                    .parse()
                    .map_err(|_| "--seed expects an integer".to_string())?;
            }
            "--faults" => {
                config.faults = parse("--faults", rest.next())?
                    .parse()
                    .map_err(|_| "--faults expects a probability in [0,1]".to_string())?;
                if !(0.0..=1.0).contains(&config.faults) {
                    return Err("--faults expects a probability in [0,1]".to_string());
                }
            }
            "--sample" => {
                config.sample = parse("--sample", rest.next())?
                    .parse()
                    .map_err(|_| "--sample expects an integer divisor (0 disables)".to_string())?;
            }
            "--out" => out = Some(parse("--out", rest.next())?),
            "--force" => force = true,
            "--cluster" => cluster = true,
            "--nodes" => {
                cluster_config.nodes = parse("--nodes", rest.next())?
                    .parse()
                    .map_err(|_| "--nodes expects a positive integer".to_string())?;
                if cluster_config.nodes < 2 {
                    return Err("--nodes must be at least 2".to_string());
                }
            }
            "--replicas" => {
                cluster_config.replicas = parse("--replicas", rest.next())?
                    .parse()
                    .map_err(|_| "--replicas expects a positive integer".to_string())?;
                if cluster_config.replicas == 0 {
                    return Err("--replicas must be at least 1".to_string());
                }
            }
            "--node-rate" => {
                cluster_config.node_rate = parse("--node-rate", rest.next())?
                    .parse()
                    .map_err(|_| "--node-rate expects requests/second (0 unpaces)".to_string())?;
                if cluster_config.node_rate < 0.0 {
                    return Err("--node-rate expects requests/second (0 unpaces)".to_string());
                }
            }
            other => {
                return Err(format!(
                    "unknown argument {other:?}\nusage: {prog} [--addr HOST:PORT] [--conns N] \
                     [--pipeline N] [--secs S] [--skew] [--rate R] [--workers N] [--shards N] \
                     [--seed N] [--faults P] [--sample N] [--out PATH] [--force] \
                     [--cluster [--nodes N] [--replicas R] [--node-rate RPS]]"
                ))
            }
        }
    }
    if config.conns == 0 {
        return Err("--conns must be at least 1".to_string());
    }
    if cluster {
        cluster_config.seed = config.seed;
        cluster_config.secs = config.secs;
        cluster_config.skew = config.skew;
        if let Some(conns) = conns_flag {
            cluster_config.conns_per_node = conns;
        }
        if let Some(pipeline) = pipeline_flag {
            cluster_config.pipeline = pipeline;
        }
        let out = out.unwrap_or_else(|| "BENCH_cluster.json".to_string());
        return cluster_bench_cli(&cluster_config, &out, force);
    }
    let out = out.unwrap_or_else(|| "BENCH_serve.json".to_string());
    if let Err(reason) =
        schema_overwrite_guard(&out, osarch_core::metrics::SERVE_BENCH_SCHEMA, force)
    {
        eprintln!("{reason}");
        return Ok(ExitCode::FAILURE);
    }
    let report = match run(&config) {
        Ok(report) => report,
        Err(err) => {
            eprintln!("loadgen failed: {err}");
            return Ok(ExitCode::FAILURE);
        }
    };
    let doc = osarch_core::metrics::serve_bench_json(&report);
    if let Err(reason) = osarch_core::metrics::validate_serve_bench(&doc) {
        eprintln!("internal error: bench JSON rejected: {reason}");
        return Ok(ExitCode::FAILURE);
    }
    if out == "-" {
        print!("{doc}");
    } else {
        if let Err(err) = std::fs::write(&out, &doc) {
            eprintln!("cannot write {out}: {err}");
            return Ok(ExitCode::FAILURE);
        }
        eprintln!(
            "wrote {out}: {} requests in {:.2}s ({:.0} req/s, p50 {} us, p99 {} us, \
             {} hits / {} misses / {} coalesced)",
            report.requests,
            report.secs,
            report.throughput_rps,
            report.latency.p50,
            report.latency.p99,
            report.hits,
            report.misses,
            report.coalesced
        );
        if config.faults > 0.0 {
            let r = &report.resilience;
            eprintln!(
                "resilience: {} retries, {} giveups, {} breaker opens, {} degraded, \
                 classes timeout={} conn_reset={} server_error={} breaker_open={}",
                r.retries,
                r.giveups,
                r.breaker_opens,
                r.degraded,
                r.timeouts,
                r.conn_resets,
                r.server_errors,
                r.breaker_open
            );
        }
    }
    if report.resilience.corrupt > 0 {
        eprintln!(
            "CORRUPTION: {} replies failed verification",
            report.resilience.corrupt
        );
        return Ok(ExitCode::FAILURE);
    }
    if report.requests == 0 {
        eprintln!("no requests completed: the server made no progress");
        return Ok(ExitCode::FAILURE);
    }
    Ok(ExitCode::SUCCESS)
}

/// The `osarch loadgen --cluster` back half: run the baseline + ring
/// benchmark, validate and write `BENCH_cluster.json`.
fn cluster_bench_cli(
    config: &ClusterLoadConfig,
    out: &str,
    force: bool,
) -> Result<std::process::ExitCode, String> {
    use std::process::ExitCode;
    if let Err(reason) =
        schema_overwrite_guard(out, osarch_core::metrics::CLUSTER_BENCH_SCHEMA, force)
    {
        eprintln!("{reason}");
        return Ok(ExitCode::FAILURE);
    }
    let report = match run_cluster_bench(config) {
        Ok(report) => report,
        Err(err) => {
            eprintln!("cluster bench failed: {err}");
            return Ok(ExitCode::FAILURE);
        }
    };
    let doc = osarch_core::metrics::cluster_bench_json(&report);
    if let Err(reason) = osarch_core::metrics::validate_cluster_bench(&doc) {
        eprintln!("internal error: cluster bench JSON rejected: {reason}");
        return Ok(ExitCode::FAILURE);
    }
    if out == "-" {
        print!("{doc}");
    } else {
        if let Err(err) = std::fs::write(out, &doc) {
            eprintln!("cannot write {out}: {err}");
            return Ok(ExitCode::FAILURE);
        }
        eprintln!(
            "wrote {out}: {} nodes (R={}) {:.0} req/s aggregate vs {:.0} req/s \
             single-node baseline — speedup {:.2}x (p50 {} us, p99 {} us)",
            report.nodes,
            report.replicas,
            report.throughput_rps,
            report.baseline_rps,
            report.speedup,
            report.latency.p50,
            report.latency.p99
        );
    }
    if report.corrupt > 0 {
        eprintln!("CORRUPTION: {} replies failed verification", report.corrupt);
        return Ok(ExitCode::FAILURE);
    }
    if report.requests == 0 {
        eprintln!("no requests completed: the cluster made no progress");
        return Ok(ExitCode::FAILURE);
    }
    Ok(ExitCode::SUCCESS)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn key_space_covers_every_pair() {
        let keys = key_space();
        assert_eq!(keys.len(), 28);
        let mut unique = keys.clone();
        unique.sort_by_key(|(a, p)| (a.index(), p.tag()));
        unique.dedup();
        assert_eq!(unique.len(), 28);
    }

    #[test]
    fn counter_extraction_reads_the_stats_shape() {
        let reply = "{\"counters\":[{\"arch\":\"serve\",\"primitive\":\"request\",\
                     \"phase\":\"total\",\"name\":\"cache_hits\",\"value\":41},\
                     {\"name\":\"cache_misses\",\"value\":7}]}";
        assert_eq!(extract_counter(reply, "cache_hits"), 41);
        assert_eq!(extract_counter(reply, "cache_misses"), 7);
        assert_eq!(extract_counter(reply, "absent"), 0);
    }
}
