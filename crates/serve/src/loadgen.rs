//! The load-generator harness (`osarch-loadgen`).
//!
//! Drives a running `osarch-serve` instance (or self-hosts one) with
//! concurrent closed- or open-loop connections over the full 7 × 4
//! architecture × primitive key space, under a uniform or hot-key-skewed
//! draw, and reports throughput plus client-observed latency percentiles
//! as an `osarch-serve-bench/2` document (`BENCH_serve.json`). Latency is
//! tallied into a log-linear [`Histogram`] per connection and merged
//! exactly, so the tail percentiles (through p99.9) survive any request
//! count, and the merged sparse buckets ship in the report's
//! `latency_hist` field for offline re-aggregation.
//!
//! * **closed loop** — each connection keeps exactly one request in
//!   flight: send, wait, repeat. Throughput is bounded by service latency.
//! * **open loop** — each connection fires on a fixed arrival schedule
//!   (`rate` requests/second); when a reply is late the next request goes
//!   out immediately afterwards, so sustained overload shows up as rising
//!   latency rather than reduced offered load.
//! * **pipelined** — selected automatically at connection scale (or with
//!   `--pipeline N > 1`): a small pool of driver threads multiplexes
//!   *all* the connections, batching `pipeline` requests per write and
//!   verifying the replies echo their ids back **in order**. This is the
//!   only way one client machine holds 10 000 connections against the
//!   event-driven server without 10 000 client threads.
//!
//! Every connection drives a [`ResilientClient`], so the report also
//! carries the resilience columns: retries, giveups, breaker transitions,
//! and per-error-class counts (timeout / conn_reset / server_error /
//! breaker_open). With `--faults P` the run self-hosts a fault-injected
//! server *and* injects client-side faults from the same deterministic
//! schedule — the harness half of the chaos soak.
//!
//! The skewed draw makes the single-flight cache's case: most requests
//! pile onto a few hot keys, so hit/coalesce counters dominate and
//! serving cost is the fixed per-request envelope, not the simulation.

use crate::client::{ClientConfig, ErrorClass, ResilientClient};
use crate::server::{Server, ServerConfig, ServerHandle};
use osarch_chaos::{ChaosConfig, ChaosController};
use osarch_core::metrics::{ResilienceCounters, ServeBenchReport};
use osarch_core::stats::LatencySummary;
use osarch_cpu::Arch;
use osarch_kernel::Primitive;
use osarch_telemetry::Histogram;
use rand::distributions::{Distribution, WeightedIndex};
use rand::rngs::StdRng;
use rand::SeedableRng;
use std::io::{BufRead, BufReader, BufWriter, Write};
use std::net::TcpStream;
use std::sync::Arc;
use std::time::{Duration, Instant};

/// Load-generator knobs.
#[derive(Debug, Clone)]
pub struct LoadgenConfig {
    /// Target server; `None` self-hosts one for the run.
    pub addr: Option<String>,
    /// Concurrent connections.
    pub conns: u32,
    /// Requests kept in flight per connection. `1` is strict
    /// request/reply; `>1` selects the multiplexed pipelined driver
    /// (as does a large `conns`), which batches this many requests per
    /// write and verifies the replies come back in order.
    pub pipeline: u32,
    /// Run duration in seconds.
    pub secs: f64,
    /// Hot-key-skewed draw instead of uniform.
    pub skew: bool,
    /// Open-loop arrival rate per connection (requests/second);
    /// `None` runs closed-loop.
    pub rate: Option<f64>,
    /// Worker threads for the self-hosted server.
    pub workers: usize,
    /// Cache shards for the self-hosted server.
    pub shards: usize,
    /// RNG seed; every connection derives its own deterministic stream,
    /// and the fault schedule (when `faults > 0`) derives from it too.
    pub seed: u64,
    /// Fault-injection probability per failpoint draw (0 disables).
    /// Requires self-hosting (`addr: None`) for the server-side half;
    /// client-side faults apply either way.
    pub faults: f64,
    /// Trace-sampling divisor for the self-hosted server (sample one
    /// request in `sample`; 0 disables tracing). Only meaningful with
    /// `addr: None`; used to measure telemetry overhead on vs off.
    pub sample: u64,
}

impl Default for LoadgenConfig {
    fn default() -> LoadgenConfig {
        LoadgenConfig {
            addr: None,
            conns: 4,
            pipeline: 1,
            secs: 3.0,
            skew: false,
            rate: None,
            workers: 4,
            shards: 16,
            seed: 0x05a1c,
            faults: 0.0,
            sample: 0,
        }
    }
}

/// The full measure key space: every architecture × primitive pair.
#[must_use]
pub fn key_space() -> Vec<(Arch, Primitive)> {
    let mut keys = Vec::with_capacity(Arch::COUNT * 4);
    for arch in Arch::all() {
        for primitive in Primitive::all() {
            keys.push((arch, primitive));
        }
    }
    keys
}

/// Per-connection tallies, merged after the run. Latencies go straight
/// into a log-linear histogram — bucket merge across connections is
/// exact, so the report's percentiles cover every reply, not a sample.
#[derive(Debug, Default)]
struct ConnResult {
    oks: u64,
    errors: u64,
    latency: Histogram,
    resilience: ResilienceCounters,
}

/// Counter values scraped from a `stats` reply.
#[derive(Debug, Default, Clone, Copy)]
struct CacheCounters {
    hits: u64,
    misses: u64,
    coalesced: u64,
}

/// Run the workload and report. Self-hosts a server when `config.addr`
/// is `None` (and shuts it down afterwards); with `config.faults > 0`
/// the self-hosted server runs under a deterministic fault schedule.
pub fn run(config: &LoadgenConfig) -> std::io::Result<ServeBenchReport> {
    let chaos = (config.faults > 0.0).then(|| {
        Arc::new(ChaosController::new(ChaosConfig {
            seed: config.seed,
            rate: config.faults,
            ..ChaosConfig::default()
        }))
    });
    // Injected panics are the faults working as intended — keep their
    // backtraces off stderr for the duration of a faulted run.
    let _quiet = chaos
        .as_ref()
        .map(|_| osarch_chaos::QuietChaosPanics::install());
    let mut hosted: Option<ServerHandle> = None;
    let addr = match &config.addr {
        Some(addr) => addr.clone(),
        None => {
            let handle = Server::start(&ServerConfig {
                workers: config.workers,
                shards: config.shards,
                // The queue must absorb every loadgen connection at once.
                queue_depth: (config.conns as usize * 2).max(64),
                chaos: chaos.clone(),
                sample_every: config.sample,
                telemetry_seed: config.seed,
                ..ServerConfig::default()
            })?;
            let addr = handle.addr().to_string();
            hosted = Some(handle);
            addr
        }
    };
    let result = drive(&addr, config, chaos.as_ref());
    if let Some(handle) = hosted {
        handle.stop();
    }
    result
}

fn drive(
    addr: &str,
    config: &LoadgenConfig,
    chaos: Option<&Arc<ChaosController>>,
) -> std::io::Result<ServeBenchReport> {
    let before = query_stats(addr)?;
    let duration = Duration::from_secs_f64(config.secs.max(0.1));
    let keys = key_space();
    let weights: Vec<u64> = if config.skew {
        // Harmonic (Zipf-like) weights: the hottest key draws ~25% of the
        // traffic, the tail thins as 1/rank.
        (0..keys.len())
            .map(|rank| 720 / (rank as u64 + 1))
            .collect()
    } else {
        vec![1; keys.len()]
    };
    let dist =
        WeightedIndex::new(weights.iter().copied()).expect("weights are positive by construction");

    let mux = config.pipeline > 1 || config.conns > MUX_THRESHOLD_CONNS;
    let started = Instant::now();
    let results: Vec<ConnResult>;
    let driver_threads: u32;
    if mux {
        let pipeline = config.pipeline.max(1) as usize;
        let threads = std::thread::available_parallelism()
            .map_or(1, std::num::NonZeroUsize::get)
            .min(MUX_MAX_THREADS)
            .min(config.conns as usize)
            .max(1);
        driver_threads = threads as u32;
        // Deal connections out across the driver threads; the remainder
        // lands on the first few.
        let base = config.conns as usize / threads;
        let extra = config.conns as usize % threads;
        results = std::thread::scope(|scope| {
            let handles: Vec<_> = (0..threads)
                .map(|thread| {
                    let dist = &dist;
                    let keys = &keys;
                    let conns = base + usize::from(thread < extra);
                    let seed =
                        config.seed ^ (thread as u64 + 1).wrapping_mul(0x9e37_79b9_7f4a_7c15);
                    scope.spawn(move || {
                        drive_mux_chunk(addr, seed, dist, keys, conns, pipeline, started + duration)
                    })
                })
                .collect();
            handles
                .into_iter()
                .map(|h| h.join().expect("loadgen driver thread panicked"))
                .collect()
        });
    } else {
        driver_threads = config.conns;
        results = std::thread::scope(|scope| {
            let handles: Vec<_> = (0..config.conns)
                .map(|conn| {
                    let dist = &dist;
                    let keys = &keys;
                    let chaos = chaos.cloned();
                    scope.spawn(move || {
                        drive_connection(
                            addr,
                            config.seed ^ (u64::from(conn) + 1).wrapping_mul(0x9e37_79b9_7f4a_7c15),
                            dist,
                            keys,
                            started + duration,
                            config.rate,
                            chaos,
                        )
                    })
                })
                .collect();
            handles
                .into_iter()
                .map(|h| h.join().expect("loadgen connection thread panicked"))
                .collect()
        });
    }
    let secs = started.elapsed().as_secs_f64();
    let after = query_stats(addr)?;

    let mut oks = 0u64;
    let mut errors = 0u64;
    let mut resilience = ResilienceCounters::default();
    let mut latency = Histogram::new();
    for conn in results {
        oks += conn.oks;
        errors += conn.errors;
        merge_resilience(&mut resilience, conn.resilience);
        latency.merge(&conn.latency);
    }
    Ok(ServeBenchReport {
        workload: if config.skew { "skewed" } else { "uniform" }.to_string(),
        mode: if mux {
            "pipelined"
        } else if config.rate.is_some() {
            "open"
        } else {
            "closed"
        }
        .to_string(),
        conns: config.conns,
        pipeline_depth: config.pipeline.max(1),
        driver_threads,
        workers: config.workers as u32,
        shards: config.shards as u32,
        secs,
        requests: oks,
        errors,
        throughput_rps: if secs > 0.0 { oks as f64 / secs } else { 0.0 },
        latency: LatencySummary::from_histogram(&latency),
        latency_hist: latency.sparse(),
        hits: after.hits.saturating_sub(before.hits),
        misses: after.misses.saturating_sub(before.misses),
        coalesced: after.coalesced.saturating_sub(before.coalesced),
        resilience,
    })
}

fn merge_resilience(total: &mut ResilienceCounters, conn: ResilienceCounters) {
    total.retries += conn.retries;
    total.giveups += conn.giveups;
    total.breaker_opens += conn.breaker_opens;
    total.degraded += conn.degraded;
    total.timeouts += conn.timeouts;
    total.conn_resets += conn.conn_resets;
    total.server_errors += conn.server_errors;
    total.breaker_open += conn.breaker_open;
    total.corrupt += conn.corrupt;
}

/// Above this many connections the thread-per-connection driver would
/// need an absurd thread count; the multiplexed driver takes over.
const MUX_THRESHOLD_CONNS: u32 = 256;

/// Driver-thread ceiling for the multiplexed driver.
const MUX_MAX_THREADS: usize = 32;

/// One multiplexed connection: a buffered reader over the socket (writes
/// go straight through `get_mut`) plus its id counter.
struct MuxConn {
    reader: BufReader<TcpStream>,
    next_id: u64,
}

/// Connect with retries until `deadline`: a connection storm overflows
/// the listener backlog, and the kernel answers some SYNs late or with a
/// reset — retrying is part of holding N connections open, not cheating.
fn connect_with_retry(addr: &str, deadline: Instant) -> Option<MuxConn> {
    loop {
        match TcpStream::connect(addr) {
            Ok(stream) => {
                let _ = stream.set_nodelay(true);
                let _ = stream.set_read_timeout(Some(Duration::from_secs(10)));
                return Some(MuxConn {
                    reader: BufReader::new(stream),
                    next_id: 0,
                });
            }
            Err(_) if Instant::now() < deadline => {
                std::thread::sleep(Duration::from_millis(2));
            }
            Err(_) => return None,
        }
    }
}

/// One driver thread's multiplexed loop over `conns` sockets: each round
/// writes a batch of `pipeline` requests to *every* socket (so the whole
/// chunk is in flight at once), then reads each socket's replies back
/// and checks the ids echo **in order** — a reply out of order or
/// unparseable counts as client-visible corruption. Latency is recorded
/// per reply at batch granularity: the round-trip of the batch it rode
/// in, which is the figure a pipelining client actually experiences.
fn drive_mux_chunk(
    addr: &str,
    seed: u64,
    dist: &WeightedIndex<u64>,
    keys: &[(Arch, Primitive)],
    conns: usize,
    pipeline: usize,
    stop_at: Instant,
) -> ConnResult {
    let mut rng = StdRng::seed_from_u64(seed);
    let mut result = ConnResult::default();
    let connect_deadline = Instant::now() + Duration::from_secs(30);
    let mut socks: Vec<Option<MuxConn>> = (0..conns)
        .map(|_| connect_with_retry(addr, connect_deadline.min(stop_at)))
        .collect();
    let mut line = String::new();
    let mut batch = String::new();
    let mut sent: Vec<(u64, Instant)> = Vec::with_capacity(conns);
    while Instant::now() < stop_at {
        // Write phase: put a batch in flight on every live socket.
        sent.clear();
        for sock in &mut socks {
            let Some(conn) = sock else {
                sent.push((0, Instant::now()));
                continue;
            };
            batch.clear();
            let first_id = conn.next_id + 1;
            for _ in 0..pipeline {
                conn.next_id += 1;
                let (arch, primitive) = keys[dist.sample(&mut rng)];
                batch.push_str(&format!(
                    "{{\"op\":\"measure\",\"arch\":\"{arch}\",\"primitive\":\"{}\",\"id\":{}}}\n",
                    primitive.tag(),
                    conn.next_id
                ));
            }
            let when = Instant::now();
            if conn.reader.get_mut().write_all(batch.as_bytes()).is_err() {
                result.errors += 1;
                *sock = None;
            }
            sent.push((first_id, when));
        }
        // Read phase: collect every batch, verifying order as we go.
        for (index, sock) in socks.iter_mut().enumerate() {
            let Some(conn) = sock.as_mut() else { continue };
            let (first_id, when) = sent[index];
            for offset in 0..pipeline {
                line.clear();
                match conn.reader.read_line(&mut line) {
                    Ok(0) | Err(_) => {
                        result.errors += 1;
                        *sock = None;
                        break;
                    }
                    Ok(_) => {
                        let id_token = format!("\"id\":{},", first_id + offset as u64);
                        if !line.contains(&id_token) {
                            result.resilience.corrupt += 1;
                            result.errors += 1;
                            *sock = None;
                            break;
                        }
                        if line.contains("\"ok\":true") {
                            result.oks += 1;
                            result.latency.record(when.elapsed().as_micros() as u64);
                        } else {
                            result.errors += 1;
                            result.resilience.server_errors += 1;
                        }
                    }
                }
            }
        }
        // A socket lost mid-run is re-dialed once per round, so a
        // transient reset does not silently thin the connection count.
        if Instant::now() < stop_at {
            for sock in &mut socks {
                if sock.is_none() {
                    *sock = connect_with_retry(addr, Instant::now());
                }
            }
        }
    }
    result
}

/// One connection's request loop, through the resilient client.
fn drive_connection(
    addr: &str,
    seed: u64,
    dist: &WeightedIndex<u64>,
    keys: &[(Arch, Primitive)],
    stop_at: Instant,
    rate: Option<f64>,
    chaos: Option<Arc<ChaosController>>,
) -> ConnResult {
    let faulty = chaos.is_some();
    let mut client = ResilientClient::new(
        addr,
        ClientConfig {
            seed,
            // Full JSON validation per reply only under fault injection;
            // the clean benchmark path stays cheap.
            validate_replies: faulty,
            attempt_timeout: if faulty {
                Duration::from_millis(500)
            } else {
                Duration::from_secs(30)
            },
            ..ClientConfig::default()
        },
    );
    if let Some(chaos) = chaos {
        client = client.with_chaos(chaos);
    }
    let mut rng = StdRng::seed_from_u64(seed);
    let mut result = ConnResult::default();
    let interval = rate.map(|r| Duration::from_secs_f64(1.0 / r.max(0.001)));
    let mut next_arrival = Instant::now();
    let mut request_id = 0u64;
    while Instant::now() < stop_at {
        if let Some(interval) = interval {
            // Open loop: hold to the arrival schedule; a late reply means
            // the next request fires immediately (no schedule reset).
            let now = Instant::now();
            if next_arrival > now {
                std::thread::sleep(next_arrival - now);
            }
            next_arrival += interval;
            if Instant::now() >= stop_at {
                break;
            }
        }
        let (arch, primitive) = keys[dist.sample(&mut rng)];
        request_id += 1;
        let id_token = request_id.to_string();
        let line = format!(
            "{{\"op\":\"measure\",\"arch\":\"{arch}\",\"primitive\":\"{}\",\"id\":{id_token}}}",
            primitive.tag()
        );
        let sent = Instant::now();
        match client.call(&line, &id_token) {
            Ok(_) => {
                result.oks += 1;
                result.latency.record(sent.elapsed().as_micros() as u64);
            }
            Err(error) => {
                result.errors += 1;
                // Without faults, a clean shutdown or backpressure close
                // reads as conn_reset: stop instead of hammering retries.
                if !faulty && error.class != ErrorClass::ServerError {
                    break;
                }
            }
        }
    }
    let c = client.counters();
    result.resilience = ResilienceCounters {
        retries: c.retries,
        giveups: c.giveups,
        breaker_opens: c.breaker_opens,
        degraded: c.degraded,
        timeouts: c.timeouts,
        conn_resets: c.conn_resets,
        server_errors: c.server_errors,
        breaker_open: c.breaker_shed,
        corrupt: c.corrupt,
    };
    result
}

/// Issue one out-of-band `stats` query on a fresh connection.
fn query_stats(addr: &str) -> std::io::Result<CacheCounters> {
    let stream = TcpStream::connect(addr)?;
    stream.set_read_timeout(Some(Duration::from_secs(10)))?;
    let mut reader = BufReader::new(stream.try_clone()?);
    let mut writer = BufWriter::new(stream);
    writeln!(writer, "{{\"op\":\"stats\"}}")?;
    writer.flush()?;
    let mut reply = String::new();
    reader.read_line(&mut reply)?;
    Ok(CacheCounters {
        hits: extract_counter(&reply, "cache_hits"),
        misses: extract_counter(&reply, "cache_misses"),
        coalesced: extract_counter(&reply, "cache_coalesced"),
    })
}

/// Scrape one named counter value out of a `stats` reply. The counters
/// array is the deterministic `counters_json` format, so a plain
/// substring scan is reliable without a JSON parser.
fn extract_counter(reply: &str, name: &str) -> u64 {
    let needle = format!("\"name\":\"{name}\",\"value\":");
    reply
        .find(&needle)
        .and_then(|at| {
            let digits: String = reply[at + needle.len()..]
                .chars()
                .take_while(char::is_ascii_digit)
                .collect();
            digits.parse().ok()
        })
        .unwrap_or(0)
}

/// The shared `osarch loadgen` / `osarch-loadgen` front end: parse
/// `args`, run the workload, write the `BENCH_serve.json` report.
/// `Err` carries a one-line usage error (exit 2 at the caller).
pub fn cli(args: &[String], prog: &str) -> Result<std::process::ExitCode, String> {
    use std::process::ExitCode;
    let mut config = LoadgenConfig::default();
    let mut out = "BENCH_serve.json".to_string();
    let mut rest = args.iter();
    let parse = |flag: &str, value: Option<&String>| -> Result<String, String> {
        value
            .cloned()
            .ok_or_else(|| format!("{flag} requires a value"))
    };
    while let Some(arg) = rest.next() {
        match arg.as_str() {
            "--addr" => config.addr = Some(parse("--addr", rest.next())?),
            "--conns" => {
                config.conns = parse("--conns", rest.next())?
                    .parse()
                    .map_err(|_| "--conns expects a positive integer".to_string())?;
            }
            "--pipeline" => {
                config.pipeline = parse("--pipeline", rest.next())?
                    .parse()
                    .map_err(|_| "--pipeline expects a positive integer".to_string())?;
                if config.pipeline == 0 {
                    return Err("--pipeline must be at least 1".to_string());
                }
            }
            "--secs" => {
                config.secs = parse("--secs", rest.next())?
                    .parse()
                    .map_err(|_| "--secs expects a number of seconds".to_string())?;
            }
            "--skew" => config.skew = true,
            "--rate" => {
                config.rate = Some(
                    parse("--rate", rest.next())?
                        .parse()
                        .map_err(|_| "--rate expects requests/second".to_string())?,
                );
            }
            "--workers" => {
                config.workers = parse("--workers", rest.next())?
                    .parse()
                    .map_err(|_| "--workers expects a positive integer".to_string())?;
            }
            "--shards" => {
                config.shards = parse("--shards", rest.next())?
                    .parse()
                    .map_err(|_| "--shards expects a positive integer".to_string())?;
            }
            "--seed" => {
                config.seed = parse("--seed", rest.next())?
                    .parse()
                    .map_err(|_| "--seed expects an integer".to_string())?;
            }
            "--faults" => {
                config.faults = parse("--faults", rest.next())?
                    .parse()
                    .map_err(|_| "--faults expects a probability in [0,1]".to_string())?;
                if !(0.0..=1.0).contains(&config.faults) {
                    return Err("--faults expects a probability in [0,1]".to_string());
                }
            }
            "--sample" => {
                config.sample = parse("--sample", rest.next())?
                    .parse()
                    .map_err(|_| "--sample expects an integer divisor (0 disables)".to_string())?;
            }
            "--out" => out = parse("--out", rest.next())?,
            other => {
                return Err(format!(
                    "unknown argument {other:?}\nusage: {prog} [--addr HOST:PORT] [--conns N] \
                     [--pipeline N] [--secs S] [--skew] [--rate R] [--workers N] [--shards N] \
                     [--seed N] [--faults P] [--sample N] [--out PATH]"
                ))
            }
        }
    }
    if config.conns == 0 {
        return Err("--conns must be at least 1".to_string());
    }
    let report = match run(&config) {
        Ok(report) => report,
        Err(err) => {
            eprintln!("loadgen failed: {err}");
            return Ok(ExitCode::FAILURE);
        }
    };
    let doc = osarch_core::metrics::serve_bench_json(&report);
    if let Err(reason) = osarch_core::metrics::validate_serve_bench(&doc) {
        eprintln!("internal error: bench JSON rejected: {reason}");
        return Ok(ExitCode::FAILURE);
    }
    if out == "-" {
        print!("{doc}");
    } else {
        if let Err(err) = std::fs::write(&out, &doc) {
            eprintln!("cannot write {out}: {err}");
            return Ok(ExitCode::FAILURE);
        }
        eprintln!(
            "wrote {out}: {} requests in {:.2}s ({:.0} req/s, p50 {} us, p99 {} us, \
             {} hits / {} misses / {} coalesced)",
            report.requests,
            report.secs,
            report.throughput_rps,
            report.latency.p50,
            report.latency.p99,
            report.hits,
            report.misses,
            report.coalesced
        );
        if config.faults > 0.0 {
            let r = &report.resilience;
            eprintln!(
                "resilience: {} retries, {} giveups, {} breaker opens, {} degraded, \
                 classes timeout={} conn_reset={} server_error={} breaker_open={}",
                r.retries,
                r.giveups,
                r.breaker_opens,
                r.degraded,
                r.timeouts,
                r.conn_resets,
                r.server_errors,
                r.breaker_open
            );
        }
    }
    if report.resilience.corrupt > 0 {
        eprintln!(
            "CORRUPTION: {} replies failed verification",
            report.resilience.corrupt
        );
        return Ok(ExitCode::FAILURE);
    }
    if report.requests == 0 {
        eprintln!("no requests completed: the server made no progress");
        return Ok(ExitCode::FAILURE);
    }
    Ok(ExitCode::SUCCESS)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn key_space_covers_every_pair() {
        let keys = key_space();
        assert_eq!(keys.len(), 28);
        let mut unique = keys.clone();
        unique.sort_by_key(|(a, p)| (a.index(), p.tag()));
        unique.dedup();
        assert_eq!(unique.len(), 28);
    }

    #[test]
    fn counter_extraction_reads_the_stats_shape() {
        let reply = "{\"counters\":[{\"arch\":\"serve\",\"primitive\":\"request\",\
                     \"phase\":\"total\",\"name\":\"cache_hits\",\"value\":41},\
                     {\"name\":\"cache_misses\",\"value\":7}]}";
        assert_eq!(extract_counter(reply, "cache_hits"), 41);
        assert_eq!(extract_counter(reply, "cache_misses"), 7);
        assert_eq!(extract_counter(reply, "absent"), 0);
    }
}
