//! A bounded MPMC queue with explicit backpressure and shutdown.
//!
//! In the event-driven core this queue plays two roles: the accept
//! thread `try_push`es admitted connections into a per-loop *handoff*
//! (drained nonblockingly with [`BoundedQueue::try_pop`] after a waker
//! nudge), and data-query misses travel through the bounded compute
//! *job queue* that the offload pool `pop`s (blocking until work or
//! close). In both roles a full queue fails the push *immediately* and
//! the server answers "busy" instead of letting unbounded work pile up
//! — bounded queues are the serving-layer version of the paper's point
//! that unmanaged fixed overheads swamp a system under load.

use std::collections::VecDeque;
use std::sync::{Condvar, Mutex};

struct Inner<T> {
    items: VecDeque<T>,
    closed: bool,
}

/// A bounded queue: `try_push` fails when full, `pop` blocks until an
/// item arrives or the queue closes.
pub struct BoundedQueue<T> {
    inner: Mutex<Inner<T>>,
    ready: Condvar,
    capacity: usize,
}

impl<T> BoundedQueue<T> {
    /// A queue holding at most `capacity` items (clamped to ≥ 1).
    #[must_use]
    pub fn new(capacity: usize) -> BoundedQueue<T> {
        BoundedQueue {
            inner: Mutex::new(Inner {
                items: VecDeque::new(),
                closed: false,
            }),
            ready: Condvar::new(),
            capacity: capacity.max(1),
        }
    }

    /// Push without blocking. Returns the item back when the queue is
    /// full (backpressure) or closed, so the caller can reject it.
    pub fn try_push(&self, item: T) -> Result<(), T> {
        let mut inner = self
            .inner
            .lock()
            .unwrap_or_else(std::sync::PoisonError::into_inner);
        if inner.closed || inner.items.len() >= self.capacity {
            return Err(item);
        }
        inner.items.push_back(item);
        drop(inner);
        self.ready.notify_one();
        Ok(())
    }

    /// Pop the oldest item, blocking while the queue is empty. `None`
    /// means the queue closed and drained: the worker should exit.
    pub fn pop(&self) -> Option<T> {
        let mut inner = self
            .inner
            .lock()
            .unwrap_or_else(std::sync::PoisonError::into_inner);
        loop {
            if let Some(item) = inner.items.pop_front() {
                return Some(item);
            }
            if inner.closed {
                return None;
            }
            inner = self
                .ready
                .wait(inner)
                .unwrap_or_else(std::sync::PoisonError::into_inner);
        }
    }

    /// Pop without blocking: `None` when the queue is currently empty,
    /// whether or not it is closed. Event loops drain their handoff
    /// with this after a waker nudge — they must never block here.
    pub fn try_pop(&self) -> Option<T> {
        self.inner
            .lock()
            .unwrap_or_else(std::sync::PoisonError::into_inner)
            .items
            .pop_front()
    }

    /// Close the queue: pending items still drain, new pushes fail, and
    /// every blocked `pop` wakes.
    pub fn close(&self) {
        let mut inner = self
            .inner
            .lock()
            .unwrap_or_else(std::sync::PoisonError::into_inner);
        inner.closed = true;
        drop(inner);
        self.ready.notify_all();
    }

    /// Items currently queued.
    #[must_use]
    pub fn len(&self) -> usize {
        self.inner
            .lock()
            .unwrap_or_else(std::sync::PoisonError::into_inner)
            .items
            .len()
    }

    /// Whether the queue is currently empty.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn full_queue_rejects_instead_of_blocking() {
        let q = BoundedQueue::new(2);
        assert!(q.try_push(1).is_ok());
        assert!(q.try_push(2).is_ok());
        assert_eq!(q.try_push(3), Err(3));
        assert_eq!(q.pop(), Some(1));
        assert!(q.try_push(3).is_ok());
    }

    #[test]
    fn try_pop_never_blocks() {
        let q = BoundedQueue::new(2);
        assert_eq!(q.try_pop(), None::<i32>);
        q.try_push(7).unwrap();
        assert_eq!(q.try_pop(), Some(7));
        assert_eq!(q.try_pop(), None);
        q.close();
        assert_eq!(q.try_pop(), None, "closed and empty is still just None");
    }

    #[test]
    fn close_wakes_blocked_workers_and_drains() {
        let q = BoundedQueue::new(4);
        q.try_push(10).unwrap();
        std::thread::scope(|scope| {
            let handle = scope.spawn(|| {
                let mut seen = Vec::new();
                while let Some(item) = q.pop() {
                    seen.push(item);
                }
                seen
            });
            std::thread::sleep(std::time::Duration::from_millis(10));
            q.close();
            assert_eq!(handle.join().unwrap(), vec![10]);
        });
        assert_eq!(q.try_push(11), Err(11), "closed queue rejects pushes");
        assert!(q.is_empty());
    }
}
