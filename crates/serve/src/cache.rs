//! The sharded single-flight response cache.
//!
//! Every query the server answers is a pure function of its key (the
//! simulator is deterministic), so the serving layer never needs to run a
//! computation twice — and under concurrency it must not run the *same*
//! computation twice at the *same* time. [`ShardedCache`] gives both
//! properties:
//!
//! * **Sharding** — keys hash to one of N independent shards, each behind
//!   its own mutex, so unrelated requests never contend on a global lock.
//! * **Single flight** — the first requester of a key installs an
//!   in-flight slot and computes *outside* every lock; concurrent
//!   requesters for the same key park on the slot's condvar and share the
//!   one result when it lands (a "coalesced wait").
//! * **Failure isolation** — a leader whose computation panics wakes
//!   every parked waiter with an error (nobody hangs) and *removes* the
//!   key's flight, so the next requester retries instead of hitting a
//!   poisoned slot forever.
//! * **Stale-on-error degradation** — the last good value per key is kept
//!   aside; when a recomputation fails, requesters get the stale value
//!   explicitly marked degraded rather than a hard error.
//!
//! This is the serving-layer analogue of the paper's argument about fixed
//! per-operation overheads: the expensive part of a request is a fixed
//! per-key simulation cost, so amortizing it across requests is the whole
//! ballgame — and a transiently failing computation must not turn an
//! amortized cost back into a per-request outage.

use std::collections::HashMap;
use std::hash::{BuildHasher, Hasher, RandomState};
use std::panic::AssertUnwindSafe;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Condvar, Mutex};

/// The state of one key's computation.
enum Flight {
    /// Someone is computing; park on the condvar.
    Pending,
    /// The computation landed; share the result.
    Done(Arc<str>),
    /// The computation failed; share the error. The key has already been
    /// removed from the shard map, so a fresh request retries.
    Failed(Arc<str>),
}

/// One key's slot: flight state plus the condvar latecomers park on.
struct Slot {
    state: Mutex<Flight>,
    landed: Condvar,
}

/// How a value came out of [`ShardedCache::get_or_compute_resilient`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Fetched {
    /// This caller was the leader and computed the value fresh.
    Computed(Arc<str>),
    /// Served from an already-landed result (a hit or a coalesced wait).
    Cached(Arc<str>),
    /// The computation failed, but a previous good value exists: the
    /// stale value, plus the failure message. Explicitly degraded.
    Degraded(Arc<str>, String),
    /// The computation failed and no previous good value exists.
    Failed(String),
}

/// One shard: the flight map plus the last-good sidecar for degradation.
struct Shard {
    flights: Mutex<HashMap<String, Arc<Slot>>>,
    last_good: Mutex<HashMap<String, Arc<str>>>,
}

/// A sharded, single-flight memo cache from string keys to immutable
/// string results.
pub struct ShardedCache {
    shards: Vec<Shard>,
    hasher: RandomState,
    hits: AtomicU64,
    misses: AtomicU64,
    coalesced: AtomicU64,
    failed: AtomicU64,
    degraded: AtomicU64,
}

impl std::fmt::Debug for ShardedCache {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("ShardedCache")
            .field("shards", &self.shards.len())
            .field("hits", &self.hits())
            .field("misses", &self.misses())
            .field("coalesced", &self.coalesced())
            .field("failed", &self.failed())
            .field("degraded", &self.degraded())
            .finish()
    }
}

impl ShardedCache {
    /// A cache with `shards` independent lock domains (clamped to ≥ 1).
    #[must_use]
    pub fn new(shards: usize) -> ShardedCache {
        let shards = shards.max(1);
        ShardedCache {
            shards: (0..shards)
                .map(|_| Shard {
                    flights: Mutex::new(HashMap::new()),
                    last_good: Mutex::new(HashMap::new()),
                })
                .collect(),
            hasher: RandomState::new(),
            hits: AtomicU64::new(0),
            misses: AtomicU64::new(0),
            coalesced: AtomicU64::new(0),
            failed: AtomicU64::new(0),
            degraded: AtomicU64::new(0),
        }
    }

    /// Number of shards.
    #[must_use]
    pub fn shard_count(&self) -> usize {
        self.shards.len()
    }

    fn shard_for(&self, key: &str) -> &Shard {
        let mut hasher = self.hasher.build_hasher();
        hasher.write(key.as_bytes());
        let index = (hasher.finish() as usize) % self.shards.len();
        &self.shards[index]
    }

    /// Infallible compatibility wrapper over
    /// [`ShardedCache::get_or_compute_resilient`] for computations that
    /// cannot fail. Returns the result and whether it was served from
    /// cache (a hit or a coalesced wait).
    pub fn get_or_compute<F>(&self, key: &str, compute: F) -> (Arc<str>, bool)
    where
        F: FnOnce() -> String,
    {
        match self.get_or_compute_resilient(key, compute) {
            Fetched::Computed(value) => (value, false),
            Fetched::Cached(value) | Fetched::Degraded(value, _) => (value, true),
            Fetched::Failed(error) => (
                Arc::from(
                    format!(
                        "{{\"ok\":false,\"error\":\"{}\"}}",
                        osarch_core::metrics::json_escape(&error)
                    )
                    .as_str(),
                ),
                false,
            ),
        }
    }

    /// Non-blocking lookup for event loops: the landed value for `key`,
    /// or `None` when the key is absent, still in flight, or failed —
    /// every `None` case must be offloaded to a thread that can afford
    /// the blocking [`ShardedCache::get_or_compute_resilient`] path.
    ///
    /// Counts a hit only when a value is returned; the offloaded path
    /// does its own miss/coalesced accounting, so each request still
    /// lands in exactly one bucket and the single-flight identity
    /// `lookups == hits + misses + coalesced` stays exact.
    #[must_use]
    pub fn try_get(&self, key: &str) -> Option<Arc<str>> {
        let shard = self.shard_for(key);
        let slot = Arc::clone(lock(&shard.flights).get(key)?);
        // The state lock is only ever held for moments (computation runs
        // outside it; waiters release it while parked), so this cannot
        // stall the event loop.
        let state = lock(&slot.state);
        match &*state {
            Flight::Done(result) => {
                self.hits.fetch_add(1, Ordering::Relaxed);
                Some(Arc::clone(result))
            }
            Flight::Pending | Flight::Failed(_) => None,
        }
    }

    /// The cached result for `key`, computing it with `compute` on first
    /// request. Exactly one caller per key runs `compute`; everyone else
    /// either hits the finished result or parks until the in-flight
    /// computation lands.
    ///
    /// `compute` may panic: the panic is contained here, every parked
    /// waiter wakes with the failure, the key's flight is removed so a
    /// later request retries, and callers fall back to the last good
    /// value ([`Fetched::Degraded`]) when one exists.
    pub fn get_or_compute_resilient<F>(&self, key: &str, compute: F) -> Fetched
    where
        F: FnOnce() -> String,
    {
        let shard = self.shard_for(key);
        let (slot, leader) = {
            let mut flights = lock(&shard.flights);
            match flights.get(key) {
                Some(slot) => (Arc::clone(slot), false),
                None => {
                    let slot = Arc::new(Slot {
                        state: Mutex::new(Flight::Pending),
                        landed: Condvar::new(),
                    });
                    flights.insert(key.to_string(), Arc::clone(&slot));
                    (slot, true)
                }
            }
        };
        if leader {
            self.misses.fetch_add(1, Ordering::Relaxed);
            return self.lead(shard, key, &slot, compute);
        }
        let mut state = lock(&slot.state);
        if matches!(*state, Flight::Pending) {
            self.coalesced.fetch_add(1, Ordering::Relaxed);
            while matches!(*state, Flight::Pending) {
                state = slot
                    .landed
                    .wait(state)
                    .unwrap_or_else(std::sync::PoisonError::into_inner);
            }
        } else {
            self.hits.fetch_add(1, Ordering::Relaxed);
        }
        match &*state {
            Flight::Done(result) => Fetched::Cached(Arc::clone(result)),
            Flight::Failed(error) => {
                let error = error.to_string();
                drop(state);
                self.degrade(shard, key, error)
            }
            Flight::Pending => unreachable!("left the wait loop with the flight pending"),
        }
    }

    /// Run the computation as the key's flight leader. Contains panics:
    /// on failure the flight is removed, waiters wake with the error, and
    /// the caller degrades to the last good value when one exists.
    fn lead<F>(&self, shard: &Shard, key: &str, slot: &Arc<Slot>, compute: F) -> Fetched
    where
        F: FnOnce() -> String,
    {
        // A backstop against this method itself unwinding between the
        // catch below and the state update: waiters must never be left
        // parked on a Pending flight.
        let mut guard = FlightGuard {
            shard,
            key,
            slot,
            armed: true,
        };
        let outcome = std::panic::catch_unwind(AssertUnwindSafe(compute));
        match outcome {
            Ok(result) => {
                guard.armed = false;
                let result: Arc<str> = Arc::from(result);
                lock(&shard.last_good).insert(key.to_string(), Arc::clone(&result));
                let mut state = lock(&slot.state);
                *state = Flight::Done(Arc::clone(&result));
                drop(state);
                slot.landed.notify_all();
                Fetched::Computed(result)
            }
            Err(panic) => {
                guard.armed = false;
                let error = format!("computation panicked: {}", panic_message(&*panic));
                settle_failed(shard, key, slot, &error);
                self.degrade(shard, key, error)
            }
        }
    }

    /// Resolve a failed computation for a caller: serve the last good
    /// value as degraded when one exists, a hard failure otherwise.
    fn degrade(&self, shard: &Shard, key: &str, error: String) -> Fetched {
        self.failed.fetch_add(1, Ordering::Relaxed);
        match lock(&shard.last_good).get(key) {
            Some(stale) => {
                self.degraded.fetch_add(1, Ordering::Relaxed);
                Fetched::Degraded(Arc::clone(stale), error)
            }
            None => Fetched::Failed(error),
        }
    }

    /// Requests served from an already-landed result.
    #[must_use]
    pub fn hits(&self) -> u64 {
        self.hits.load(Ordering::Relaxed)
    }

    /// Requests that ran the computation (as the flight leader).
    #[must_use]
    pub fn misses(&self) -> u64 {
        self.misses.load(Ordering::Relaxed)
    }

    /// Requests that parked on another request's in-flight computation.
    #[must_use]
    pub fn coalesced(&self) -> u64 {
        self.coalesced.load(Ordering::Relaxed)
    }

    /// Requests whose computation failed (leader and waiters alike).
    #[must_use]
    pub fn failed(&self) -> u64 {
        self.failed.load(Ordering::Relaxed)
    }

    /// Failed requests that were served a stale last-good value.
    #[must_use]
    pub fn degraded(&self) -> u64 {
        self.degraded.load(Ordering::Relaxed)
    }

    /// Total lookups: every call lands in exactly one of hit / miss /
    /// coalesced, so the single-flight accounting identity
    /// `lookups == hits + misses + coalesced` is exact by construction
    /// and checked by the chaos soak.
    #[must_use]
    pub fn lookups(&self) -> u64 {
        self.hits() + self.misses() + self.coalesced()
    }

    /// Drop every entry (flight and last-good sidecar alike) whose key
    /// does not start with `prefix` — the lazy old-epoch reaper run after
    /// a registry swap. Safe against in-flight computations: a pending
    /// flight's waiters hold the slot `Arc` directly and its leader
    /// settles through the slot, never the map, so removal only hides
    /// the key from *new* requests. A straggler that re-lands under an
    /// old-epoch key is reaped by the next swap. Returns the number of
    /// entries removed.
    pub fn retain_prefix(&self, prefix: &str) -> usize {
        let mut removed = 0;
        for shard in &self.shards {
            let mut flights = lock(&shard.flights);
            let before = flights.len();
            flights.retain(|key, _| key.starts_with(prefix));
            removed += before - flights.len();
            let mut last_good = lock(&shard.last_good);
            let before = last_good.len();
            last_good.retain(|key, _| key.starts_with(prefix));
            removed += before - last_good.len();
        }
        removed
    }
}

fn lock<T>(mutex: &Mutex<T>) -> std::sync::MutexGuard<'_, T> {
    mutex
        .lock()
        .unwrap_or_else(std::sync::PoisonError::into_inner)
}

/// Mark a flight failed: remove the key (so later requests retry), then
/// wake every parked waiter with the error.
fn settle_failed(shard: &Shard, key: &str, slot: &Arc<Slot>, error: &str) {
    {
        let mut flights = lock(&shard.flights);
        // Only remove the flight we own: a waiter that already saw the
        // failure may have raced a fresh leader into the map.
        if flights
            .get(key)
            .is_some_and(|current| Arc::ptr_eq(current, slot))
        {
            flights.remove(key);
        }
    }
    let mut state = lock(&slot.state);
    *state = Flight::Failed(Arc::from(error));
    drop(state);
    slot.landed.notify_all();
}

/// Best-effort panic payload extraction for error messages.
fn panic_message(panic: &(dyn std::any::Any + Send)) -> &str {
    if let Some(message) = panic.downcast_ref::<&'static str>() {
        message
    } else if let Some(message) = panic.downcast_ref::<String>() {
        message
    } else {
        "opaque panic payload"
    }
}

/// Clears a pending slot if the leader unwinds before settling it, so
/// parked waiters receive an error result instead of waiting forever and
/// the key does not stay permanently in flight.
struct FlightGuard<'a> {
    shard: &'a Shard,
    key: &'a str,
    slot: &'a Arc<Slot>,
    armed: bool,
}

impl Drop for FlightGuard<'_> {
    fn drop(&mut self) {
        if self.armed {
            settle_failed(self.shard, self.key, self.slot, "computation failed");
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn second_request_hits() {
        let cache = ShardedCache::new(4);
        let (a, cached_a) = cache.get_or_compute("k", || "v".to_string());
        let (b, cached_b) = cache.get_or_compute("k", || panic!("must not recompute"));
        assert_eq!((&*a, cached_a), ("v", false));
        assert_eq!((&*b, cached_b), ("v", true));
        assert_eq!((cache.misses(), cache.hits(), cache.coalesced()), (1, 1, 0));
        assert_eq!(cache.lookups(), 2);
    }

    #[test]
    fn distinct_keys_compute_independently() {
        let cache = ShardedCache::new(2);
        for i in 0..10 {
            let key = format!("k{i}");
            let (value, _) = cache.get_or_compute(&key, || format!("v{i}"));
            assert_eq!(&*value, &format!("v{i}"));
        }
        assert_eq!(cache.misses(), 10);
    }

    #[test]
    fn concurrent_same_key_coalesces_to_one_computation() {
        use std::sync::Barrier;
        let cache = ShardedCache::new(8);
        let computations = AtomicU64::new(0);
        let barrier = Barrier::new(8);
        std::thread::scope(|scope| {
            for _ in 0..8 {
                scope.spawn(|| {
                    barrier.wait();
                    let (value, _) = cache.get_or_compute("hot", || {
                        computations.fetch_add(1, Ordering::Relaxed);
                        // Hold the flight open long enough that the other
                        // threads arrive while it is pending.
                        std::thread::sleep(std::time::Duration::from_millis(20));
                        "result".to_string()
                    });
                    assert_eq!(&*value, "result");
                });
            }
        });
        assert_eq!(computations.load(Ordering::Relaxed), 1);
        assert_eq!(cache.misses(), 1);
        assert_eq!(cache.hits() + cache.coalesced(), 7);
    }

    #[test]
    fn try_get_is_nonblocking_and_counts_hits_exactly() {
        let cache = ShardedCache::new(4);
        assert_eq!(cache.try_get("k"), None, "absent key");
        assert_eq!(cache.lookups(), 0, "a miss on try_get is not a lookup");
        let (value, _) = cache.get_or_compute("k", || "v".to_string());
        assert_eq!(&*value, "v");
        let hit = cache.try_get("k").expect("landed value");
        assert_eq!(&*hit, "v");
        assert_eq!((cache.misses(), cache.hits()), (1, 1));
        assert_eq!(cache.lookups(), 2);
        // An in-flight key is invisible to try_get: the leader parks a
        // flight as Pending, and try_get must refuse to wait on it.
        let barrier = std::sync::Barrier::new(2);
        std::thread::scope(|scope| {
            scope.spawn(|| {
                cache.get_or_compute("slow", || {
                    barrier.wait();
                    std::thread::sleep(std::time::Duration::from_millis(50));
                    "late".to_string()
                });
            });
            barrier.wait();
            assert_eq!(cache.try_get("slow"), None, "pending flight");
        });
    }

    #[test]
    fn retain_prefix_reaps_old_epoch_entries() {
        let cache = ShardedCache::new(4);
        let _ = cache.get_or_compute("e1-aaaa/k", || "old".to_string());
        let _ = cache.get_or_compute("e2-bbbb/k", || "new".to_string());
        let removed = cache.retain_prefix("e2-");
        assert_eq!(removed, 2, "old epoch's flight and last_good entries");
        assert_eq!(cache.try_get("e1-aaaa/k"), None, "old epoch reaped");
        assert!(cache.try_get("e2-bbbb/k").is_some(), "new epoch kept");
    }

    #[test]
    fn shard_count_is_clamped() {
        assert_eq!(ShardedCache::new(0).shard_count(), 1);
        assert_eq!(ShardedCache::new(16).shard_count(), 16);
    }

    #[test]
    fn leader_panic_fails_cleanly_then_retries() {
        let cache = ShardedCache::new(4);
        let fetched = cache.get_or_compute_resilient("k", || panic!("injected"));
        match fetched {
            Fetched::Failed(error) => assert!(error.contains("injected"), "{error}"),
            other => panic!("expected Failed, got {other:?}"),
        }
        // The key is not poisoned: the next request recomputes.
        let fetched = cache.get_or_compute_resilient("k", || "fresh".to_string());
        assert_eq!(fetched, Fetched::Computed(Arc::from("fresh")));
        assert_eq!(cache.misses(), 2, "the failed flight was retried");
        assert_eq!(cache.failed(), 1);
        assert_eq!(cache.degraded(), 0);
    }

    #[test]
    fn failure_after_success_degrades_to_the_stale_value() {
        let cache = ShardedCache::new(4);
        let first = cache.get_or_compute_resilient("k", || "good".to_string());
        assert_eq!(first, Fetched::Computed(Arc::from("good")));
        // A cached key never recomputes, so fail a *fresh* flight: the
        // failure path consults last_good and degrades.
        let fetched = cache.get_or_compute_resilient("other", || panic!("down"));
        assert!(matches!(fetched, Fetched::Failed(_)));
        // Simulate invalidation by failing the same key through a new
        // flight (the slot for "k" is Done, so force a failing flight via
        // a distinct cache with seeded last_good).
        let fetched = {
            let shard = cache.shard_for("k");
            // Remove the landed flight so the next request recomputes.
            lock(&shard.flights).remove("k");
            cache.get_or_compute_resilient("k", || panic!("recompute down"))
        };
        match fetched {
            Fetched::Degraded(stale, error) => {
                assert_eq!(&*stale, "good");
                assert!(error.contains("recompute down"), "{error}");
            }
            other => panic!("expected Degraded, got {other:?}"),
        }
        assert_eq!(cache.degraded(), 1);
    }

    /// Regression: a degraded reply serves the value *its own epoch*
    /// computed, never a neighbouring epoch's — the last-good sidecar is
    /// keyed by the full epoch-prefixed cache key, so a live spec swap
    /// can never leak one epoch's stale bytes into another's envelope.
    #[test]
    fn degraded_replies_carry_the_epoch_they_were_computed_at() {
        let query = crate::protocol::Query::MeasureSpec {
            name: "hot".to_string(),
            primitive: osarch_kernel::Primitive::all()[0],
        };
        let mut doc_a = osarch_cpu::Arch::all()[0].spec();
        doc_a.clock_mhz = 25.0;
        let mut doc_b = doc_a.clone();
        doc_b.clock_mhz = 40.0;
        let before = crate::registry::SpecSnapshot::builtins()
            .with_spec(&doc_a.to_json("hot"), 2)
            .expect("valid doc");
        let after = before
            .with_spec(&doc_b.to_json("hot"), 3)
            .expect("valid doc");

        let cache = ShardedCache::new(4);
        let key_a = query.cache_key(&before).expect("cacheable");
        let key_b = query.cache_key(&after).expect("cacheable");
        let good_a = cache.get_or_compute_resilient(&key_a, || query.compute(&before));
        let good_b = cache.get_or_compute_resilient(&key_b, || query.compute(&after));
        let (Fetched::Computed(good_a), Fetched::Computed(good_b)) = (good_a, good_b) else {
            panic!("both epochs compute fresh");
        };
        assert_ne!(good_a, good_b, "the swap must change the payload");

        // Invalidate both flights (the landed slots), keeping the
        // last-good sidecars — then fail both recomputations. Each key
        // must degrade to the bytes its own epoch computed.
        for (key, expected) in [(&key_a, &good_a), (&key_b, &good_b)] {
            lock(&cache.shard_for(key).flights).remove(key.as_str());
            match cache.get_or_compute_resilient(key, || panic!("recompute down")) {
                Fetched::Degraded(stale, _) => assert_eq!(
                    &stale, expected,
                    "degraded bytes must come from the key's own epoch"
                ),
                other => panic!("expected Degraded, got {other:?}"),
            }
        }
    }
}
