//! The sharded single-flight response cache.
//!
//! Every query the server answers is a pure function of its key (the
//! simulator is deterministic), so the serving layer never needs to run a
//! computation twice — and under concurrency it must not run the *same*
//! computation twice at the *same* time. [`ShardedCache`] gives both
//! properties:
//!
//! * **Sharding** — keys hash to one of N independent shards, each behind
//!   its own mutex, so unrelated requests never contend on a global lock.
//! * **Single flight** — the first requester of a key installs an
//!   in-flight slot and computes *outside* every lock; concurrent
//!   requesters for the same key park on the slot's condvar and share the
//!   one result when it lands (a "coalesced wait").
//!
//! This is the serving-layer analogue of the paper's argument about fixed
//! per-operation overheads: the expensive part of a request is a fixed
//! per-key simulation cost, so amortizing it across requests is the whole
//! ballgame.

use std::collections::HashMap;
use std::hash::{BuildHasher, Hasher, RandomState};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Condvar, Mutex};

/// The state of one key's computation.
enum Flight {
    /// Someone is computing; park on the condvar.
    Pending,
    /// The computation landed (or failed); share the result.
    Done(Arc<str>),
}

/// One key's slot: flight state plus the condvar latecomers park on.
struct Slot {
    state: Mutex<Flight>,
    landed: Condvar,
}

/// Clears a pending slot if the computing closure panics, so parked
/// waiters receive an error result instead of waiting forever.
struct FlightGuard<'a> {
    slot: &'a Slot,
    armed: bool,
}

impl Drop for FlightGuard<'_> {
    fn drop(&mut self) {
        if self.armed {
            let mut state = self
                .slot
                .state
                .lock()
                .unwrap_or_else(std::sync::PoisonError::into_inner);
            *state = Flight::Done(Arc::from("{\"ok\":false,\"error\":\"computation failed\"}"));
            self.slot.landed.notify_all();
        }
    }
}

/// A sharded, single-flight memo cache from string keys to immutable
/// string results.
pub struct ShardedCache {
    shards: Vec<Mutex<HashMap<String, Arc<Slot>>>>,
    hasher: RandomState,
    hits: AtomicU64,
    misses: AtomicU64,
    coalesced: AtomicU64,
}

impl std::fmt::Debug for ShardedCache {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("ShardedCache")
            .field("shards", &self.shards.len())
            .field("hits", &self.hits())
            .field("misses", &self.misses())
            .field("coalesced", &self.coalesced())
            .finish()
    }
}

impl ShardedCache {
    /// A cache with `shards` independent lock domains (clamped to ≥ 1).
    #[must_use]
    pub fn new(shards: usize) -> ShardedCache {
        let shards = shards.max(1);
        ShardedCache {
            shards: (0..shards).map(|_| Mutex::new(HashMap::new())).collect(),
            hasher: RandomState::new(),
            hits: AtomicU64::new(0),
            misses: AtomicU64::new(0),
            coalesced: AtomicU64::new(0),
        }
    }

    /// Number of shards.
    #[must_use]
    pub fn shard_count(&self) -> usize {
        self.shards.len()
    }

    fn shard_for(&self, key: &str) -> &Mutex<HashMap<String, Arc<Slot>>> {
        let mut hasher = self.hasher.build_hasher();
        hasher.write(key.as_bytes());
        let index = (hasher.finish() as usize) % self.shards.len();
        &self.shards[index]
    }

    /// The cached result for `key`, computing it with `compute` on first
    /// request. Exactly one caller per key runs `compute`; everyone else
    /// either hits the finished result or parks until the in-flight
    /// computation lands. Returns the result and whether it was served
    /// from cache (a hit or a coalesced wait).
    pub fn get_or_compute<F>(&self, key: &str, compute: F) -> (Arc<str>, bool)
    where
        F: FnOnce() -> String,
    {
        let (slot, leader) = {
            let mut shard = self
                .shard_for(key)
                .lock()
                .unwrap_or_else(std::sync::PoisonError::into_inner);
            match shard.get(key) {
                Some(slot) => (Arc::clone(slot), false),
                None => {
                    let slot = Arc::new(Slot {
                        state: Mutex::new(Flight::Pending),
                        landed: Condvar::new(),
                    });
                    shard.insert(key.to_string(), Arc::clone(&slot));
                    (slot, true)
                }
            }
        };
        if leader {
            self.misses.fetch_add(1, Ordering::Relaxed);
            let mut guard = FlightGuard {
                slot: &slot,
                armed: true,
            };
            let result: Arc<str> = Arc::from(compute());
            guard.armed = false;
            let mut state = slot
                .state
                .lock()
                .unwrap_or_else(std::sync::PoisonError::into_inner);
            *state = Flight::Done(Arc::clone(&result));
            drop(state);
            slot.landed.notify_all();
            return (result, false);
        }
        let mut state = slot
            .state
            .lock()
            .unwrap_or_else(std::sync::PoisonError::into_inner);
        if matches!(*state, Flight::Pending) {
            self.coalesced.fetch_add(1, Ordering::Relaxed);
            while matches!(*state, Flight::Pending) {
                state = slot
                    .landed
                    .wait(state)
                    .unwrap_or_else(std::sync::PoisonError::into_inner);
            }
        } else {
            self.hits.fetch_add(1, Ordering::Relaxed);
        }
        match &*state {
            Flight::Done(result) => (Arc::clone(result), true),
            Flight::Pending => unreachable!("left the wait loop with the flight pending"),
        }
    }

    /// Requests served from an already-landed result.
    #[must_use]
    pub fn hits(&self) -> u64 {
        self.hits.load(Ordering::Relaxed)
    }

    /// Requests that ran the computation.
    #[must_use]
    pub fn misses(&self) -> u64 {
        self.misses.load(Ordering::Relaxed)
    }

    /// Requests that parked on another request's in-flight computation.
    #[must_use]
    pub fn coalesced(&self) -> u64 {
        self.coalesced.load(Ordering::Relaxed)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn second_request_hits() {
        let cache = ShardedCache::new(4);
        let (a, cached_a) = cache.get_or_compute("k", || "v".to_string());
        let (b, cached_b) = cache.get_or_compute("k", || panic!("must not recompute"));
        assert_eq!((&*a, cached_a), ("v", false));
        assert_eq!((&*b, cached_b), ("v", true));
        assert_eq!((cache.misses(), cache.hits(), cache.coalesced()), (1, 1, 0));
    }

    #[test]
    fn distinct_keys_compute_independently() {
        let cache = ShardedCache::new(2);
        for i in 0..10 {
            let key = format!("k{i}");
            let (value, _) = cache.get_or_compute(&key, || format!("v{i}"));
            assert_eq!(&*value, &format!("v{i}"));
        }
        assert_eq!(cache.misses(), 10);
    }

    #[test]
    fn concurrent_same_key_coalesces_to_one_computation() {
        use std::sync::Barrier;
        let cache = ShardedCache::new(8);
        let computations = AtomicU64::new(0);
        let barrier = Barrier::new(8);
        std::thread::scope(|scope| {
            for _ in 0..8 {
                scope.spawn(|| {
                    barrier.wait();
                    let (value, _) = cache.get_or_compute("hot", || {
                        computations.fetch_add(1, Ordering::Relaxed);
                        // Hold the flight open long enough that the other
                        // threads arrive while it is pending.
                        std::thread::sleep(std::time::Duration::from_millis(20));
                        "result".to_string()
                    });
                    assert_eq!(&*value, "result");
                });
            }
        });
        assert_eq!(computations.load(Ordering::Relaxed), 1);
        assert_eq!(cache.misses(), 1);
        assert_eq!(cache.hits() + cache.coalesced(), 7);
    }

    #[test]
    fn shard_count_is_clamped() {
        assert_eq!(ShardedCache::new(0).shard_count(), 1);
        assert_eq!(ShardedCache::new(16).shard_count(), 16);
    }
}
