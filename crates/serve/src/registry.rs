//! The versioned, hot-swappable spec registry.
//!
//! Architectures are data: the seven built-ins are registry **epoch 1**,
//! and every accepted `osarch-spec/1` document after that produces a new
//! epoch-numbered, immutable [`SpecSnapshot`]. The active snapshot sits
//! behind an `Arc` swap — each request captures the `Arc` at admission
//! and keeps it for its whole lifetime, so in-flight work always
//! finishes against the spec set it started under, while new admissions
//! see the new epoch immediately.
//!
//! Epochs only ever increase (a rollback installs the last-good
//! *content* at a *new* epoch), and every snapshot's cache-key prefix
//! embeds both the epoch and a content hash, so the single-flight cache
//! and its `last_good` sidecar can never alias entries across a swap —
//! not even when a cluster node adopts a remote snapshot whose epoch it
//! has already used locally.

use osarch_cpu::ArchSpec;
use osarch_telemetry::Histogram;
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::{Arc, Mutex};

/// One loaded spec: its registry name, its canonical document, and the
/// parsed form the kernel measures.
#[derive(Debug, Clone)]
pub struct SpecEntry {
    /// Registry name (the document's `name` field).
    pub name: String,
    /// The canonical `osarch-spec/1` document ([`ArchSpec::to_json`]).
    pub doc: String,
    /// The parsed spec.
    pub spec: ArchSpec,
}

/// An immutable, epoch-numbered view of the registry: the built-ins
/// plus every loaded spec active at that epoch.
#[derive(Debug, Clone)]
pub struct SpecSnapshot {
    epoch: u64,
    /// Sorted by name (names are unique).
    entries: Vec<SpecEntry>,
    hash: u64,
    key_prefix: String,
}

/// FNV-1a over the sorted canonical documents: equal content hashes
/// equally on every node, independent of epoch and load order.
fn content_hash(entries: &[SpecEntry]) -> u64 {
    let mut hash = 0xcbf2_9ce4_8422_2325u64;
    for entry in entries {
        for byte in entry.doc.bytes().chain([0]) {
            hash ^= u64::from(byte);
            hash = hash.wrapping_mul(0x0000_0100_0000_01b3);
        }
    }
    hash
}

impl SpecSnapshot {
    /// The first epoch: the seven built-in architectures, no loaded
    /// specs.
    #[must_use]
    pub fn builtins() -> SpecSnapshot {
        SpecSnapshot::from_entries(Vec::new(), 1)
    }

    fn from_entries(mut entries: Vec<SpecEntry>, epoch: u64) -> SpecSnapshot {
        entries.sort_by(|a, b| a.name.cmp(&b.name));
        let hash = content_hash(&entries);
        SpecSnapshot {
            epoch,
            hash,
            key_prefix: format!("e{epoch}-{hash:016x}/"),
            entries,
        }
    }

    /// A new snapshot with `doc` loaded (replacing any same-named spec)
    /// at the given epoch.
    ///
    /// # Errors
    ///
    /// Returns the codec's one-line reason when `doc` is not a valid
    /// `osarch-spec/1` document.
    pub fn with_spec(&self, doc: &str, epoch: u64) -> Result<SpecSnapshot, String> {
        let (name, spec) = ArchSpec::from_json(doc)?;
        let canonical = spec.to_json(&name);
        let mut entries: Vec<SpecEntry> = self
            .entries
            .iter()
            .filter(|e| e.name != name)
            .cloned()
            .collect();
        entries.push(SpecEntry {
            name,
            doc: canonical,
            spec,
        });
        Ok(SpecSnapshot::from_entries(entries, epoch))
    }

    /// This snapshot's content at a different epoch — the rollback
    /// primitive (last-good content, strictly newer epoch).
    #[must_use]
    pub fn at_epoch(&self, epoch: u64) -> SpecSnapshot {
        SpecSnapshot::from_entries(self.entries.clone(), epoch)
    }

    /// Rebuild a snapshot from raw documents at an explicit epoch — the
    /// cluster adoption path (`spec-fetch` pull).
    ///
    /// # Errors
    ///
    /// Returns the codec's reason for the first invalid document.
    pub fn from_docs(docs: &[String], epoch: u64) -> Result<SpecSnapshot, String> {
        let mut snapshot = SpecSnapshot::from_entries(Vec::new(), epoch);
        for doc in docs {
            snapshot = snapshot.with_spec(doc, epoch)?;
        }
        Ok(snapshot)
    }

    /// The registry epoch this snapshot is.
    #[must_use]
    pub fn epoch(&self) -> u64 {
        self.epoch
    }

    /// The epoch-and-content cache-key prefix (`e{epoch}-{hash:016x}/`).
    #[must_use]
    pub fn key_prefix(&self) -> &str {
        &self.key_prefix
    }

    /// The gossip digest: `{epoch}:{content hash}`. Two nodes with equal
    /// digests serve byte-identical spec sets under equal cache keys.
    #[must_use]
    pub fn digest(&self) -> String {
        format!("{}:{:016x}", self.epoch, self.hash)
    }

    /// Look up a loaded spec by name.
    #[must_use]
    pub fn spec(&self, name: &str) -> Option<&ArchSpec> {
        self.entries
            .binary_search_by(|e| e.name.as_str().cmp(name))
            .ok()
            .map(|i| &self.entries[i].spec)
    }

    /// Every loaded spec, sorted by name.
    #[must_use]
    pub fn entries(&self) -> &[SpecEntry] {
        &self.entries
    }

    /// The `spec-fetch` payload: epoch, digest, and every canonical
    /// document (as JSON-escaped strings).
    #[must_use]
    pub fn fetch_payload(&self) -> String {
        let docs: Vec<String> = self
            .entries
            .iter()
            .map(|e| format!("\"{}\"", osarch_core::metrics::json_escape(&e.doc)))
            .collect();
        format!(
            "{{\"epoch\":{},\"digest\":\"{}\",\"specs\":[{}]}}",
            self.epoch,
            self.digest(),
            docs.join(",")
        )
    }
}

/// Parse the `result` payload of a `spec-fetch` reply back into
/// `(epoch, docs)` — the pull side of cluster spec convergence.
///
/// # Errors
///
/// Returns a one-line reason when the payload does not carry an
/// `epoch` number and a `specs` string array.
pub fn parse_spec_fetch(payload: &str) -> Result<(u64, Vec<String>), String> {
    let epoch_at = payload
        .find("\"epoch\":")
        .ok_or_else(|| "spec-fetch payload missing \"epoch\"".to_string())?
        + "\"epoch\":".len();
    let epoch: u64 = payload[epoch_at..]
        .chars()
        .take_while(char::is_ascii_digit)
        .collect::<String>()
        .parse()
        .map_err(|_| "spec-fetch payload has a malformed epoch".to_string())?;
    let specs_at = payload
        .find("\"specs\":[")
        .ok_or_else(|| "spec-fetch payload missing \"specs\"".to_string())?
        + "\"specs\":[".len();
    let mut docs = Vec::new();
    let bytes = payload.as_bytes();
    let mut pos = specs_at;
    loop {
        while bytes.get(pos).is_some_and(|b| matches!(b, b' ' | b',')) {
            pos += 1;
        }
        match bytes.get(pos) {
            Some(b']') => return Ok((epoch, docs)),
            Some(b'"') => docs.push(read_json_string(payload, &mut pos)?),
            _ => return Err("spec-fetch payload has a malformed specs array".to_string()),
        }
    }
}

/// Read one JSON string literal starting at `pos` (which must point at
/// the opening quote), decoding escapes.
fn read_json_string(text: &str, pos: &mut usize) -> Result<String, String> {
    let bytes = text.as_bytes();
    if bytes.get(*pos) != Some(&b'"') {
        return Err("expected a string".to_string());
    }
    *pos += 1;
    let mut out = String::new();
    loop {
        let rest = &text[*pos..];
        let mut chars = rest.char_indices();
        match chars.next() {
            None => return Err("unterminated string".to_string()),
            Some((_, '"')) => {
                *pos += 1;
                return Ok(out);
            }
            Some((_, '\\')) => {
                *pos += 1;
                match bytes.get(*pos) {
                    Some(b'"') => out.push('"'),
                    Some(b'\\') => out.push('\\'),
                    Some(b'/') => out.push('/'),
                    Some(b'n') => out.push('\n'),
                    Some(b'r') => out.push('\r'),
                    Some(b't') => out.push('\t'),
                    Some(b'b') => out.push('\u{8}'),
                    Some(b'f') => out.push('\u{c}'),
                    Some(b'u') => {
                        let hex = text
                            .get(*pos + 1..*pos + 5)
                            .ok_or_else(|| "truncated \\u escape".to_string())?;
                        let code = u32::from_str_radix(hex, 16)
                            .map_err(|_| "invalid \\u escape".to_string())?;
                        out.push(char::from_u32(code).unwrap_or('\u{fffd}'));
                        *pos += 4;
                    }
                    _ => return Err("invalid escape".to_string()),
                }
                *pos += 1;
            }
            Some((i, c)) => {
                out.push(c);
                *pos += i + c.len_utf8();
            }
        }
    }
}

/// The registry proper: the active snapshot behind an `Arc` swap, the
/// staging area `spec-load` fills, the last-good snapshot automatic
/// rollback restores, and the swap telemetry.
#[derive(Debug)]
pub struct SpecRegistry {
    active: Mutex<Arc<SpecSnapshot>>,
    /// Validated-but-not-activated documents, by name.
    staged: Mutex<Vec<(String, String)>>,
    last_good: Mutex<Arc<SpecSnapshot>>,
    swaps: AtomicU64,
    rollbacks: AtomicU64,
    swap_latency: Mutex<Histogram>,
    /// Armed by the admin path when chaos plans a mid-swap loop death;
    /// the event loop checks it *outside* the dispatch `catch_unwind`
    /// and dies for real (the respawn path must preserve the committed
    /// epoch).
    pub swap_loop_death: AtomicBool,
}

impl Default for SpecRegistry {
    fn default() -> SpecRegistry {
        SpecRegistry::new()
    }
}

impl SpecRegistry {
    /// A registry serving the built-ins as epoch 1.
    #[must_use]
    pub fn new() -> SpecRegistry {
        let builtins = Arc::new(SpecSnapshot::builtins());
        SpecRegistry {
            active: Mutex::new(Arc::clone(&builtins)),
            staged: Mutex::new(Vec::new()),
            last_good: Mutex::new(builtins),
            swaps: AtomicU64::new(0),
            rollbacks: AtomicU64::new(0),
            swap_latency: Mutex::new(Histogram::new()),
            swap_loop_death: AtomicBool::new(false),
        }
    }

    /// The active snapshot. Cheap (one `Arc` clone under a short lock);
    /// callers keep the `Arc` for the lifetime of the work it covers.
    #[must_use]
    pub fn snapshot(&self) -> Arc<SpecSnapshot> {
        Arc::clone(&lock_poisoned(&self.active))
    }

    /// Stage a validated document. Returns the spec name.
    ///
    /// # Errors
    ///
    /// Returns the validator's one-line reason for a bad document.
    pub fn stage(&self, doc: &str) -> Result<String, String> {
        let (name, spec) = osarch_core::metrics::validate_spec_json(doc)?;
        let canonical = spec.to_json(&name);
        let mut staged = lock_poisoned(&self.staged);
        staged.retain(|(n, _)| *n != name);
        staged.push((name.clone(), canonical));
        staged.sort_by(|a, b| a.0.cmp(&b.0));
        Ok(name)
    }

    /// Names currently staged, sorted.
    #[must_use]
    pub fn staged_names(&self) -> Vec<String> {
        lock_poisoned(&self.staged)
            .iter()
            .map(|(n, _)| n.clone())
            .collect()
    }

    /// The staged canonical document for `name`, if any.
    #[must_use]
    pub fn staged_doc(&self, name: &str) -> Option<String> {
        lock_poisoned(&self.staged)
            .iter()
            .find(|(n, _)| n == name)
            .map(|(_, doc)| doc.clone())
    }

    /// Commit a successor snapshot: the prior active becomes last-good,
    /// the successor becomes active. Fails (leaving the registry
    /// untouched) when the successor's epoch is not strictly newer —
    /// the case where a concurrent admin call won the race.
    ///
    /// # Errors
    ///
    /// Returns the already-active epoch on a lost race.
    pub fn commit(&self, next: SpecSnapshot) -> Result<Arc<SpecSnapshot>, u64> {
        let mut active = lock_poisoned(&self.active);
        if next.epoch() <= active.epoch() {
            return Err(active.epoch());
        }
        let next = Arc::new(next);
        *lock_poisoned(&self.last_good) = Arc::clone(&active);
        *active = Arc::clone(&next);
        self.swaps.fetch_add(1, Ordering::Relaxed);
        Ok(next)
    }

    /// Roll back to the last-good content at a fresh epoch (the
    /// `fault_crate_swap` analogue). Also drops the failed spec from
    /// staging if `failed` names it, so it cannot be re-activated
    /// verbatim by mistake.
    pub fn rollback(&self, failed: Option<&str>) -> Arc<SpecSnapshot> {
        let mut active = lock_poisoned(&self.active);
        let good = Arc::clone(&lock_poisoned(&self.last_good));
        let restored = Arc::new(good.at_epoch(active.epoch() + 1));
        *active = Arc::clone(&restored);
        self.swaps.fetch_add(1, Ordering::Relaxed);
        self.rollbacks.fetch_add(1, Ordering::Relaxed);
        if let Some(name) = failed {
            lock_poisoned(&self.staged).retain(|(n, _)| n != name);
        }
        restored
    }

    /// Adopt a remote snapshot (cluster convergence): installed only
    /// when strictly newer than the local epoch, at the *remote* epoch,
    /// so converged nodes share one digest. Last-good moves with it —
    /// an adopted spec set has already survived the admin node's probe.
    pub fn adopt(&self, remote: SpecSnapshot) -> bool {
        let mut active = lock_poisoned(&self.active);
        if remote.epoch() <= active.epoch() {
            return false;
        }
        let remote = Arc::new(remote);
        *lock_poisoned(&self.last_good) = Arc::clone(&remote);
        *active = remote;
        self.swaps.fetch_add(1, Ordering::Relaxed);
        true
    }

    /// Swaps committed (activations, rollbacks and adoptions all swap).
    #[must_use]
    pub fn swaps(&self) -> u64 {
        self.swaps.load(Ordering::Relaxed)
    }

    /// Automatic or explicit rollbacks performed.
    #[must_use]
    pub fn rollbacks(&self) -> u64 {
        self.rollbacks.load(Ordering::Relaxed)
    }

    /// Record one committed swap's end-to-end latency (commit + probe).
    pub fn record_swap_latency(&self, us: u64) {
        lock_poisoned(&self.swap_latency).record(us);
    }

    /// The swap-latency histogram, cloned for exposition.
    #[must_use]
    pub fn swap_latency(&self) -> Histogram {
        lock_poisoned(&self.swap_latency).clone()
    }
}

/// Registry state stays consistent under panics elsewhere: every mutation
/// is a short critical section over already-built values, so a poisoned
/// lock's data is still coherent — keep serving.
fn lock_poisoned<T>(mutex: &Mutex<T>) -> std::sync::MutexGuard<'_, T> {
    match mutex.lock() {
        Ok(guard) => guard,
        Err(poisoned) => poisoned.into_inner(),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use osarch_cpu::Arch;

    fn doc(name: &str, clock: f64) -> String {
        let mut spec = Arch::R3000.spec();
        spec.clock_mhz = clock;
        spec.to_json(name)
    }

    #[test]
    fn builtins_are_epoch_one_and_prefixes_embed_content() {
        let snapshot = SpecSnapshot::builtins();
        assert_eq!(snapshot.epoch(), 1);
        assert!(snapshot.key_prefix().starts_with("e1-"));
        assert!(snapshot.key_prefix().ends_with('/'));
        assert!(snapshot.entries().is_empty());
        // Same content at a different epoch: same hash, different prefix.
        let later = snapshot.at_epoch(7);
        assert_eq!(
            later.digest().split(':').nth(1),
            snapshot.digest().split(':').nth(1)
        );
        assert_ne!(later.key_prefix(), snapshot.key_prefix());
    }

    #[test]
    fn with_spec_replaces_by_name_and_changes_the_hash() {
        let base = SpecSnapshot::builtins();
        let a = base.with_spec(&doc("hot", 25.0), 2).unwrap();
        let b = a.with_spec(&doc("hot", 50.0), 3).unwrap();
        assert_eq!(a.entries().len(), 1);
        assert_eq!(b.entries().len(), 1);
        assert_ne!(
            a.digest().split(':').nth(1),
            b.digest().split(':').nth(1),
            "content change must change the hash"
        );
        assert!((b.spec("hot").unwrap().clock_mhz - 50.0).abs() < 1e-9);
        assert!(a.spec("missing").is_none());
    }

    #[test]
    fn fetch_payload_round_trips_through_the_parser() {
        let snapshot = SpecSnapshot::builtins()
            .with_spec(&doc("alpha", 20.0), 4)
            .unwrap()
            .with_spec(&doc("beta", 30.0), 4)
            .unwrap();
        let payload = snapshot.fetch_payload();
        assert_eq!(osarch_core::metrics::validate_json(&payload), Ok(()));
        let (epoch, docs) = parse_spec_fetch(&payload).unwrap();
        assert_eq!(epoch, 4);
        assert_eq!(docs.len(), 2);
        let rebuilt = SpecSnapshot::from_docs(&docs, epoch).unwrap();
        assert_eq!(rebuilt.digest(), snapshot.digest());
        assert_eq!(rebuilt.key_prefix(), snapshot.key_prefix());
    }

    #[test]
    fn registry_commit_rollback_and_lost_races() {
        let registry = SpecRegistry::new();
        assert_eq!(registry.snapshot().epoch(), 1);
        let name = registry.stage(&doc("hot", 25.0)).unwrap();
        assert_eq!(name, "hot");
        assert_eq!(registry.staged_names(), vec!["hot".to_string()]);

        let base = registry.snapshot();
        let candidate = base
            .with_spec(&registry.staged_doc("hot").unwrap(), base.epoch() + 1)
            .unwrap();
        let active = registry.commit(candidate.clone()).unwrap();
        assert_eq!(active.epoch(), 2);
        assert_eq!(registry.swaps(), 1);
        // A stale candidate (same epoch) loses the race cleanly.
        assert_eq!(registry.commit(candidate).err(), Some(2));

        // Rollback restores last-good content at a strictly newer epoch.
        let restored = registry.rollback(Some("hot"));
        assert_eq!(restored.epoch(), 3);
        assert!(restored.spec("hot").is_none(), "builtin content restored");
        assert_eq!(registry.rollbacks(), 1);
        assert_eq!(registry.swaps(), 2);
        assert!(registry.staged_names().is_empty(), "failed spec unstaged");
    }

    #[test]
    fn adopt_installs_only_strictly_newer_remote_epochs() {
        let registry = SpecRegistry::new();
        let remote = SpecSnapshot::builtins()
            .with_spec(&doc("remote", 40.0), 5)
            .unwrap();
        assert!(registry.adopt(remote.clone()));
        assert_eq!(registry.snapshot().epoch(), 5);
        assert_eq!(registry.snapshot().digest(), remote.digest());
        assert!(!registry.adopt(remote), "same epoch must be refused");
        assert_eq!(registry.swaps(), 1);
    }

    #[test]
    fn bad_documents_are_refused_at_staging() {
        let registry = SpecRegistry::new();
        let err = registry.stage("{\"schema\":\"nope\"}").unwrap_err();
        assert!(!err.is_empty() && !err.contains('\n'), "{err}");
        assert!(registry.staged_names().is_empty());
    }
}
