//! Serving-side observability: monotonic counters, a bounded latency
//! reservoir, and the recent-request span ring.
//!
//! The `/stats` query snapshots this state through the same
//! [`CounterRegistry`] + `counters_json` machinery the tracing subsystem
//! uses, so consumers read one counter schema everywhere; request spans
//! are [`osarch_trace::Event`]s under [`Category::Serve`].

use osarch_core::metrics::{self, json_number};
use osarch_core::stats::LatencySummary;
use osarch_trace::{Category, CounterRegistry, Event};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Mutex;

/// How many latency samples the reservoir keeps (newest kept; the
/// reservoir is large enough that a smoke run never wraps).
const LATENCY_RESERVOIR: usize = 1 << 16;

/// How many recent request spans the `spans` query can return.
const SPAN_RING: usize = 256;

/// Monotonic serving counters plus the latency reservoir.
#[derive(Debug, Default)]
pub struct ServeStats {
    requests: AtomicU64,
    errors: AtomicU64,
    rejected: AtomicU64,
    deadline_exceeded: AtomicU64,
    panics: AtomicU64,
    degraded: AtomicU64,
    worker_respawns: AtomicU64,
    workers_live: AtomicU64,
    faults_injected: AtomicU64,
    conns_opened: AtomicU64,
    latencies_us: Mutex<Vec<u64>>,
    spans: Mutex<Vec<Event>>,
}

impl ServeStats {
    /// Fresh, all-zero stats.
    #[must_use]
    pub fn new() -> ServeStats {
        ServeStats::default()
    }

    /// Record one served request: its span (timestamped in µs since the
    /// server started) and its service time.
    pub fn record_request(&self, op: &'static str, start_us: u64, service_us: u64, cached: bool) {
        self.requests.fetch_add(1, Ordering::Relaxed);
        let mut latencies = self
            .latencies_us
            .lock()
            .unwrap_or_else(std::sync::PoisonError::into_inner);
        if latencies.len() < LATENCY_RESERVOIR {
            latencies.push(service_us);
        }
        drop(latencies);
        let event = Event::complete(op, Category::Serve, start_us, service_us)
            .with_arg("cached", u64::from(cached));
        let mut spans = self
            .spans
            .lock()
            .unwrap_or_else(std::sync::PoisonError::into_inner);
        if spans.len() >= SPAN_RING {
            spans.remove(0);
        }
        spans.push(event);
    }

    /// Record a request answered with an error envelope.
    pub fn record_error(&self) {
        self.errors.fetch_add(1, Ordering::Relaxed);
    }

    /// Record a connection rejected by queue backpressure.
    pub fn record_rejected(&self) {
        self.rejected.fetch_add(1, Ordering::Relaxed);
    }

    /// Record a request that blew its service deadline.
    pub fn record_deadline_exceeded(&self) {
        self.deadline_exceeded.fetch_add(1, Ordering::Relaxed);
    }

    /// Record a panic contained by per-request isolation (`serve/panic/total`).
    pub fn record_panic(&self) {
        self.panics.fetch_add(1, Ordering::Relaxed);
    }

    /// Record a reply served from the stale last-good value because the
    /// recomputation failed (`serve/degraded/total`).
    pub fn record_degraded(&self) {
        self.degraded.fetch_add(1, Ordering::Relaxed);
    }

    /// Record a worker that died and was respawned in place.
    pub fn record_worker_respawn(&self) {
        self.worker_respawns.fetch_add(1, Ordering::Relaxed);
    }

    /// Record an injected chaos fault observed server-side.
    pub fn record_fault_injected(&self) {
        self.faults_injected.fetch_add(1, Ordering::Relaxed);
    }

    /// Record a connection admitted past the open-connection budget
    /// check (`serve/conn/total`). Monotonic; the instantaneous open
    /// count is tracked by the server's admission gauge instead.
    pub fn record_conn_opened(&self) {
        self.conns_opened.fetch_add(1, Ordering::Relaxed);
    }

    /// A worker thread entered its serving loop.
    pub fn worker_started(&self) {
        self.workers_live.fetch_add(1, Ordering::SeqCst);
    }

    /// A worker thread left its serving loop for good.
    pub fn worker_stopped(&self) {
        self.workers_live.fetch_sub(1, Ordering::SeqCst);
    }

    /// Requests answered with an `ok` envelope.
    #[must_use]
    pub fn requests(&self) -> u64 {
        self.requests.load(Ordering::Relaxed)
    }

    /// Requests answered with an error envelope.
    #[must_use]
    pub fn errors(&self) -> u64 {
        self.errors.load(Ordering::Relaxed)
    }

    /// Connections rejected by backpressure.
    #[must_use]
    pub fn rejected(&self) -> u64 {
        self.rejected.load(Ordering::Relaxed)
    }

    /// Panics contained by per-request isolation.
    #[must_use]
    pub fn panics(&self) -> u64 {
        self.panics.load(Ordering::Relaxed)
    }

    /// Replies served degraded (stale last-good value).
    #[must_use]
    pub fn degraded(&self) -> u64 {
        self.degraded.load(Ordering::Relaxed)
    }

    /// Workers respawned after dying.
    #[must_use]
    pub fn worker_respawns(&self) -> u64 {
        self.worker_respawns.load(Ordering::Relaxed)
    }

    /// Workers currently inside their serving loop.
    #[must_use]
    pub fn workers_live(&self) -> u64 {
        self.workers_live.load(Ordering::SeqCst)
    }

    /// Chaos faults injected server-side.
    #[must_use]
    pub fn faults_injected(&self) -> u64 {
        self.faults_injected.load(Ordering::Relaxed)
    }

    /// Connections admitted over the server's lifetime.
    #[must_use]
    pub fn conns_opened(&self) -> u64 {
        self.conns_opened.load(Ordering::Relaxed)
    }

    /// Summary of the recorded service times (µs).
    #[must_use]
    pub fn latency_summary(&self) -> LatencySummary {
        let latencies = self
            .latencies_us
            .lock()
            .unwrap_or_else(std::sync::PoisonError::into_inner);
        LatencySummary::from_unsorted(&latencies)
    }

    /// The `stats` payload: serving counters (through a
    /// [`CounterRegistry`], exported with the standard `counters_json`
    /// emitter) plus latency percentiles.
    #[must_use]
    pub fn stats_payload(
        &self,
        cache_hits: u64,
        cache_misses: u64,
        cache_coalesced: u64,
        workers: usize,
        shards: usize,
        conns_open: usize,
    ) -> String {
        let mut registry = CounterRegistry::new();
        let mut serve_counter = |name: &str, value: u64| {
            registry.add("serve", "request", "total", name, value);
        };
        serve_counter("requests", self.requests());
        serve_counter("errors", self.errors());
        serve_counter("rejected", self.rejected());
        serve_counter(
            "deadline_exceeded",
            self.deadline_exceeded.load(Ordering::Relaxed),
        );
        serve_counter("panics", self.panics());
        serve_counter("degraded", self.degraded());
        serve_counter("worker_respawns", self.worker_respawns());
        serve_counter("faults_injected", self.faults_injected());
        serve_counter("conns_opened", self.conns_opened());
        serve_counter("cache_hits", cache_hits);
        serve_counter("cache_misses", cache_misses);
        serve_counter("cache_coalesced", cache_coalesced);
        let latency = self.latency_summary();
        format!(
            concat!(
                "{{\"workers\":{},\"shards\":{},\"conns_open\":{},",
                "\"latency_us\":{{\"count\":{},\"p50\":{},\"p90\":{},\"p99\":{},",
                "\"max\":{},\"mean\":{}}},\"counters\":{}}}"
            ),
            workers,
            shards,
            conns_open,
            latency.count,
            latency.p50,
            latency.p90,
            latency.p99,
            latency.max,
            json_number(latency.mean),
            metrics::counters_json(&registry).trim_end(),
        )
    }

    /// The `health` payload: liveness in one line. `queue_depth` is the
    /// instantaneous compute-offload backlog, `conns_open` the number of
    /// connections currently admitted; `workers_live` counts event loops
    /// inside their serving loop (respawns keep it at `workers`); the
    /// resilience counters let a prober distinguish "healthy", "degraded
    /// but serving", and "shedding load" without scraping full stats.
    #[must_use]
    pub fn health_payload(
        &self,
        queue_depth: usize,
        conns_open: usize,
        workers: usize,
        shutting_down: bool,
    ) -> String {
        let live = self.workers_live();
        let status = if shutting_down {
            "shutting_down"
        } else if live < workers as u64 {
            "impaired"
        } else if self.degraded() > 0 || self.panics() > 0 {
            "degraded"
        } else {
            "ok"
        };
        format!(
            concat!(
                "{{\"status\":\"{}\",\"workers\":{},\"workers_live\":{},",
                "\"queue_depth\":{},\"conns_open\":{},\"shutting_down\":{},",
                "\"panics\":{},\"degraded\":{},\"worker_respawns\":{},",
                "\"faults_injected\":{},\"requests\":{},\"errors\":{},\"rejected\":{}}}"
            ),
            status,
            workers,
            live,
            queue_depth,
            conns_open,
            shutting_down,
            self.panics(),
            self.degraded(),
            self.worker_respawns(),
            self.faults_injected(),
            self.requests(),
            self.errors(),
            self.rejected(),
        )
    }

    /// The `spans` payload: the most recent request spans, oldest first.
    #[must_use]
    pub fn spans_payload(&self) -> String {
        let spans = self
            .spans
            .lock()
            .unwrap_or_else(std::sync::PoisonError::into_inner);
        let items: Vec<String> = spans
            .iter()
            .map(|event| {
                format!(
                    "{{\"name\":\"{}\",\"cat\":\"{}\",\"ts\":{},\"dur\":{},\"cached\":{}}}",
                    metrics::json_escape(&event.name),
                    event.cat.label(),
                    event.ts,
                    event.dur,
                    event.arg("cached").unwrap_or(0)
                )
            })
            .collect();
        format!("{{\"spans\":[{}]}}", items.join(","))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use osarch_core::metrics::validate_json;

    #[test]
    fn payloads_are_valid_json_and_count() {
        let stats = ServeStats::new();
        stats.record_request("measure", 0, 120, false);
        stats.record_request("measure", 200, 10, true);
        stats.record_error();
        stats.record_conn_opened();
        let payload = stats.stats_payload(5, 2, 1, 4, 16, 9);
        assert_eq!(validate_json(&payload), Ok(()), "{payload}");
        assert!(payload.contains("\"name\":\"requests\",\"value\":2"));
        assert!(payload.contains("\"name\":\"cache_hits\",\"value\":5"));
        assert!(payload.contains("\"name\":\"conns_opened\",\"value\":1"));
        assert!(payload.contains("\"conns_open\":9"), "{payload}");
        assert!(payload.contains("\"p50\":"));
        let spans = stats.spans_payload();
        assert_eq!(validate_json(&spans), Ok(()), "{spans}");
        assert_eq!(spans.matches("\"cat\":\"serve\"").count(), 2);
    }

    #[test]
    fn health_payload_reflects_liveness_and_degradation() {
        let stats = ServeStats::new();
        stats.worker_started();
        stats.worker_started();
        let healthy = stats.health_payload(3, 5, 2, false);
        assert_eq!(validate_json(&healthy), Ok(()), "{healthy}");
        assert!(healthy.contains("\"status\":\"ok\""), "{healthy}");
        assert!(healthy.contains("\"workers_live\":2"), "{healthy}");
        assert!(healthy.contains("\"queue_depth\":3"), "{healthy}");
        assert!(healthy.contains("\"conns_open\":5"), "{healthy}");

        stats.record_degraded();
        assert!(stats
            .health_payload(0, 0, 2, false)
            .contains("\"status\":\"degraded\""));

        stats.worker_stopped();
        assert!(stats
            .health_payload(0, 0, 2, false)
            .contains("\"status\":\"impaired\""));
        assert!(stats
            .health_payload(0, 0, 2, true)
            .contains("\"status\":\"shutting_down\""));
    }

    #[test]
    fn span_ring_is_bounded() {
        let stats = ServeStats::new();
        for i in 0..(SPAN_RING as u64 + 10) {
            stats.record_request("ping", i, 1, true);
        }
        let spans = stats.spans_payload();
        assert_eq!(spans.matches("\"name\":").count(), SPAN_RING);
        // The oldest spans were evicted: ts 0..9 are gone, ts 10 survives.
        assert!(!spans.contains("\"ts\":9,"));
        assert!(spans.contains("\"ts\":10,"));
    }
}
