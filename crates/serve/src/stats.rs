//! Serving-side observability: monotonic counters, a bounded latency
//! reservoir, and the recent-request span ring.
//!
//! The `/stats` query snapshots this state through the same
//! [`CounterRegistry`] + `counters_json` machinery the tracing subsystem
//! uses, so consumers read one counter schema everywhere; request spans
//! are [`osarch_trace::Event`]s under [`Category::Serve`].

use osarch_core::metrics::{self, json_number};
use osarch_core::stats::LatencySummary;
use osarch_trace::{Category, CounterRegistry, Event};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Mutex;

/// How many latency samples the reservoir keeps (newest kept; the
/// reservoir is large enough that a smoke run never wraps).
const LATENCY_RESERVOIR: usize = 1 << 16;

/// How many recent request spans the `spans` query can return.
const SPAN_RING: usize = 256;

/// Monotonic serving counters plus the latency reservoir.
#[derive(Debug, Default)]
pub struct ServeStats {
    requests: AtomicU64,
    errors: AtomicU64,
    rejected: AtomicU64,
    deadline_exceeded: AtomicU64,
    latencies_us: Mutex<Vec<u64>>,
    spans: Mutex<Vec<Event>>,
}

impl ServeStats {
    /// Fresh, all-zero stats.
    #[must_use]
    pub fn new() -> ServeStats {
        ServeStats::default()
    }

    /// Record one served request: its span (timestamped in µs since the
    /// server started) and its service time.
    pub fn record_request(&self, op: &'static str, start_us: u64, service_us: u64, cached: bool) {
        self.requests.fetch_add(1, Ordering::Relaxed);
        let mut latencies = self
            .latencies_us
            .lock()
            .unwrap_or_else(std::sync::PoisonError::into_inner);
        if latencies.len() < LATENCY_RESERVOIR {
            latencies.push(service_us);
        }
        drop(latencies);
        let event = Event::complete(op, Category::Serve, start_us, service_us)
            .with_arg("cached", u64::from(cached));
        let mut spans = self
            .spans
            .lock()
            .unwrap_or_else(std::sync::PoisonError::into_inner);
        if spans.len() >= SPAN_RING {
            spans.remove(0);
        }
        spans.push(event);
    }

    /// Record a request answered with an error envelope.
    pub fn record_error(&self) {
        self.errors.fetch_add(1, Ordering::Relaxed);
    }

    /// Record a connection rejected by queue backpressure.
    pub fn record_rejected(&self) {
        self.rejected.fetch_add(1, Ordering::Relaxed);
    }

    /// Record a request that blew its service deadline.
    pub fn record_deadline_exceeded(&self) {
        self.deadline_exceeded.fetch_add(1, Ordering::Relaxed);
    }

    /// Requests answered with an `ok` envelope.
    #[must_use]
    pub fn requests(&self) -> u64 {
        self.requests.load(Ordering::Relaxed)
    }

    /// Requests answered with an error envelope.
    #[must_use]
    pub fn errors(&self) -> u64 {
        self.errors.load(Ordering::Relaxed)
    }

    /// Connections rejected by backpressure.
    #[must_use]
    pub fn rejected(&self) -> u64 {
        self.rejected.load(Ordering::Relaxed)
    }

    /// Summary of the recorded service times (µs).
    #[must_use]
    pub fn latency_summary(&self) -> LatencySummary {
        let latencies = self
            .latencies_us
            .lock()
            .unwrap_or_else(std::sync::PoisonError::into_inner);
        LatencySummary::from_unsorted(&latencies)
    }

    /// The `stats` payload: serving counters (through a
    /// [`CounterRegistry`], exported with the standard `counters_json`
    /// emitter) plus latency percentiles.
    #[must_use]
    pub fn stats_payload(
        &self,
        cache_hits: u64,
        cache_misses: u64,
        cache_coalesced: u64,
        workers: usize,
        shards: usize,
    ) -> String {
        let mut registry = CounterRegistry::new();
        let mut serve_counter = |name: &str, value: u64| {
            registry.add("serve", "request", "total", name, value);
        };
        serve_counter("requests", self.requests());
        serve_counter("errors", self.errors());
        serve_counter("rejected", self.rejected());
        serve_counter(
            "deadline_exceeded",
            self.deadline_exceeded.load(Ordering::Relaxed),
        );
        serve_counter("cache_hits", cache_hits);
        serve_counter("cache_misses", cache_misses);
        serve_counter("cache_coalesced", cache_coalesced);
        let latency = self.latency_summary();
        format!(
            concat!(
                "{{\"workers\":{},\"shards\":{},",
                "\"latency_us\":{{\"count\":{},\"p50\":{},\"p90\":{},\"p99\":{},",
                "\"max\":{},\"mean\":{}}},\"counters\":{}}}"
            ),
            workers,
            shards,
            latency.count,
            latency.p50,
            latency.p90,
            latency.p99,
            latency.max,
            json_number(latency.mean),
            metrics::counters_json(&registry).trim_end(),
        )
    }

    /// The `spans` payload: the most recent request spans, oldest first.
    #[must_use]
    pub fn spans_payload(&self) -> String {
        let spans = self
            .spans
            .lock()
            .unwrap_or_else(std::sync::PoisonError::into_inner);
        let items: Vec<String> = spans
            .iter()
            .map(|event| {
                format!(
                    "{{\"name\":\"{}\",\"cat\":\"{}\",\"ts\":{},\"dur\":{},\"cached\":{}}}",
                    metrics::json_escape(&event.name),
                    event.cat.label(),
                    event.ts,
                    event.dur,
                    event.arg("cached").unwrap_or(0)
                )
            })
            .collect();
        format!("{{\"spans\":[{}]}}", items.join(","))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use osarch_core::metrics::validate_json;

    #[test]
    fn payloads_are_valid_json_and_count() {
        let stats = ServeStats::new();
        stats.record_request("measure", 0, 120, false);
        stats.record_request("measure", 200, 10, true);
        stats.record_error();
        let payload = stats.stats_payload(5, 2, 1, 4, 16);
        assert_eq!(validate_json(&payload), Ok(()), "{payload}");
        assert!(payload.contains("\"name\":\"requests\",\"value\":2"));
        assert!(payload.contains("\"name\":\"cache_hits\",\"value\":5"));
        assert!(payload.contains("\"p50\":"));
        let spans = stats.spans_payload();
        assert_eq!(validate_json(&spans), Ok(()), "{spans}");
        assert_eq!(spans.matches("\"cat\":\"serve\"").count(), 2);
    }

    #[test]
    fn span_ring_is_bounded() {
        let stats = ServeStats::new();
        for i in 0..(SPAN_RING as u64 + 10) {
            stats.record_request("ping", i, 1, true);
        }
        let spans = stats.spans_payload();
        assert_eq!(spans.matches("\"name\":").count(), SPAN_RING);
        // The oldest spans were evicted: ts 0..9 are gone, ts 10 survives.
        assert!(!spans.contains("\"ts\":9,"));
        assert!(spans.contains("\"ts\":10,"));
    }
}
