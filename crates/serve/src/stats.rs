//! Serving-side observability: monotonic counters, an exact log-linear
//! latency histogram, and the recent-request span ring.
//!
//! The `/stats` query snapshots this state through the same
//! [`CounterRegistry`] + `counters_json` machinery the tracing subsystem
//! uses, so consumers read one counter schema everywhere; request spans
//! are [`osarch_trace::Event`]s under [`Category::Serve`].
//!
//! Latency percentiles come from an [`osarch_telemetry::Histogram`], not
//! a capped reservoir: every observation is counted at every volume, so
//! the tail percentiles stay honest on long runs (the old reservoir
//! silently stopped admitting at its cap and under-reported p99+).

use osarch_core::metrics::{self, json_number};
use osarch_core::stats::LatencySummary;
use osarch_telemetry::Histogram;
use osarch_trace::{Category, CounterRegistry, Event};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Mutex;

/// How many recent request spans the `spans` query can return.
const SPAN_RING: usize = 256;

/// Every serve-protocol op, in the registry order of
/// [`osarch_core::names::op_names`]. The telemetry hub keys its per-op
/// latency windows by index into this table.
pub const OP_NAMES: [&str; 15] = [
    "ping",
    "measure",
    "table",
    "lint",
    "analyze",
    "trace",
    "counters",
    "stats",
    "spans",
    "metrics",
    "health",
    "cluster",
    "shutdown",
    "admin",
    "spec-fetch",
];

/// The [`OP_NAMES`] index of an op label. Unknown labels (only possible
/// if a new op forgets to register) fold into slot 0 rather than panic.
#[must_use]
pub fn op_slot(op: &str) -> usize {
    OP_NAMES.iter().position(|name| *name == op).unwrap_or(0)
}

/// The instantaneous gauges the server samples for a `health` reply —
/// everything the payload needs that is not a [`ServeStats`] counter.
#[derive(Debug, Clone, Copy, Default)]
pub struct HealthGauges {
    /// Compute-offload backlog right now.
    pub queue_depth: usize,
    /// Connections currently admitted.
    pub conns_open: usize,
    /// Open-connection budget `conns_open` is admitted against.
    pub conn_budget: usize,
    /// Event loops configured.
    pub workers: usize,
    /// Lifetime cache hits (including coalesced waiters).
    pub cache_hits: u64,
    /// Lifetime cache misses.
    pub cache_misses: u64,
    /// Age of the oldest connection with unflushed reply bytes, in ms
    /// (0 when every reply is flushed).
    pub oldest_write_backlog_ms: u64,
    /// Whether graceful shutdown has begun.
    pub shutting_down: bool,
}

/// Monotonic serving counters plus the exact latency histogram.
#[derive(Debug, Default)]
pub struct ServeStats {
    requests: AtomicU64,
    errors: AtomicU64,
    rejected: AtomicU64,
    deadline_exceeded: AtomicU64,
    panics: AtomicU64,
    degraded: AtomicU64,
    worker_respawns: AtomicU64,
    workers_live: AtomicU64,
    faults_injected: AtomicU64,
    conns_opened: AtomicU64,
    latency_hist: Mutex<Histogram>,
    spans: Mutex<Vec<Event>>,
}

impl ServeStats {
    /// Fresh, all-zero stats.
    #[must_use]
    pub fn new() -> ServeStats {
        ServeStats::default()
    }

    /// Record one served request: its span (timestamped in µs since the
    /// server started) and its service time.
    pub fn record_request(&self, op: &'static str, start_us: u64, service_us: u64, cached: bool) {
        self.requests.fetch_add(1, Ordering::Relaxed);
        self.latency_hist
            .lock()
            .unwrap_or_else(std::sync::PoisonError::into_inner)
            .record(service_us);
        let event = Event::complete(op, Category::Serve, start_us, service_us)
            .with_arg("cached", u64::from(cached));
        let mut spans = self
            .spans
            .lock()
            .unwrap_or_else(std::sync::PoisonError::into_inner);
        if spans.len() >= SPAN_RING {
            spans.remove(0);
        }
        spans.push(event);
    }

    /// Record a request answered with an error envelope.
    pub fn record_error(&self) {
        self.errors.fetch_add(1, Ordering::Relaxed);
    }

    /// Record a connection rejected by queue backpressure.
    pub fn record_rejected(&self) {
        self.rejected.fetch_add(1, Ordering::Relaxed);
    }

    /// Record a request that blew its service deadline.
    pub fn record_deadline_exceeded(&self) {
        self.deadline_exceeded.fetch_add(1, Ordering::Relaxed);
    }

    /// Record a panic contained by per-request isolation (`serve/panic/total`).
    pub fn record_panic(&self) {
        self.panics.fetch_add(1, Ordering::Relaxed);
    }

    /// Record a reply served from the stale last-good value because the
    /// recomputation failed (`serve/degraded/total`).
    pub fn record_degraded(&self) {
        self.degraded.fetch_add(1, Ordering::Relaxed);
    }

    /// Record a worker that died and was respawned in place.
    pub fn record_worker_respawn(&self) {
        self.worker_respawns.fetch_add(1, Ordering::Relaxed);
    }

    /// Record an injected chaos fault observed server-side.
    pub fn record_fault_injected(&self) {
        self.faults_injected.fetch_add(1, Ordering::Relaxed);
    }

    /// Record a connection admitted past the open-connection budget
    /// check (`serve/conn/total`). Monotonic; the instantaneous open
    /// count is tracked by the server's admission gauge instead.
    pub fn record_conn_opened(&self) {
        self.conns_opened.fetch_add(1, Ordering::Relaxed);
    }

    /// A worker thread entered its serving loop.
    pub fn worker_started(&self) {
        self.workers_live.fetch_add(1, Ordering::SeqCst);
    }

    /// A worker thread left its serving loop for good.
    pub fn worker_stopped(&self) {
        self.workers_live.fetch_sub(1, Ordering::SeqCst);
    }

    /// Requests answered with an `ok` envelope.
    #[must_use]
    pub fn requests(&self) -> u64 {
        self.requests.load(Ordering::Relaxed)
    }

    /// Requests answered with an error envelope.
    #[must_use]
    pub fn errors(&self) -> u64 {
        self.errors.load(Ordering::Relaxed)
    }

    /// Connections rejected by backpressure.
    #[must_use]
    pub fn rejected(&self) -> u64 {
        self.rejected.load(Ordering::Relaxed)
    }

    /// Requests that blew their service deadline.
    #[must_use]
    pub fn deadline_exceeded(&self) -> u64 {
        self.deadline_exceeded.load(Ordering::Relaxed)
    }

    /// Panics contained by per-request isolation.
    #[must_use]
    pub fn panics(&self) -> u64 {
        self.panics.load(Ordering::Relaxed)
    }

    /// Replies served degraded (stale last-good value).
    #[must_use]
    pub fn degraded(&self) -> u64 {
        self.degraded.load(Ordering::Relaxed)
    }

    /// Workers respawned after dying.
    #[must_use]
    pub fn worker_respawns(&self) -> u64 {
        self.worker_respawns.load(Ordering::Relaxed)
    }

    /// Workers currently inside their serving loop.
    #[must_use]
    pub fn workers_live(&self) -> u64 {
        self.workers_live.load(Ordering::SeqCst)
    }

    /// Chaos faults injected server-side.
    #[must_use]
    pub fn faults_injected(&self) -> u64 {
        self.faults_injected.load(Ordering::Relaxed)
    }

    /// Connections admitted over the server's lifetime.
    #[must_use]
    pub fn conns_opened(&self) -> u64 {
        self.conns_opened.load(Ordering::Relaxed)
    }

    /// Summary of the recorded service times (µs). Histogram-backed:
    /// every observation is counted, so `sampled` is always false.
    #[must_use]
    pub fn latency_summary(&self) -> LatencySummary {
        let hist = self
            .latency_hist
            .lock()
            .unwrap_or_else(std::sync::PoisonError::into_inner);
        LatencySummary::from_histogram(&hist)
    }

    /// The `stats` payload: serving counters (through a
    /// [`CounterRegistry`], exported with the standard `counters_json`
    /// emitter) plus latency percentiles.
    #[must_use]
    pub fn stats_payload(
        &self,
        cache_hits: u64,
        cache_misses: u64,
        cache_coalesced: u64,
        workers: usize,
        shards: usize,
        conns_open: usize,
    ) -> String {
        let mut registry = CounterRegistry::new();
        let mut serve_counter = |name: &str, value: u64| {
            registry.add("serve", "request", "total", name, value);
        };
        serve_counter("requests", self.requests());
        serve_counter("errors", self.errors());
        serve_counter("rejected", self.rejected());
        serve_counter(
            "deadline_exceeded",
            self.deadline_exceeded.load(Ordering::Relaxed),
        );
        serve_counter("panics", self.panics());
        serve_counter("degraded", self.degraded());
        serve_counter("worker_respawns", self.worker_respawns());
        serve_counter("faults_injected", self.faults_injected());
        serve_counter("conns_opened", self.conns_opened());
        serve_counter("cache_hits", cache_hits);
        serve_counter("cache_misses", cache_misses);
        serve_counter("cache_coalesced", cache_coalesced);
        let latency = self.latency_summary();
        format!(
            concat!(
                "{{\"workers\":{},\"shards\":{},\"conns_open\":{},",
                "\"latency_us\":{{\"count\":{},\"samples\":{},\"sampled\":{},",
                "\"p50\":{},\"p90\":{},\"p99\":{},\"p999\":{},",
                "\"max\":{},\"mean\":{}}},\"counters\":{}}}"
            ),
            workers,
            shards,
            conns_open,
            latency.count,
            latency.samples,
            latency.sampled,
            latency.p50,
            latency.p90,
            latency.p99,
            latency.p999,
            latency.max,
            json_number(latency.mean),
            metrics::counters_json(&registry).trim_end(),
        )
    }

    /// The `health` payload: liveness in one line. `queue_depth` is the
    /// instantaneous compute-offload backlog, `conns_open` the number of
    /// connections currently admitted (paired with `conn_budget` so a
    /// prober sees headroom, not just load); `workers_live` counts event
    /// loops inside their serving loop (respawns keep it at `workers`);
    /// the derived gauges — cache hit ratio over lifetime lookups and the
    /// age of the oldest unflushed reply — plus the resilience counters
    /// let a prober distinguish "healthy", "degraded but serving", and
    /// "shedding load" without scraping full stats.
    #[must_use]
    pub fn health_payload(&self, g: &HealthGauges) -> String {
        let live = self.workers_live();
        let status = if g.shutting_down {
            "shutting_down"
        } else if live < g.workers as u64 {
            "impaired"
        } else if self.degraded() > 0 || self.panics() > 0 {
            "degraded"
        } else {
            "ok"
        };
        let lookups = g.cache_hits + g.cache_misses;
        let hit_ratio = if lookups == 0 {
            0.0
        } else {
            g.cache_hits as f64 / lookups as f64
        };
        format!(
            concat!(
                "{{\"status\":\"{}\",\"workers\":{},\"workers_live\":{},",
                "\"queue_depth\":{},\"conns_open\":{},\"conn_budget\":{},",
                "\"cache_hit_ratio\":{},\"oldest_write_backlog_ms\":{},",
                "\"shutting_down\":{},",
                "\"panics\":{},\"degraded\":{},\"worker_respawns\":{},",
                "\"faults_injected\":{},\"requests\":{},\"errors\":{},\"rejected\":{}}}"
            ),
            status,
            g.workers,
            live,
            g.queue_depth,
            g.conns_open,
            g.conn_budget,
            json_number(hit_ratio),
            g.oldest_write_backlog_ms,
            g.shutting_down,
            self.panics(),
            self.degraded(),
            self.worker_respawns(),
            self.faults_injected(),
            self.requests(),
            self.errors(),
            self.rejected(),
        )
    }

    /// The `spans` payload: the most recent request spans, oldest first.
    #[must_use]
    pub fn spans_payload(&self) -> String {
        let spans = self
            .spans
            .lock()
            .unwrap_or_else(std::sync::PoisonError::into_inner);
        let items: Vec<String> = spans
            .iter()
            .map(|event| {
                format!(
                    "{{\"name\":\"{}\",\"cat\":\"{}\",\"ts\":{},\"dur\":{},\"cached\":{}}}",
                    metrics::json_escape(&event.name),
                    event.cat.label(),
                    event.ts,
                    event.dur,
                    event.arg("cached").unwrap_or(0)
                )
            })
            .collect();
        format!("{{\"spans\":[{}]}}", items.join(","))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use osarch_core::metrics::validate_json;

    #[test]
    fn payloads_are_valid_json_and_count() {
        let stats = ServeStats::new();
        stats.record_request("measure", 0, 120, false);
        stats.record_request("measure", 200, 10, true);
        stats.record_error();
        stats.record_conn_opened();
        let payload = stats.stats_payload(5, 2, 1, 4, 16, 9);
        assert_eq!(validate_json(&payload), Ok(()), "{payload}");
        assert!(payload.contains("\"name\":\"requests\",\"value\":2"));
        assert!(payload.contains("\"name\":\"cache_hits\",\"value\":5"));
        assert!(payload.contains("\"name\":\"conns_opened\",\"value\":1"));
        assert!(payload.contains("\"conns_open\":9"), "{payload}");
        assert!(payload.contains("\"p50\":"));
        assert!(payload.contains("\"p999\":"), "{payload}");
        // Histogram-backed: every observation counted, never subsampled.
        assert!(
            payload.contains("\"samples\":2,\"sampled\":false"),
            "{payload}"
        );
        let spans = stats.spans_payload();
        assert_eq!(validate_json(&spans), Ok(()), "{spans}");
        assert_eq!(spans.matches("\"cat\":\"serve\"").count(), 2);
    }

    #[test]
    fn health_payload_reflects_liveness_and_degradation() {
        let stats = ServeStats::new();
        stats.worker_started();
        stats.worker_started();
        let gauges = HealthGauges {
            queue_depth: 3,
            conns_open: 5,
            conn_budget: 64,
            workers: 2,
            cache_hits: 3,
            cache_misses: 1,
            oldest_write_backlog_ms: 17,
            shutting_down: false,
        };
        let healthy = stats.health_payload(&gauges);
        assert_eq!(validate_json(&healthy), Ok(()), "{healthy}");
        assert!(healthy.contains("\"status\":\"ok\""), "{healthy}");
        assert!(healthy.contains("\"workers_live\":2"), "{healthy}");
        assert!(healthy.contains("\"queue_depth\":3"), "{healthy}");
        assert!(healthy.contains("\"conns_open\":5"), "{healthy}");
        assert!(healthy.contains("\"conn_budget\":64"), "{healthy}");
        assert!(healthy.contains("\"cache_hit_ratio\":0.75"), "{healthy}");
        assert!(
            healthy.contains("\"oldest_write_backlog_ms\":17"),
            "{healthy}"
        );

        stats.record_degraded();
        let idle = HealthGauges {
            workers: 2,
            ..HealthGauges::default()
        };
        let payload = stats.health_payload(&idle);
        assert!(payload.contains("\"status\":\"degraded\""));
        // No lookups yet: the ratio degrades to 0, not NaN.
        assert!(payload.contains("\"cache_hit_ratio\":0,"), "{payload}");

        stats.worker_stopped();
        assert!(stats
            .health_payload(&idle)
            .contains("\"status\":\"impaired\""));
        let stopping = HealthGauges {
            shutting_down: true,
            ..idle
        };
        assert!(stats
            .health_payload(&stopping)
            .contains("\"status\":\"shutting_down\""));
    }

    #[test]
    fn op_registry_matches_protocol_order() {
        // Every op in the shared name registry appears in OP_NAMES at the
        // same position, so hub slots and error messages agree.
        let listed: Vec<&str> = osarch_core::names::op_names().split(", ").collect();
        assert_eq!(listed, OP_NAMES.to_vec());
        assert_eq!(op_slot("metrics"), 9);
        assert_eq!(op_slot("cluster"), 11);
        assert_eq!(op_slot("admin"), 13);
        assert_eq!(op_slot("spec-fetch"), 14);
        assert_eq!(op_slot("nonsense"), 0, "unknown ops fold into slot 0");
    }

    #[test]
    fn span_ring_is_bounded() {
        let stats = ServeStats::new();
        for i in 0..(SPAN_RING as u64 + 10) {
            stats.record_request("ping", i, 1, true);
        }
        let spans = stats.spans_payload();
        assert_eq!(spans.matches("\"name\":").count(), SPAN_RING);
        // The oldest spans were evicted: ts 0..9 are gone, ts 10 survives.
        assert!(!spans.contains("\"ts\":9,"));
        assert!(spans.contains("\"ts\":10,"));
    }
}
