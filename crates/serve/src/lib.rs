//! # osarch-serve
//!
//! The long-lived serving layer over the `osarch` simulator: a
//! concurrent TCP query service with a sharded single-flight response
//! cache, plus the load-generator harness that benchmarks it.
//!
//! The ASPLOS 1991 paper's thesis is that OS primitive cost is dominated
//! by *fixed per-operation overheads* that fail to scale with processor
//! speed. The repo used to exhibit the same pathology at its own serving
//! layer: every query re-ran a whole process (and a whole
//! `MeasurementSession`). This crate replaces that with an explicit,
//! measured request path — the small-kernel decomposition the paper
//! studies, applied to ourselves:
//!
//! * [`cache::ShardedCache`] — N-way sharded, single-flight memoization:
//!   concurrent requests for one key coalesce onto one computation;
//! * [`protocol`] — the `osarch-serve/1` line-delimited JSON protocol
//!   over the full result surface (measure / table / lint / trace /
//!   counters), reusing the `core/metrics` emitters byte-for-byte, with
//!   an incremental framer ([`protocol::FrameBuf`]) that reassembles
//!   requests from arbitrary read fragments and resynchronizes after an
//!   oversized line;
//! * [`server`] — the event-driven core: one nonblocking event loop per
//!   worker over the `osarch-poll` readiness shim (epoll on Linux),
//!   pipelined requests with strictly ordered replies, per-loop buffer
//!   arenas, a compute-offload pool for cache misses, a global
//!   open-connection budget with backpressure, progress-based idle and
//!   write timeouts, per-request deadlines, graceful shutdown, and a
//!   `/stats` query with monotonic counters and latency percentiles;
//! * [`loadgen`] — open-/closed-loop and multiplexed-pipelined workload
//!   driver emitting `BENCH_serve.json` (`osarch-serve-bench/2`) — the
//!   pipelined driver holds 10 000 connections from a handful of client
//!   threads;
//! * [`client`] — the resilient protocol client: per-attempt timeouts,
//!   bounded retries with deterministic backoff jitter, and a
//!   closed/open/half-open circuit breaker;
//! * [`soak`] — the chaos soak (`osarch chaos`): loadgen against a
//!   fault-injected in-process server, asserting the resilience
//!   invariants (no corruption, no deadlock, no leaked workers, degraded
//!   replies flagged, single-flight accounting exact);
//! * cluster mode — multiple `osarch serve` nodes form a ring
//!   (`osarch-cluster`): keys shard by consistent hashing with R-way
//!   replica placement, a non-owner either proxies the query to a live
//!   replica or answers a `not_owner` redirect, membership gossip rides
//!   the `health` op, and the `cluster` op reports ring + membership
//!   (`osarch-cluster/1`). [`ClusterClient`] is the shard-map-aware
//!   router: it shares the server's ring, prefers breaker-closed
//!   replicas, fails over on dead nodes, and follows redirects;
//! * [`top`] — the live terminal dashboard (`osarch top ADDR`), a 1 Hz
//!   plain-ANSI view over the `metrics` op's `osarch-metrics/1`
//!   snapshot: throughput, per-op tail percentiles, loop lag, cache and
//!   resilience counters.
//!
//! Request telemetry threads through all of it (the `osarch-telemetry`
//! crate): sampled requests carry a deterministic trace id from frame
//! decode through the ticket queue, compute pool, cache, and write
//! batch, each stage a span with queue-wait split from service time;
//! unsampled requests pay one counter increment and a few histogram
//! records, no allocation. The `metrics` op, the `--metrics-addr`
//! scrape listener (Prometheus text + JSON), and the `spans` op's
//! `chrome` filter expose it.
//!
//! Fault injection comes from the `osarch-chaos` crate: every failpoint
//! decision is a pure function of `(seed, failpoint, draw index)`, so a
//! fault schedule replays bit-identically from its seed.
//!
//! Everything is `std`-only: no new external dependencies. The readiness
//! shim lives in the sibling `osarch-poll` crate, which carries the
//! workspace's only `unsafe` (four audited `epoll` FFI calls) and falls
//! back to a portable poller where epoll is unavailable — this crate
//! itself stays `#![forbid(unsafe_code)]`.
//!
//! # Quickstart
//!
//! ```
//! use osarch_serve::{LoadgenConfig, Server, ServerConfig};
//! use std::io::{BufRead, BufReader, Write};
//!
//! let server = Server::start(&ServerConfig::default()).unwrap();
//! let mut conn = std::net::TcpStream::connect(server.addr()).unwrap();
//! writeln!(conn, "{}", r#"{"op":"ping","id":1}"#).unwrap();
//! let mut reply = String::new();
//! BufReader::new(&conn).read_line(&mut reply).unwrap();
//! assert!(reply.contains("\"pong\":true"));
//! server.stop();
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod cache;
pub mod client;
pub mod loadgen;
pub mod protocol;
pub mod queue;
pub mod registry;
pub mod server;
pub mod soak;
pub mod stats;
pub mod top;

pub use cache::{Fetched, ShardedCache};
pub use client::{ClientConfig, ClusterClient, ErrorClass, ResilientClient, RouteCounters};
pub use loadgen::{run as run_loadgen, run_cluster_bench, ClusterLoadConfig, LoadgenConfig};
pub use protocol::{Frame, FrameBuf, Query, Request, MAX_REQUEST_BYTES};
pub use registry::{SpecRegistry, SpecSnapshot};
pub use server::{ClusterConfig, Server, ServerConfig, ServerHandle};
pub use soak::{
    run as run_soak, run_cluster as run_cluster_soak, run_swap as run_swap_soak,
    run_swap_cluster as run_swap_cluster_soak, ClusterSoakConfig, ClusterSoakReport, SoakConfig,
    SoakReport, SwapClusterConfig, SwapClusterReport, SwapSoakConfig, SwapSoakReport,
};
pub use stats::{HealthGauges, ServeStats, OP_NAMES};
