//! Gossip membership: incarnation numbers, alive/suspect/down states,
//! and the flat-string digest that rides the serve protocol's `health`
//! op as anti-entropy.
//!
//! The merge rule is a deterministic join, so gossip converges in any
//! exchange order: for each node, the higher incarnation wins outright;
//! at equal incarnation the *worse* status wins (down > suspect >
//! alive). A node refutes rumours about itself by bumping its own
//! incarnation — the bumped `alive` then dominates every stale
//! `suspect`/`down` at the old incarnation. Direct probe evidence
//! (a `health` round trip succeeded or timed out) is applied the same
//! way: a failed probe marks the peer suspect, then down, at its
//! current incarnation; a successful probe of a non-alive peer bumps
//! the peer's incarnation past the rumour, which is safe because only
//! direct contact produces it.

use std::collections::BTreeMap;
use std::fmt;

/// Probe misses before an alive peer turns suspect.
pub const SUSPECT_AFTER: u32 = 2;
/// Probe misses before a suspect peer turns down.
pub const DOWN_AFTER: u32 = 4;

/// A node's health state, ordered from best to worst.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub enum Status {
    /// Responding to probes.
    Alive,
    /// Missed probes; rumoured unreachable but not yet written off.
    Suspect,
    /// Written off; the ring routes around it until it refutes.
    Down,
}

impl Status {
    /// Stable wire/report label.
    #[must_use]
    pub fn label(self) -> &'static str {
        match self {
            Status::Alive => "alive",
            Status::Suspect => "suspect",
            Status::Down => "down",
        }
    }

    fn parse(text: &str) -> Option<Status> {
        match text {
            "alive" => Some(Status::Alive),
            "suspect" => Some(Status::Suspect),
            "down" => Some(Status::Down),
            _ => None,
        }
    }
}

impl fmt::Display for Status {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.label())
    }
}

/// One node's entry in the membership table.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct NodeState {
    /// Monotonic per-node epoch; bumped by the node itself on (re)start
    /// and on refutation.
    pub incarnation: u64,
    /// Current health verdict.
    pub status: Status,
    /// Consecutive missed probes (local observation, not gossiped).
    pub misses: u32,
}

impl NodeState {
    fn new(incarnation: u64, status: Status) -> Self {
        Self {
            incarnation,
            status,
            misses: 0,
        }
    }
}

/// The membership table one node maintains about the whole cluster.
#[derive(Debug, Clone)]
pub struct Membership {
    self_addr: String,
    nodes: BTreeMap<String, NodeState>,
}

impl Membership {
    /// Start a table for `self_addr` at `incarnation`, seeding every
    /// peer as alive at incarnation 0 (first contact corrects it).
    #[must_use]
    pub fn new(self_addr: &str, incarnation: u64, peers: &[String]) -> Self {
        let mut nodes = BTreeMap::new();
        nodes.insert(
            self_addr.to_string(),
            NodeState::new(incarnation, Status::Alive),
        );
        for peer in peers {
            if peer != self_addr {
                nodes
                    .entry(peer.clone())
                    .or_insert_with(|| NodeState::new(0, Status::Alive));
            }
        }
        Self {
            self_addr: self_addr.to_string(),
            nodes,
        }
    }

    /// This node's address.
    #[must_use]
    pub fn self_addr(&self) -> &str {
        &self.self_addr
    }

    /// This node's current incarnation.
    #[must_use]
    pub fn self_incarnation(&self) -> u64 {
        self.nodes[&self.self_addr].incarnation
    }

    /// Every `(addr, state)` pair in address order.
    #[must_use]
    pub fn entries(&self) -> Vec<(&str, NodeState)> {
        self.nodes.iter().map(|(a, s)| (a.as_str(), *s)).collect()
    }

    /// A node's state, if known.
    #[must_use]
    pub fn get(&self, addr: &str) -> Option<NodeState> {
        self.nodes.get(addr).copied()
    }

    /// Number of nodes currently believed alive (including self).
    #[must_use]
    pub fn alive_count(&self) -> u64 {
        self.nodes
            .values()
            .filter(|s| s.status == Status::Alive)
            .count() as u64
    }

    /// Whether a peer is written off.
    #[must_use]
    pub fn is_down(&self, addr: &str) -> bool {
        self.nodes
            .get(addr)
            .is_some_and(|s| s.status == Status::Down)
    }

    /// Record a successful direct probe of `addr`. A non-alive peer is
    /// revived past the rumour by bumping its incarnation (direct
    /// contact outranks gossip).
    pub fn record_success(&mut self, addr: &str) {
        let entry = self
            .nodes
            .entry(addr.to_string())
            .or_insert_with(|| NodeState::new(0, Status::Alive));
        entry.misses = 0;
        if entry.status != Status::Alive {
            entry.incarnation += 1;
            entry.status = Status::Alive;
        }
    }

    /// Record a failed direct probe of `addr`: suspect after
    /// [`SUSPECT_AFTER`] consecutive misses, down after [`DOWN_AFTER`].
    pub fn record_failure(&mut self, addr: &str) {
        let Some(entry) = self.nodes.get_mut(addr) else {
            return;
        };
        entry.misses = entry.misses.saturating_add(1);
        if entry.misses >= DOWN_AFTER {
            entry.status = Status::Down;
        } else if entry.misses >= SUSPECT_AFTER && entry.status == Status::Alive {
            entry.status = Status::Suspect;
        }
    }

    /// Render the table as the flat digest string that rides the
    /// `health` op: `addr=incarnation/status` entries joined by `;`,
    /// in address order. Local probe-miss counts do not travel.
    #[must_use]
    pub fn digest(&self) -> String {
        let mut out = String::with_capacity(self.nodes.len() * 24);
        for (addr, state) in &self.nodes {
            if !out.is_empty() {
                out.push(';');
            }
            out.push_str(addr);
            out.push('=');
            out.push_str(&state.incarnation.to_string());
            out.push('/');
            out.push_str(state.status.label());
        }
        out
    }

    /// Merge a peer's digest. Unparseable entries are skipped (gossip
    /// must never wedge a node). Returns `true` if anything changed.
    pub fn merge_digest(&mut self, digest: &str) -> bool {
        let mut changed = false;
        for entry in digest.split(';') {
            let Some((addr, rest)) = entry.split_once('=') else {
                continue;
            };
            let Some((inc, status)) = rest.split_once('/') else {
                continue;
            };
            let (Ok(incarnation), Some(status)) = (inc.parse::<u64>(), Status::parse(status))
            else {
                continue;
            };
            changed |= self.merge_entry(addr, incarnation, status);
        }
        changed
    }

    fn merge_entry(&mut self, addr: &str, incarnation: u64, status: Status) -> bool {
        if addr == self.self_addr {
            // Refute rumours about ourselves: jump past the rumour's
            // incarnation and re-assert alive.
            let own = self.nodes.get_mut(&self.self_addr).expect("self entry");
            if status != Status::Alive && incarnation >= own.incarnation {
                own.incarnation = incarnation + 1;
                own.status = Status::Alive;
                return true;
            }
            return false;
        }
        let entry = self
            .nodes
            .entry(addr.to_string())
            .or_insert_with(|| NodeState::new(0, Status::Alive));
        let better = incarnation > entry.incarnation
            || (incarnation == entry.incarnation && status > entry.status);
        if better {
            if incarnation > entry.incarnation {
                entry.misses = 0;
            }
            entry.incarnation = incarnation;
            entry.status = status;
        }
        better
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn peers() -> Vec<String> {
        vec![
            "10.0.0.1:4001".to_string(),
            "10.0.0.2:4002".to_string(),
            "10.0.0.3:4003".to_string(),
        ]
    }

    #[test]
    fn digest_roundtrips_through_merge() {
        let a = Membership::new("10.0.0.1:4001", 7, &peers());
        let mut b = Membership::new("10.0.0.2:4002", 3, &peers());
        assert!(b.merge_digest(&a.digest()));
        assert_eq!(b.get("10.0.0.1:4001").unwrap().incarnation, 7);
        assert_eq!(b.get("10.0.0.1:4001").unwrap().status, Status::Alive);
        // Merging the same digest again is a no-op: the join is idempotent.
        assert!(!b.merge_digest(&a.digest()));
    }

    #[test]
    fn probe_misses_escalate_and_success_revives() {
        let mut m = Membership::new("10.0.0.1:4001", 1, &peers());
        let peer = "10.0.0.2:4002";
        m.record_failure(peer);
        assert_eq!(m.get(peer).unwrap().status, Status::Alive);
        m.record_failure(peer);
        assert_eq!(m.get(peer).unwrap().status, Status::Suspect);
        m.record_failure(peer);
        m.record_failure(peer);
        assert_eq!(m.get(peer).unwrap().status, Status::Down);
        assert!(m.is_down(peer));
        assert_eq!(m.alive_count(), 2);

        let rumoured = m.get(peer).unwrap().incarnation;
        m.record_success(peer);
        let revived = m.get(peer).unwrap();
        assert_eq!(revived.status, Status::Alive);
        assert!(
            revived.incarnation > rumoured,
            "revival outranks the rumour"
        );
    }

    #[test]
    fn self_rumours_are_refuted_by_incarnation_bump() {
        let mut m = Membership::new("10.0.0.1:4001", 2, &peers());
        assert!(m.merge_digest("10.0.0.1:4001=5/down"));
        assert_eq!(m.self_incarnation(), 6);
        assert_eq!(m.get("10.0.0.1:4001").unwrap().status, Status::Alive);
        // A stale rumour (lower incarnation) changes nothing.
        assert!(!m.merge_digest("10.0.0.1:4001=3/suspect"));
        assert_eq!(m.self_incarnation(), 6);
    }

    #[test]
    fn merge_converges_regardless_of_order() {
        let mut a = Membership::new("10.0.0.1:4001", 4, &peers());
        let mut b = Membership::new("10.0.0.2:4002", 9, &peers());
        a.record_failure("10.0.0.3:4003");
        a.record_failure("10.0.0.3:4003");

        // Exchange in both orders from clones; the tables converge to
        // the same digest (probe-miss counters are local-only).
        let mut a2 = a.clone();
        let mut b2 = b.clone();
        a.merge_digest(&b2.digest());
        b2.merge_digest(&a.digest());
        b.merge_digest(&a2.digest());
        a2.merge_digest(&b.digest());
        assert_eq!(a.digest(), b2.digest());
        assert_eq!(a2.digest(), b.digest());
        assert_eq!(a.digest(), b.digest());
        assert!(
            a.digest().contains("10.0.0.3:4003=0/suspect"),
            "{}",
            a.digest()
        );
    }

    #[test]
    fn garbage_digest_entries_are_skipped() {
        let mut m = Membership::new("10.0.0.1:4001", 1, &peers());
        let before = m.digest();
        assert!(!m.merge_digest("nonsense;=;a=b/c;x=9/zombie;y=notanum/alive"));
        assert_eq!(m.digest(), before);
    }

    #[test]
    fn equal_incarnation_prefers_the_worse_status() {
        let mut m = Membership::new("10.0.0.1:4001", 1, &peers());
        assert!(m.merge_digest("10.0.0.2:4002=3/suspect"));
        // Same incarnation, better status: rejected.
        assert!(!m.merge_digest("10.0.0.2:4002=3/alive"));
        assert_eq!(m.get("10.0.0.2:4002").unwrap().status, Status::Suspect);
        // Higher incarnation, better status: accepted.
        assert!(m.merge_digest("10.0.0.2:4002=4/alive"));
        assert_eq!(m.get("10.0.0.2:4002").unwrap().status, Status::Alive);
    }
}
