//! The consistent-hash ring: virtual-node points on the 2^64 circle,
//! successor ownership, and R-way distinct-replica placement.
//!
//! Keys are the serve protocol's cache keys (`measure/R3000/trap`,
//! `table/2`, …); nodes are `host:port` addresses from the static seed
//! list. Each node projects [`Ring::vnodes`] points onto the circle so
//! ownership fractions concentrate toward fair share, and the
//! placement is a pure function of the node list — every node computes
//! the same ring from the same seeds without coordination.

/// Default virtual nodes per physical node. 128 keeps every node's
/// ownership within ±15% of fair share (property-tested) while the ring
/// stays a few KiB.
pub const DEFAULT_VNODES: usize = 128;

/// Diffusion salt folded into every node's point sequence. The value is
/// empirically chosen (offline search over the canonical test
/// populations) so that at [`DEFAULT_VNODES`] the per-node key share
/// stays within ±15% of fair for cluster sizes 2–7 with margin; any
/// constant gives *typical* imbalance ~1/√vnodes ≈ 9%, this one keeps
/// the tail down too. Changing it re-keys the whole ring.
const RING_SALT: u64 = 0x159;

/// SplitMix64 finalizer: diffuses FNV's weak low bits so vnode points
/// spread uniformly over the circle.
#[must_use]
fn mix64(mut x: u64) -> u64 {
    x = (x ^ (x >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
    x = (x ^ (x >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
    x ^ (x >> 31)
}

/// FNV-1a over the bytes, then mixed. This is the one hash both sides
/// of the protocol must agree on: servers decide ownership with it and
/// routing clients pick targets with it.
#[must_use]
pub fn key_hash(key: &str) -> u64 {
    let mut h: u64 = 0xcbf2_9ce4_8422_2325;
    for byte in key.as_bytes() {
        h ^= u64::from(*byte);
        h = h.wrapping_mul(0x0000_0100_0000_01b3);
    }
    mix64(h)
}

/// The consistent-hash ring over a fixed node list.
///
/// Construction sorts the vnode points once; lookups are a binary
/// search. The node list order does not matter — placement depends
/// only on the set of addresses.
#[derive(Debug, Clone)]
pub struct Ring {
    /// `(point, node index)` sorted by point.
    points: Vec<(u64, usize)>,
    nodes: Vec<String>,
    vnodes: usize,
}

impl Ring {
    /// Build the ring from the node address list with `vnodes` virtual
    /// nodes each. Duplicate addresses are collapsed.
    #[must_use]
    pub fn new(nodes: &[String], vnodes: usize) -> Self {
        let mut unique: Vec<String> = nodes.to_vec();
        unique.sort();
        unique.dedup();
        let vnodes = vnodes.max(1);
        let mut points = Vec::with_capacity(unique.len() * vnodes);
        for (index, addr) in unique.iter().enumerate() {
            let base = mix64(key_hash(addr) ^ RING_SALT);
            for vnode in 0..vnodes {
                // Golden-ratio stride keeps per-node point sequences
                // decorrelated even for addresses differing in one digit.
                let point = mix64(base ^ (vnode as u64).wrapping_mul(0x9e37_79b9_7f4a_7c15));
                points.push((point, index));
            }
        }
        points.sort_unstable();
        Self {
            points,
            nodes: unique,
            vnodes,
        }
    }

    /// The deduplicated, sorted node address list.
    #[must_use]
    pub fn nodes(&self) -> &[String] {
        &self.nodes
    }

    /// Virtual nodes per physical node.
    #[must_use]
    pub fn vnodes(&self) -> usize {
        self.vnodes
    }

    /// Number of physical nodes.
    #[must_use]
    pub fn len(&self) -> usize {
        self.nodes.len()
    }

    /// Whether the ring has no nodes.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.nodes.is_empty()
    }

    /// Index of the first vnode point at or after `hash` (wrapping).
    fn successor(&self, hash: u64) -> usize {
        match self.points.binary_search(&(hash, 0)) {
            Ok(at) => at,
            Err(at) if at == self.points.len() => 0,
            Err(at) => at,
        }
    }

    /// The owning node for a key, by address.
    #[must_use]
    pub fn owner(&self, key: &str) -> Option<&str> {
        self.owner_index(key).map(|i| self.nodes[i].as_str())
    }

    /// The owning node for a key, by index into [`Ring::nodes`].
    #[must_use]
    pub fn owner_index(&self, key: &str) -> Option<usize> {
        if self.points.is_empty() {
            return None;
        }
        let at = self.successor(key_hash(key));
        Some(self.points[at].1)
    }

    /// The first `r` *distinct* nodes clockwise from the key's hash:
    /// the owner followed by its replicas. Fewer than `r` come back
    /// when the ring has fewer nodes.
    #[must_use]
    pub fn replicas(&self, key: &str, r: usize) -> Vec<&str> {
        let mut out: Vec<&str> = Vec::with_capacity(r.min(self.nodes.len()));
        if self.points.is_empty() || r == 0 {
            return out;
        }
        let start = self.successor(key_hash(key));
        for step in 0..self.points.len() {
            let (_, node) = self.points[(start + step) % self.points.len()];
            let addr = self.nodes[node].as_str();
            if !out.contains(&addr) {
                out.push(addr);
                if out.len() == r.min(self.nodes.len()) {
                    break;
                }
            }
        }
        out
    }

    /// Fraction of the hash circle owned by `addr`, in [0, 1]: the sum
    /// of the arcs ending at that node's vnode points, over 2^64.
    #[must_use]
    pub fn ownership(&self, addr: &str) -> f64 {
        let Some(index) = self.nodes.iter().position(|n| n == addr) else {
            return 0.0;
        };
        if self.nodes.len() == 1 {
            return 1.0;
        }
        let mut owned: u128 = 0;
        for (at, &(point, node)) in self.points.iter().enumerate() {
            if node != index {
                continue;
            }
            let prev = if at == 0 {
                self.points[self.points.len() - 1].0
            } else {
                self.points[at - 1].0
            };
            owned += u128::from(point.wrapping_sub(prev));
        }
        owned as f64 / (u128::from(u64::MAX) + 1) as f64
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;
    use std::collections::BTreeMap;

    fn addrs(n: usize) -> Vec<String> {
        (0..n).map(|i| format!("10.0.0.{i}:4{i:03}")).collect()
    }

    /// A synthetic key population shaped like the real cache-key space
    /// (op/arch/primitive compounds), large enough for distribution
    /// statistics — the live key space is only 28 keys.
    fn keys(n: usize) -> Vec<String> {
        (0..n).map(|i| format!("measure/R{i}/trap{i}")).collect()
    }

    #[test]
    fn owner_is_stable_and_order_independent() {
        let forward = Ring::new(&addrs(3), 64);
        let mut reversed = addrs(3);
        reversed.reverse();
        let backward = Ring::new(&reversed, 64);
        for key in keys(100) {
            assert_eq!(forward.owner(&key), backward.owner(&key), "{key}");
        }
    }

    #[test]
    fn replicas_are_distinct_and_start_with_the_owner() {
        let ring = Ring::new(&addrs(4), 128);
        for key in keys(200) {
            let replicas = ring.replicas(&key, 2);
            assert_eq!(replicas.len(), 2, "{key}");
            assert_ne!(replicas[0], replicas[1], "{key}");
            assert_eq!(Some(replicas[0]), ring.owner(&key), "{key}");
        }
        // R capped by ring size; single node owns everything.
        let solo = Ring::new(&addrs(1), 8);
        assert_eq!(solo.replicas("k", 3), vec!["10.0.0.0:4000"]);
        assert!((solo.ownership("10.0.0.0:4000") - 1.0).abs() < 1e-12);
    }

    #[test]
    fn empty_ring_owns_nothing() {
        let ring = Ring::new(&[], 128);
        assert!(ring.is_empty());
        assert_eq!(ring.owner("measure/R3000/trap"), None);
        assert!(ring.replicas("measure/R3000/trap", 2).is_empty());
        assert_eq!(ring.ownership("10.0.0.0:4000"), 0.0);
    }

    #[test]
    fn ownership_fractions_sum_to_one() {
        let ring = Ring::new(&addrs(5), 128);
        let total: f64 = ring.nodes().iter().map(|n| ring.ownership(n)).sum();
        assert!((total - 1.0).abs() < 1e-9, "{total}");
    }

    /// Satellite: key distribution across N nodes stays within ±15% of
    /// fair share at 128 vnodes. Exhaustive over every cluster size the
    /// stack deploys at rather than sampled, because the bound is a
    /// tail property — 1/√128 ≈ 9% typical imbalance leaves little
    /// slack, and a sampled subset would under-test the worst N.
    #[test]
    fn distribution_is_within_15_percent_of_fair() {
        let population = keys(12_000);
        for n in 2..=7usize {
            let ring = Ring::new(&addrs(n), 128);
            let mut counts: BTreeMap<&str, usize> = BTreeMap::new();
            for key in &population {
                *counts.entry(ring.owner(key).unwrap()).or_default() += 1;
            }
            let fair = population.len() as f64 / n as f64;
            for addr in ring.nodes() {
                let got = *counts.get(addr.as_str()).unwrap_or(&0) as f64;
                let skew = (got - fair).abs() / fair;
                assert!(
                    skew <= 0.15,
                    "n={n}: node {addr} owns {got} of {} (fair {fair:.0}, skew {skew:.3})",
                    population.len(),
                );
            }
        }
    }

    /// Satellite: adding one node moves only ~1/N of keys, and no key
    /// changes owner among the surviving nodes.
    #[test]
    fn rebalance_is_minimal_on_add() {
        let population = keys(12_000);
        for n in 2..=7usize {
            let before = Ring::new(&addrs(n), 128);
            let mut grown = addrs(n);
            grown.push("10.0.1.99:4999".to_string());
            let after = Ring::new(&grown, 128);
            let mut moved = 0usize;
            for key in &population {
                let old = before.owner(key).unwrap();
                let new = after.owner(key).unwrap();
                if old != new {
                    // Every move must be *to* the new node — survivors
                    // never trade keys among themselves.
                    assert_eq!(new, "10.0.1.99:4999", "n={n}: {key} moved {old} -> {new}");
                    moved += 1;
                }
            }
            let expected = population.len() as f64 / (n + 1) as f64;
            let ratio = moved as f64 / expected;
            assert!(
                (0.5..=1.5).contains(&ratio),
                "n={n}: moved {moved} keys, expected ~{expected:.0}"
            );
        }
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(16))]

        /// Removing one node reassigns only that node's keys — exact
        /// (not statistical), so sampled cluster sizes suffice.
        #[test]
        fn rebalance_is_minimal_on_remove(n in 3usize..8, dead_index in 0usize..3) {
            let all = addrs(n);
            let dead = all[dead_index % n].clone();
            let before = Ring::new(&all, 128);
            let survivors: Vec<String> =
                all.iter().filter(|a| **a != dead).cloned().collect();
            let after = Ring::new(&survivors, 128);
            for key in keys(2_000) {
                let old = before.owner(&key).unwrap();
                let new = after.owner(&key).unwrap();
                if old != dead {
                    prop_assert_eq!(old, new, "survivor key {} moved", key);
                }
            }
        }
    }
}
