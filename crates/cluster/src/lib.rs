//! # osarch-cluster
//!
//! The cluster layer under the `osarch-serve` query service: a
//! consistent-hash ring with virtual nodes over the
//! arch×primitive×document key space, R-way replica placement, and a
//! gossip-style membership protocol with per-node incarnation numbers
//! and suspect/down states.
//!
//! The ASPLOS 1991 paper's thesis — fixed per-operation overheads
//! dominate OS primitive cost and fail to scale with processor speed —
//! has a cluster-level corollary: one process cannot serve the key
//! space no matter how fast its event loops get, so scale has to come
//! from parallel structure. This crate supplies that structure as pure,
//! deterministic data types; the serve layer wires them to sockets.
//!
//! * [`ring::Ring`] — the consistent-hash ring: each node projects
//!   `vnodes` points onto the 2^64 hash circle, a key is owned by the
//!   node whose point follows the key's hash, and replicas are the next
//!   distinct nodes clockwise. Adding or removing one node moves only
//!   ~1/N of the keys and never changes ownership among survivors.
//! * [`membership::Membership`] — SWIM-flavoured membership: every node
//!   carries an incarnation number and an alive/suspect/down status,
//!   digests ride the existing `health` op as a flat string field, and
//!   merge is a deterministic join (higher incarnation wins; at equal
//!   incarnation the worse status wins) so any gossip order converges.
//!
//! Everything is `std`-only and allocation-light; nothing here does
//! I/O, spawns threads, or reads clocks, so the soak harness can replay
//! a node-kill schedule bit-identically from its seed.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod membership;
pub mod ring;

pub use membership::{Membership, NodeState, Status, DOWN_AFTER, SUSPECT_AFTER};
pub use ring::{key_hash, Ring, DEFAULT_VNODES};
